"""Deterministic workload generators shared by tests and benchmarks.

All generators take an explicit ``seed`` and derive payloads from a
``random.Random`` instance, so every benchmark run replays the same byte
streams — the property-based tests rely on this too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "payload_bytes",
    "NotarizationWorkload",
    "LineageWorkload",
    "NotarizationDoc",
    "LineageOp",
]


def payload_bytes(rng: random.Random, size: int) -> bytes:
    """A pseudo-random payload of exactly ``size`` bytes."""
    return rng.getrandbits(8 * size).to_bytes(size, "big") if size else b""


@dataclass(frozen=True)
class NotarizationDoc:
    """One evidentiary record: a unique id and an opaque blob proof."""

    doc_id: str
    data: bytes


@dataclass(frozen=True)
class LineageOp:
    """One lineage append: a business key (clue) and its next item."""

    clue: str
    version: int
    data: bytes


class NotarizationWorkload:
    """The §VI-D data-notarization workload: [index, data] documents."""

    def __init__(self, count: int, payload_size: int = 256, seed: int = 7) -> None:
        self.count = count
        self.payload_size = payload_size
        self.seed = seed

    def __iter__(self) -> Iterator[NotarizationDoc]:
        rng = random.Random(self.seed)
        for index in range(self.count):
            yield NotarizationDoc(
                doc_id=f"doc-{self.seed}-{index:08d}",
                data=payload_bytes(rng, self.payload_size),
            )

    def __len__(self) -> int:
        return self.count


class LineageWorkload:
    """The §VI-C/§VI-D lineage workload.

    ``clue_count`` business keys receive between ``min_entries`` and
    ``max_entries`` journals each (the paper randomly assigns 1–100), in a
    globally interleaved order like real traffic.
    """

    def __init__(
        self,
        clue_count: int,
        min_entries: int = 1,
        max_entries: int = 100,
        payload_size: int = 1024,
        seed: int = 11,
    ) -> None:
        if min_entries < 1 or max_entries < min_entries:
            raise ValueError("need 1 <= min_entries <= max_entries")
        self.clue_count = clue_count
        self.min_entries = min_entries
        self.max_entries = max_entries
        self.payload_size = payload_size
        self.seed = seed

    def entry_counts(self) -> dict[str, int]:
        rng = random.Random(self.seed)
        return {
            f"clue-{self.seed}-{i:06d}": rng.randint(self.min_entries, self.max_entries)
            for i in range(self.clue_count)
        }

    def __iter__(self) -> Iterator[LineageOp]:
        rng = random.Random(self.seed)
        counts = self.entry_counts()
        pending = [(clue, count) for clue, count in counts.items()]
        versions = {clue: 0 for clue in counts}
        # Interleave appends across clues.
        order: list[str] = []
        for clue, count in pending:
            order.extend([clue] * count)
        rng.shuffle(order)
        for clue in order:
            yield LineageOp(
                clue=clue,
                version=versions[clue],
                data=payload_bytes(rng, self.payload_size),
            )
            versions[clue] += 1

    def total_entries(self) -> int:
        return sum(self.entry_counts().values())
