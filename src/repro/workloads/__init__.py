"""Workload generators for the notarization and lineage applications."""

from .generators import (
    LineageOp,
    LineageWorkload,
    NotarizationDoc,
    NotarizationWorkload,
    payload_bytes,
)

__all__ = [
    "LineageOp",
    "LineageWorkload",
    "NotarizationDoc",
    "NotarizationWorkload",
    "payload_bytes",
]
