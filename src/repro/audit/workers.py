"""Worker-side functions for the parallel audit engine.

Every function here is a plain module-level callable so it pickles by
reference into a ``ProcessPoolExecutor`` (and runs unchanged on a thread
pool).  Payloads are deliberately small and flat: per-journal client
signatures travel as ``(x, y, digest, signature_bytes)`` tuples — a few
hundred bytes per check — never as whole journals or views.

Each function returns *data* (verdict lists, error strings), not report
steps: the coordinator owns ordering, message selection, and the
deterministic merge, so the report comes out byte-identical no matter how
chunks were scheduled.
"""

from __future__ import annotations

from ..crypto.ecdsa import Point, Signature, verify_digests
from ..crypto.multisig import MultiSignatureError

__all__ = [
    "verify_signature_chunk",
    "verify_certificate_chunk",
    "verify_multisig_task",
    "check_time_evidence_chunk",
]

#: One client-signature check: (pubkey x, pubkey y, digest, signature bytes).
SignatureItem = tuple[int, int, bytes, bytes]


def verify_signature_chunk(items: list[SignatureItem]) -> list[bool]:
    """Batch-verify one chunk of raw ECDSA checks (shared s^-1 inversions)."""
    checks = []
    malformed = [False] * len(items)
    for index, (x, y, digest, sig_bytes) in enumerate(items):
        try:
            signature = Signature.from_bytes(sig_bytes)
        except ValueError:
            malformed[index] = True
            signature = Signature(0, 0)  # fails range check, never verifies
        checks.append((Point(x, y), digest, signature))
    verdicts = verify_digests(checks)
    return [ok and not bad for ok, bad in zip(verdicts, malformed)]


def verify_certificate_chunk(certificates: list, ca_public_key) -> list[bool]:
    """Verify a chunk of CA certificate signatures; verdicts in input order."""
    return [certificate.verify(ca_public_key) for certificate in certificates]


def verify_multisig_task(approvals, signer_certs: dict) -> str | None:
    """Run one Π1/Π2 multi-signature check; the exact error string or None.

    Runs the same :meth:`MultiSignature.verify` the sequential engine calls,
    so failure details match character-for-character.
    """
    try:
        approvals.verify(signer_certs)
    except MultiSignatureError as exc:
        return str(exc)
    return None


def check_time_evidence_chunk(
    entries: list[tuple[dict, object]], tsa_keys: dict
) -> list[tuple[float, bool]]:
    """Verify a chunk of time-journal evidence; (timestamp, valid) per entry."""
    from ..core.verification import check_time_evidence

    return [check_time_evidence(info, evidence, tsa_keys) for info, evidence in entries]
