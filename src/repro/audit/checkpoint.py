"""Resumable audit checkpoints.

A full Dasein audit over a large ledger can run for minutes; a killed audit
that restarts from genesis repays everything it already verified.  The
engine therefore snapshots its replay state after verified block ranges:
everything needed to resume the fold mid-stream —

* the fam replayer frontier (epoch roots + live-epoch peaks), exactly the
  shape a pseudo-genesis snapshot uses;
* the per-clue frontier accumulators (the CM-Tree state rebuilds from
  these, the same way the purge path rebuilds it);
* the block cursor (previous hash + index) and report counters;
* the jsns of time journals already collected for the *when* phase, and the
  replayed root at the receipt's jsn once the fold passes it;
* the outcomes of the pre-replay steps (certificates, Π1, Π2), so a resumed
  report is byte-identical to an uninterrupted one.

Trust note: a checkpoint is the **auditor's own** state, stored on the
auditor's disk — resuming trusts nothing the LSP produced.  Restarting from
a checkpoint asserts "I already verified everything below ``next_jsn``",
which holds exactly when the checkpoint file is the auditor's.

Durability: :meth:`CheckpointStore.save` writes a checksummed JSON envelope
to a temp file, fsyncs, then atomically renames over the previous
checkpoint — a crash mid-save leaves the old checkpoint intact, and
:meth:`load` rejects torn or bit-flipped files (falling back to a fresh
audit rather than resuming from garbage).  ``file_factory`` admits the
fault-injection harness (:mod:`repro.storage.faults`) for crash tests.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["AuditCheckpoint", "CheckpointStore", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _hex(digest: bytes) -> str:
    return digest.hex()


def _unhex(text: str) -> bytes:
    return bytes.fromhex(text)


@dataclass
class AuditCheckpoint:
    """Replay state as of ``next_jsn`` (everything below it is verified)."""

    uri: str
    fractal_height: int
    genesis_start: int
    next_jsn: int
    fam_epoch_roots: list[bytes]
    fam_live_size: int
    fam_live_peaks: list[bytes]
    fam_journal_count: int
    clue_snapshot: dict[str, tuple[int, list[bytes]]]
    previous_block_hash: bytes
    block_index: int
    journals_replayed: int
    blocks_verified: int
    time_jsns: list[int] = field(default_factory=list)
    receipt_jsn: int | None = None
    receipt_root: bytes | None = None
    pre_steps: list[tuple[str, bool, str]] = field(default_factory=list)

    def matches_view(self, view) -> bool:
        """Does this checkpoint belong to (a later state of) ``view``?"""
        return (
            self.uri == view.uri
            and self.fractal_height == view.fractal_height
            and self.genesis_start == view.genesis_start
            and view.genesis_start <= self.next_jsn
            and self.next_jsn <= view.genesis_start + len(view.entries)
        )

    def to_dict(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "uri": self.uri,
            "fractal_height": self.fractal_height,
            "genesis_start": self.genesis_start,
            "next_jsn": self.next_jsn,
            "fam_epoch_roots": [_hex(d) for d in self.fam_epoch_roots],
            "fam_live_size": self.fam_live_size,
            "fam_live_peaks": [_hex(d) for d in self.fam_live_peaks],
            "fam_journal_count": self.fam_journal_count,
            "clue_snapshot": {
                clue: [size, [_hex(p) for p in peaks]]
                for clue, (size, peaks) in self.clue_snapshot.items()
            },
            "previous_block_hash": _hex(self.previous_block_hash),
            "block_index": self.block_index,
            "journals_replayed": self.journals_replayed,
            "blocks_verified": self.blocks_verified,
            "time_jsns": list(self.time_jsns),
            "receipt_jsn": self.receipt_jsn,
            "receipt_root": _hex(self.receipt_root) if self.receipt_root else None,
            "pre_steps": [[n, p, d] for n, p, d in self.pre_steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditCheckpoint":
        if data.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {data.get('version')}")
        return cls(
            uri=data["uri"],
            fractal_height=data["fractal_height"],
            genesis_start=data["genesis_start"],
            next_jsn=data["next_jsn"],
            fam_epoch_roots=[_unhex(d) for d in data["fam_epoch_roots"]],
            fam_live_size=data["fam_live_size"],
            fam_live_peaks=[_unhex(d) for d in data["fam_live_peaks"]],
            fam_journal_count=data["fam_journal_count"],
            clue_snapshot={
                clue: (size, [_unhex(p) for p in peaks])
                for clue, (size, peaks) in data["clue_snapshot"].items()
            },
            previous_block_hash=_unhex(data["previous_block_hash"]),
            block_index=data["block_index"],
            journals_replayed=data["journals_replayed"],
            blocks_verified=data["blocks_verified"],
            time_jsns=list(data["time_jsns"]),
            receipt_jsn=data["receipt_jsn"],
            receipt_root=_unhex(data["receipt_root"]) if data["receipt_root"] else None,
            pre_steps=[(n, p, d) for n, p, d in data["pre_steps"]],
        )


class CheckpointStore:
    """Durable slot for the latest :class:`AuditCheckpoint`.

    ``file_factory`` wraps the raw temp-file handle (crash injection via
    :class:`~repro.storage.faults.FaultyFile`); production callers leave it
    ``None``.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        file_factory: Callable | None = None,
    ) -> None:
        self.path = Path(path)
        self._file_factory = file_factory

    def save(self, checkpoint: AuditCheckpoint) -> None:
        """Atomically persist ``checkpoint`` (old slot survives any crash)."""
        payload = checkpoint.to_dict()
        body = json.dumps(payload, sort_keys=True)
        envelope = json.dumps(
            {"sha256": hashlib.sha256(body.encode()).hexdigest(), "payload": body}
        ).encode()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        raw = open(tmp, "wb")
        handle = self._file_factory(raw) if self._file_factory else raw
        try:
            handle.write(envelope)
            handle.flush()
            if hasattr(handle, "fsync"):
                handle.fsync()
            else:
                os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(tmp, self.path)

    def load(self) -> AuditCheckpoint | None:
        """The last durable checkpoint, or None (missing, torn, corrupt)."""
        try:
            envelope = json.loads(self.path.read_bytes())
            body = envelope["payload"]
            if hashlib.sha256(body.encode()).hexdigest() != envelope["sha256"]:
                return None
            return AuditCheckpoint.from_dict(json.loads(body))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def clear(self) -> None:
        """Remove the checkpoint (a completed audit needs no resume point)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
