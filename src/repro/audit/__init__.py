"""repro.audit — the Dasein-complete audit engine (§V, Definition 1).

The audit grew out of :mod:`repro.core.audit` (still importable as a shim)
into its own package when it went parallel:

* :mod:`~repro.audit.engine` — the coordinator: sequential replay fold +
  chunked signature dispatch, deterministic failure merge, resume logic;
* :mod:`~repro.audit.workers` — picklable worker-side verify functions;
* :mod:`~repro.audit.checkpoint` — durable, crash-safe resume points;
* :mod:`~repro.audit.report` — :class:`AuditReport` / :class:`AuditStep`.

Entry point: :func:`dasein_audit` (or ``LedgerSession.audit`` on the v2
session API, which wraps it).
"""

from .checkpoint import AuditCheckpoint, CheckpointStore
from .engine import DEFAULT_CHUNK_SIZE, dasein_audit
from .report import AuditReport, AuditStep

__all__ = [
    "AuditCheckpoint",
    "AuditReport",
    "AuditStep",
    "CheckpointStore",
    "DEFAULT_CHUNK_SIZE",
    "dasein_audit",
]
