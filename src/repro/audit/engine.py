"""The Dasein-complete audit engine (§V, Definition 1) — sequential & parallel.

The audit consumes an exported :class:`~repro.core.ledger.LedgerView` plus
out-of-band trust anchors (CA public key from the view, TSA public keys) and
re-derives everything else itself:

1. **certificates** — every member certificate carries a valid CA signature;
2. **Π1** — every purge journal's Prerequisite-1 multi-signature validates;
3. **Π2** — every occult journal's Prerequisite-2 multi-signature validates
   (DBA + regulator);
4. **replay (V)** — every journal's digest is recomputed (Protocol 2
   substitutes the retained hash for occulted journals; Protocol 1 starts the
   replay from the pseudo genesis after a purge) and folded through a
   :class:`~repro.merkle.fam.FamReplayer` and a CM-Tree state replay; every
   block's ``journal_root`` / ``state_root`` must match (**V'** checks the
   chain links and gapless ranges at the same boundaries);
5. **time journals** — each anchored root must equal the replayed commitment
   at its jsn, and its TSA evidence must verify; timestamps must be monotone;
6. **Π3** — the LSP's latest receipt signature, tx-hash, and ledger root all
   match the replayed state.

The final proof is the conjunction; any sub-proof failure terminates the
audit early with a failed report, as Definition 1 requires.

Parallel mode (``workers >= 1``)
--------------------------------

The replay fold itself is inherently sequential — each root depends on every
digest before it — but almost all of the audit's *time* goes into ECDSA:
one client-signature check per journal, the Π1/Π2 multi-signatures, and the
TSA evidence behind every time anchor.  The engine therefore splits roles:

* the **coordinator** runs the fold (decode, digest, fam/CM-Tree, block
  boundaries) and buffers the per-journal signature checks into fixed-size
  chunks, dispatched to a worker pool (fork-based processes when available,
  threads otherwise) where :func:`~repro.crypto.ecdsa.verify_digests`
  batch-verifies each chunk with shared inversions.  Chunks are in flight
  *while* the fold advances — the two workloads overlap;
* Π1/Π2 approvals and time-journal evidence ship to the same pool as
  per-record / chunked tasks.

Determinism: workers return raw verdicts, never report steps.  The
coordinator converts every failure — inline or chunked — into a
``(jsn, priority)``-keyed candidate mirroring the exact check order of the
sequential loop, and the merged first failure (message, counters, and all)
is byte-identical to what the sequential engine reports, regardless of
worker count, chunk size, or scheduling.  ``tests/test_audit_parallel.py``
pins this with :meth:`AuditReport.canonical` equality on honest *and*
tampered ledgers.

Resumable audits: pass ``checkpoint=`` (a path or
:class:`~repro.audit.checkpoint.CheckpointStore`) and the engine snapshots
its replay state after every ``checkpoint_every`` verified blocks;
``resume=True`` restarts a killed audit from the last good jsn instead of
genesis.  See :mod:`repro.audit.checkpoint` for the trust model.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from .. import obs
from ..crypto.hashing import EMPTY_DIGEST, Digest, clue_key_hash
from ..crypto.keys import PublicKey
from ..merkle.cmtree import encode_clue_value
from ..merkle.fam import FamReplayer
from ..merkle.mpt import MPT
from ..merkle.shrubs import FrontierAccumulator
from .checkpoint import AuditCheckpoint, CheckpointStore
from .report import AuditReport, AuditStep
from .workers import (
    check_time_evidence_chunk,
    verify_certificate_chunk,
    verify_multisig_task,
    verify_signature_chunk,
)

__all__ = ["dasein_audit", "AuditReport", "AuditStep", "DEFAULT_CHUNK_SIZE"]

#: Journals per dispatched signature chunk.  Large enough that the batched
#: inversion and IPC amortise, small enough that 4 workers stay saturated on
#: modest ledgers.
DEFAULT_CHUNK_SIZE = 64

#: Blocks between checkpoint snapshots (when a checkpoint store is given).
DEFAULT_CHECKPOINT_EVERY = 4

# Per-journal check priorities, mirroring the order of the sequential replay
# loop.  The merged first failure is min((jsn, priority)), which is exactly
# the check the sequential engine would have tripped on first.
_P_DECODE = 0
_P_JSN = 1
_P_DIGEST = 2  # also the occult-branch checks (exclusive alternatives)
_P_SIGNATURE = 3
_P_TIME = 4
_P_CHAIN = 5
_P_JOURNAL_ROOT = 6
_P_STATE_ROOT = 7


def _schedulable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _make_pool(workers: int, kind: str):
    """Build the worker pool: fork processes when possible, else threads.

    Process pools beat the GIL for the pure-Python ECDSA hot loop; the fork
    start method also inherits the parent's warmed window tables for free.
    Environments without working fork (or with ``kind='thread'``) fall back
    to a thread pool — slower, but semantically identical.  ``auto`` also
    degrades to threads when only one CPU is schedulable: forked workers
    would time-slice the same core while paying pickling and pipe traffic
    on every chunk.
    """
    if kind == "auto" and _schedulable_cpus() <= 1:
        kind = "thread"
    if kind in ("auto", "process"):
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            # Probe: the constructor succeeds even where forking is blocked;
            # only a round-trip proves the workers are real.
            pool.submit(int, 0).result(timeout=15)
            return pool, "process"
        except Exception:
            if kind == "process":
                raise
    return ThreadPoolExecutor(max_workers=workers), "thread"


class _AuditEngine:
    def __init__(
        self,
        view,
        tsa_keys: dict[str, PublicKey],
        temporal_range: tuple[float, float] | None,
        verify_client_signatures: bool,
        early_terminate: bool,
        workers: int,
        chunk_size: int,
        checkpoint_store: CheckpointStore | None,
        resume: bool,
        checkpoint_every: int,
        pool_kind: str,
    ) -> None:
        self.view = view
        self.tsa_keys = tsa_keys
        self.temporal_range = temporal_range
        self.verify_client_signatures = verify_client_signatures
        self.early_terminate = early_terminate
        self.workers = max(0, workers)
        self.chunk_size = max(1, chunk_size)
        self.checkpoint_store = checkpoint_store
        self.resume = resume
        self.checkpoint_every = max(1, checkpoint_every)
        self.pool_kind = pool_kind
        self.report = AuditReport(passed=True)
        self._pool = None
        self._roots_after: dict[int, Digest] = {}
        self._receipt_root: Digest | None = None
        self._time_entries: list[tuple[int, dict]] = []
        self._resumed: AuditCheckpoint | None = None
        self._resumed_time_entries: list[tuple[int, dict]] = []

    # --------------------------------------------------------------- plumbing

    def _step(self, name: str, passed: bool, detail: str = "") -> bool:
        self.report.steps.append(AuditStep(name=name, passed=passed, detail=detail))
        if not passed:
            self.report.passed = False
        return passed

    def _ensure_pool(self):
        if self._pool is None:
            from ..crypto.ecdsa import warm_tables

            # Warm the shared window tables before forking so every child
            # inherits them instead of rebuilding per process.
            warm_tables(
                certificate.public_key.point
                for certificate in self.view.certificates.values()
            )
            self._pool, kind = _make_pool(self.workers, self.pool_kind)
            obs.set_gauge("audit.workers", self.workers)
            obs.inc(f"audit.pool.{kind}")
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            # wait=True: an abandoned feeder thread racing interpreter exit
            # spews EBADF tracebacks; every future is already resolved here.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _submit(self, fn, *args) -> Future:
        return self._ensure_pool().submit(fn, *args)

    def _chunked(self, items: list, size: int | None = None) -> list[list]:
        size = size or self.chunk_size
        return [items[i : i + size] for i in range(0, len(items), size)]

    # -------------------------------------------------------------- sub-proofs

    def check_certificates(self) -> bool:
        with obs.span("audit.certificates") as sp:
            certificates = self.view.certificates
            sp.add("members", len(certificates))
            if self.workers:
                chunks = self._chunked(list(certificates.values()))
                futures = [
                    self._submit(verify_certificate_chunk, chunk, self.view.ca_public_key)
                    for chunk in chunks
                ]
                verdicts = [ok for future in futures for ok in future.result()]
            else:
                verdicts = None
            for index, (member_id, certificate) in enumerate(certificates.items()):
                valid = (
                    verdicts[index]
                    if verdicts is not None
                    else certificate.verify(self.view.ca_public_key)
                )
                if not valid:
                    return self._step(
                        "certificates", False, f"CA signature invalid for {member_id!r}"
                    )
                if certificate.member_id != member_id:
                    return self._step(
                        "certificates", False, f"certificate id mismatch for {member_id!r}"
                    )
            return self._step(
                "certificates", True, f"{len(certificates)} members"
            )

    # Π1/Π2 share a per-record pipeline: structural checks inline, the
    # multi-signature itself on the pool, post-checks inline — evaluated in
    # record order so the first failure matches the sequential engine.

    def _purge_structural(self, jsn, record, approvals):
        """Returns (failure detail | None, signer_certs)."""
        from ..crypto.ca import Role

        if approvals.digest != record.approval_digest():
            return f"purge@{jsn}: signatures cover wrong record", None
        signer_certs = {}
        has_dba = False
        for member_id in approvals.signer_ids():
            certificate = self.view.certificates.get(member_id)
            if certificate is None:
                return f"purge@{jsn}: unknown signer {member_id!r}", None
            signer_certs[member_id] = certificate
            has_dba = has_dba or certificate.role is Role.DBA
        if not has_dba:
            return f"purge@{jsn}: no DBA among signers", None
        return None, signer_certs

    def _purge_post(self, jsn, record, approvals) -> str | None:
        # Prerequisite 1 coverage: every *related* member (owner of a purged
        # journal, as recorded in the pseudo genesis) must have signed, in
        # addition to the DBA checked structurally.
        pseudo = self.view.pseudo_genesis
        if pseudo is not None and record.pseudo_genesis_hash == pseudo.hash():
            missing = sorted(
                member_id
                for member_id in pseudo.related_member_ids
                if member_id not in approvals.signer_ids()
            )
            if missing:
                return f"purge@{jsn}: related members did not sign: {missing}"
        return None

    def _occult_structural(self, jsn, record, approvals):
        from ..crypto.ca import Role

        if approvals.digest != record.approval_digest():
            return f"occult@{jsn}: signatures cover wrong record", None
        signer_certs = {}
        roles = set()
        for member_id in approvals.signer_ids():
            certificate = self.view.certificates.get(member_id)
            if certificate is None:
                return f"occult@{jsn}: unknown signer {member_id!r}", None
            signer_certs[member_id] = certificate
            roles.add(certificate.role)
        if Role.DBA not in roles or Role.REGULATOR not in roles:
            return f"occult@{jsn}: requires DBA and regulator signatures", None
        return None, signer_certs

    def _check_approvals(self, step_name, records, structural, post, noun) -> bool:
        with obs.span(f"audit.{step_name}"):
            outcomes = []  # per record: (detail|None, signer_certs|None)
            futures: list[Future | None] = []
            for jsn, record, approvals in records:
                detail, signer_certs = structural(jsn, record, approvals)
                outcomes.append((detail, signer_certs))
                if detail is None and self.workers:
                    futures.append(
                        self._submit(verify_multisig_task, approvals, signer_certs)
                    )
                else:
                    futures.append(None)
            for (jsn, record, approvals), (detail, signer_certs), future in zip(
                records, outcomes, futures
            ):
                if detail is not None:
                    return self._step(step_name, False, detail)
                error = (
                    future.result()
                    if future is not None
                    else verify_multisig_task(approvals, signer_certs)
                )
                if error is not None:
                    return self._step(step_name, False, f"{noun}@{jsn}: {error}")
                if post is not None:
                    detail = post(jsn, record, approvals)
                    if detail is not None:
                        return self._step(step_name, False, detail)
            return self._step(step_name, True, f"{len(records)} {noun} journal(s)")

    def check_purge_approvals(self) -> bool:
        """Π1: purge journals carry valid multi-signatures incl. a DBA."""
        return self._check_approvals(
            "purge-approvals",
            self.view.purge_approvals,
            self._purge_structural,
            self._purge_post,
            "purge",
        )

    def check_occult_approvals(self) -> bool:
        """Π2: occult journals carry valid DBA + regulator multi-signatures."""
        return self._check_approvals(
            "occult-approvals",
            self.view.occult_approvals,
            self._occult_structural,
            None,
            "occult",
        )

    # ------------------------------------------------------------------ replay

    def replay(self) -> bool:
        """V and V': full journal replay with block-root and chain checks.

        In parallel mode the fold runs here in the coordinator while
        signature chunks verify on the pool; failures from both sides merge
        on (jsn, check-priority), reproducing the sequential first-failure.
        """
        with obs.span("audit.replay") as sp:
            result = self._replay(sp)
            return result

    def _replay_genesis_state(self):
        """Initial (fam, state, clue_frontiers) — fresh, pseudo, or resumed."""
        view = self.view
        resumed = self._resumed
        if resumed is not None:
            fam = FamReplayer.from_snapshot(
                view.fractal_height,
                tuple(resumed.fam_epoch_roots),
                resumed.fam_live_size,
                tuple(resumed.fam_live_peaks),
                journal_count=resumed.fam_journal_count,
            )
            state = MPT()
            clue_frontiers: dict[str, FrontierAccumulator] = {}
            for clue, (size, peaks) in resumed.clue_snapshot.items():
                frontier = FrontierAccumulator(size, list(peaks))
                clue_frontiers[clue] = frontier
                state.put(clue_key_hash(clue), encode_clue_value(size, frontier.peaks()))
            return fam, state, clue_frontiers, None

        pseudo = view.pseudo_genesis
        if pseudo is not None and view.genesis_start > 0:
            if view.genesis_start != pseudo.purge_point:
                return None, None, None, "view genesis does not match pseudo genesis purge point"
            fam = FamReplayer.from_snapshot(
                view.fractal_height,
                pseudo.fam_epoch_roots,
                pseudo.fam_live_epoch[0],
                list(pseudo.fam_live_epoch[1]),
                journal_count=pseudo.purge_point,
            )
            if fam.current_root() != pseudo.fam_root:
                return None, None, None, "pseudo genesis fam snapshot does not bag to its root"
            state = MPT()
            clue_frontiers = {}
            for clue, size, peaks in pseudo.clue_snapshot:
                frontier = FrontierAccumulator(size, list(peaks))
                clue_frontiers[clue] = frontier
                state.put(clue_key_hash(clue), encode_clue_value(size, frontier.peaks()))
            if state.root != pseudo.state_root:
                return None, None, None, "pseudo genesis clue snapshot does not rebuild its state root"
            return fam, state, clue_frontiers, None
        return FamReplayer(view.fractal_height), MPT(), {}, None

    def _replay(self, sp) -> bool:
        from ..core.journal import Journal, JournalType
        from ..core.verification import parse_time_journal

        view = self.view
        resumed = self._resumed

        fam, state, clue_frontiers, init_error = self._replay_genesis_state()
        if init_error is not None:
            return self._step("replay", False, init_error)

        occult_by_target = {
            record.target_jsn: record for _jsn, record, _sig in view.occult_approvals
        }
        blocks = [b for b in view.blocks if b.end_jsn > view.genesis_start]

        if resumed is not None:
            start_jsn = resumed.next_jsn
            block_index = resumed.block_index
            previous_block_hash = resumed.previous_block_hash
            base_journals = resumed.journals_replayed
            base_blocks = resumed.blocks_verified
            receipt_root = resumed.receipt_root
            time_entries = list(self._resumed_time_entries)
        else:
            start_jsn = view.genesis_start
            block_index = 0
            previous_block_hash = blocks[0].previous_hash if blocks else EMPTY_DIGEST
            base_journals = 0
            base_blocks = 0
            receipt_root = None
            time_entries = []

        lsp_cert = view.certificates.get(view.lsp_member_id)
        if lsp_cert is None:
            return self._step("replay", False, "LSP certificate missing from view")

        receipt = view.latest_receipt
        receipt_jsn = receipt.jsn if receipt is not None else None
        base_block_index = block_index

        roots_after: dict[int, Digest] = {}
        #: (jsn, priority, detail) from fold-side checks; at most one.
        inline_failure: tuple[int, int, str] | None = None
        #: (jsn, priority, detail) from signature chunks, any order.
        sig_failures: list[tuple[int, int, str]] = []
        #: boundary jsns whose block checks passed, for exact counter replay.
        block_boundaries: list[int] = []
        #: buffered signature items + their jsns for the in-flight chunk.
        chunk_items: list[tuple[int, int, bytes, bytes]] = []
        chunk_jsns: list[int] = []
        pending: list[tuple[Future, list[int], float]] = []
        signatures_checked = 0

        def harvest(future: Future, jsns: list[int], submitted: float) -> None:
            nonlocal signatures_checked
            verdicts = future.result()
            obs.observe("audit.chunk.wall_us", (time.perf_counter() - submitted) * 1e6)
            signatures_checked += len(jsns)
            for jsn, ok in zip(jsns, verdicts):
                if not ok:
                    sig_failures.append(
                        (jsn, _P_SIGNATURE, f"jsn {jsn}: invalid issuer signature")
                    )

        def poll_chunks(wait: bool) -> None:
            remaining = []
            for future, jsns, submitted in pending:
                if wait or future.done():
                    harvest(future, jsns, submitted)
                else:
                    remaining.append((future, jsns, submitted))
            pending[:] = remaining

        def flush_chunk() -> None:
            if not chunk_items:
                return
            obs.observe("audit.chunk.size", len(chunk_items))
            obs.inc("audit.chunks.dispatched")
            pending.append(
                (
                    self._submit(verify_signature_chunk, list(chunk_items)),
                    list(chunk_jsns),
                    time.perf_counter(),
                )
            )
            chunk_items.clear()
            chunk_jsns.clear()
            poll_chunks(wait=False)

        start_offset = start_jsn - view.genesis_start
        jsn = start_jsn - 1  # value if the slice below is empty
        for entry in view.entries[start_offset:]:
            jsn = entry.jsn
            if entry.data is not None:
                try:
                    journal = Journal.from_bytes(entry.data)
                except Exception as exc:
                    inline_failure = (jsn, _P_DECODE, f"jsn {jsn}: undecodable: {exc}")
                    break
                if journal.jsn != jsn:
                    inline_failure = (
                        jsn, _P_JSN, f"jsn {jsn}: journal claims {journal.jsn}"
                    )
                    break
                digest = journal.tx_hash()
                if digest != entry.retained_hash:
                    inline_failure = (
                        jsn, _P_DIGEST, f"jsn {jsn}: digest mismatch with retained hash"
                    )
                    break
                if self.verify_client_signatures:
                    certificate = view.certificates.get(journal.client_id)
                    if certificate is None:
                        inline_failure = (
                            jsn,
                            _P_SIGNATURE,
                            f"jsn {jsn}: unknown member {journal.client_id!r}",
                        )
                        break
                    if journal.client_signature is None:
                        inline_failure = (
                            jsn, _P_SIGNATURE, f"jsn {jsn}: invalid issuer signature"
                        )
                        break
                    if self.workers:
                        point = certificate.public_key.point
                        chunk_items.append(
                            (
                                point.x,
                                point.y,
                                journal.request_hash,
                                journal.client_signature.to_bytes(),
                            )
                        )
                        chunk_jsns.append(jsn)
                        if len(chunk_items) >= self.chunk_size:
                            flush_chunk()
                            if sig_failures:
                                break
                    elif not certificate.public_key.verify(
                        journal.request_hash, journal.client_signature
                    ):
                        inline_failure = (
                            jsn, _P_SIGNATURE, f"jsn {jsn}: invalid issuer signature"
                        )
                        break
                if journal.journal_type is JournalType.TIME:
                    info = parse_time_journal(journal)
                    # The anchor was taken immediately before this journal
                    # was appended, so it must equal the running commitment.
                    if info["as_of_jsn"] != jsn:
                        inline_failure = (
                            jsn, _P_TIME, f"time journal {jsn}: as_of_jsn mismatch"
                        )
                        break
                    if info["anchored_root"] != fam.current_root():
                        inline_failure = (
                            jsn,
                            _P_TIME,
                            f"time journal {jsn}: anchored root does not match replay",
                        )
                        break
                    time_entries.append((jsn, info))
                clues = journal.clues
            else:
                # Mutated journal: Protocol 1/2 — use the retained digest.
                digest = entry.retained_hash
                clues = ()
                if entry.occulted:
                    record = occult_by_target.get(jsn)
                    if record is None:
                        inline_failure = (
                            jsn, _P_DIGEST, f"jsn {jsn}: occulted without an occult record"
                        )
                        break
                    if record.retained_hash != digest:
                        inline_failure = (
                            jsn, _P_DIGEST, f"jsn {jsn}: retained hash disagrees with record"
                        )
                        break
                    # The occult record retains the clue labels so lineage
                    # state replay stays complete after the payload is gone.
                    clues = record.retained_clues

            fam.append(digest)
            roots_after[jsn] = fam.current_root()
            if jsn == receipt_jsn:
                receipt_root = fam.current_root()
            for clue in clues:
                frontier = clue_frontiers.get(clue)
                if frontier is None:
                    frontier = FrontierAccumulator()
                    clue_frontiers[clue] = frontier
                frontier.append_leaf(digest)
                state.put(clue_key_hash(clue), encode_clue_value(frontier.size, frontier.peaks()))

            # Block boundary checks (V at boundaries, V' across them).
            if block_index < len(blocks) and jsn + 1 == blocks[block_index].end_jsn:
                block = blocks[block_index]
                if block.previous_hash != previous_block_hash:
                    inline_failure = (
                        jsn, _P_CHAIN, f"block {block.height}: broken chain link"
                    )
                    break
                if block.journal_root != fam.current_root():
                    inline_failure = (
                        jsn, _P_JOURNAL_ROOT, f"block {block.height}: journal root mismatch"
                    )
                    break
                if block.state_root != state.root:
                    inline_failure = (
                        jsn, _P_STATE_ROOT, f"block {block.height}: state root mismatch"
                    )
                    break
                previous_block_hash = block.hash()
                block_index += 1
                block_boundaries.append(jsn)

                if (
                    self.checkpoint_store is not None
                    and (block_index - base_block_index) % self.checkpoint_every == 0
                ):
                    # Drain in-flight chunks first: a checkpoint asserts that
                    # everything below next_jsn is verified, signatures
                    # included.
                    flush_chunk()
                    poll_chunks(wait=True)
                    if sig_failures:
                        break
                    self._save_checkpoint(
                        fam,
                        clue_frontiers,
                        next_jsn=jsn + 1,
                        previous_block_hash=previous_block_hash,
                        block_index=block_index,
                        journals_replayed=base_journals + (jsn + 1 - start_jsn),
                        blocks_verified=base_blocks + len(block_boundaries),
                        time_entries=time_entries,
                        receipt_jsn=receipt_jsn,
                        receipt_root=receipt_root,
                    )

        # Fold done (or aborted) — drain every outstanding signature chunk.
        flush_chunk()
        poll_chunks(wait=True)
        sp.add("journals", max(0, jsn + 1 - start_jsn))

        candidates = list(sig_failures)
        if inline_failure is not None:
            candidates.append(inline_failure)
        if candidates:
            first_jsn, _priority, detail = min(candidates, key=lambda c: (c[0], c[1]))
            # Counters exactly as the sequential engine would have left them
            # at this failure: completed entries below the failing jsn, and
            # block boundaries that passed strictly before it.
            self.report.journals_replayed = base_journals + (first_jsn - start_jsn)
            self.report.blocks_verified = base_blocks + sum(
                1 for boundary in block_boundaries if boundary < first_jsn
            )
            return self._step("replay", False, detail)

        self.report.journals_replayed = base_journals + (jsn + 1 - start_jsn)
        self.report.blocks_verified = base_blocks + len(block_boundaries)
        if block_index != len(blocks):
            return self._step(
                "replay", False, f"{len(blocks) - block_index} block(s) had no matching journals"
            )
        obs.inc("audit.journals.replayed", self.report.journals_replayed)
        obs.inc("audit.signatures.verified", signatures_checked)
        self._roots_after = roots_after
        self._receipt_root = receipt_root
        self._time_entries = time_entries
        if self.checkpoint_store is not None:
            # Final snapshot: a re-run (e.g. after a failure in a later
            # phase) resumes past the whole fold.
            self._save_checkpoint(
                fam,
                clue_frontiers,
                next_jsn=jsn + 1,
                previous_block_hash=previous_block_hash,
                block_index=block_index,
                journals_replayed=self.report.journals_replayed,
                blocks_verified=self.report.blocks_verified,
                time_entries=time_entries,
                receipt_jsn=receipt_jsn,
                receipt_root=receipt_root,
            )
        return self._step(
            "replay",
            True,
            f"{self.report.journals_replayed} journals, {self.report.blocks_verified} blocks",
        )

    # ------------------------------------------------------------------- when

    def check_time_journals(self) -> bool:
        """TSA evidence for every (in-range) time journal, plus monotonicity."""
        from ..core.verification import check_time_evidence

        with obs.span("audit.time_journals") as sp:
            entries = self._time_entries
            sp.add("anchors", len(entries))
            if self.workers and entries:
                payload = [
                    (info, self.view.time_evidence.get(jsn)) for jsn, info in entries
                ]
                futures = [
                    self._submit(check_time_evidence_chunk, chunk, self.tsa_keys)
                    for chunk in self._chunked(payload)
                ]
                results = [item for future in futures for item in future.result()]
            else:
                results = None
            previous_timestamp = float("-inf")
            verified = 0
            for index, (jsn, info) in enumerate(entries):
                if results is not None:
                    timestamp, valid = results[index]
                else:
                    evidence = self.view.time_evidence.get(jsn)
                    timestamp, valid = check_time_evidence(info, evidence, self.tsa_keys)
                if self.temporal_range is not None:
                    low, high = self.temporal_range
                    if not low <= timestamp <= high:
                        continue  # outside the audit's temporal predicate
                if not valid:
                    return self._step(
                        "time-journals", False, f"time journal {jsn}: evidence failed"
                    )
                if timestamp < previous_timestamp:
                    return self._step(
                        "time-journals", False, f"time journal {jsn}: timestamp regression"
                    )
                previous_timestamp = timestamp
                verified += 1
            self.report.time_journals_verified = verified
            return self._step("time-journals", True, f"{verified} anchors verified")

    # -------------------------------------------------------------------- Π3

    def check_receipt(self) -> bool:
        with obs.span("audit.receipt"):
            receipt = self.view.latest_receipt
            if receipt is None:
                return self._step("receipt", False, "no receipt supplied")
            lsp_cert = self.view.certificates.get(self.view.lsp_member_id)
            if lsp_cert is None or not receipt.verify(lsp_cert.public_key):
                return self._step("receipt", False, "LSP signature invalid")
            if receipt.jsn >= self.view.genesis_start:
                entry = self.view.entry(receipt.jsn)
                if entry.retained_hash != receipt.tx_hash:
                    return self._step("receipt", False, "receipt tx-hash mismatch")
                expected_root = self._roots_after.get(receipt.jsn)
                if expected_root is None:
                    # Resumed replay never re-folds past the receipt's jsn;
                    # the checkpointed root stands in.
                    expected_root = self._receipt_root
                if expected_root is not None and receipt.ledger_root != expected_root:
                    return self._step("receipt", False, "receipt ledger root mismatch")
            return self._step("receipt", True, f"receipt for jsn {receipt.jsn}")

    # ------------------------------------------------------------- checkpoints

    def _save_checkpoint(
        self,
        fam: FamReplayer,
        clue_frontiers: dict[str, FrontierAccumulator],
        *,
        next_jsn: int,
        previous_block_hash: Digest,
        block_index: int,
        journals_replayed: int,
        blocks_verified: int,
        time_entries: list[tuple[int, dict]],
        receipt_jsn: int | None,
        receipt_root: Digest | None,
    ) -> None:
        with obs.span("audit.checkpoint.save"):
            checkpoint = AuditCheckpoint(
                uri=self.view.uri,
                fractal_height=self.view.fractal_height,
                genesis_start=self.view.genesis_start,
                next_jsn=next_jsn,
                fam_epoch_roots=list(fam._epoch_roots),
                fam_live_size=fam._live.size,
                fam_live_peaks=list(fam._live.peaks()),
                fam_journal_count=fam.size,
                clue_snapshot={
                    clue: (frontier.size, list(frontier.peaks()))
                    for clue, frontier in clue_frontiers.items()
                },
                previous_block_hash=previous_block_hash,
                block_index=block_index,
                journals_replayed=journals_replayed,
                blocks_verified=blocks_verified,
                time_jsns=[jsn for jsn, _info in time_entries],
                receipt_jsn=receipt_jsn,
                receipt_root=receipt_root,
                pre_steps=[
                    (step.name, step.passed, step.detail)
                    for step in self.report.steps
                    if step.name != "replay"
                ],
            )
            self.checkpoint_store.save(checkpoint)
            obs.inc("audit.checkpoints.saved")

    def _try_resume(self) -> None:
        """Adopt the stored checkpoint when it provably fits this view."""
        if self.checkpoint_store is None or not self.resume:
            return
        checkpoint = self.checkpoint_store.load()
        if checkpoint is None or not checkpoint.matches_view(self.view):
            return
        receipt = self.view.latest_receipt
        if receipt is not None and receipt.jsn < checkpoint.next_jsn:
            # The fold will never pass the receipt's jsn again, so the
            # replayed root must come from the checkpoint — only safe when
            # the checkpoint tracked this very receipt.
            if checkpoint.receipt_jsn != receipt.jsn:
                return
        from ..core.journal import Journal, JournalType
        from ..core.verification import parse_time_journal

        # Re-derive the collected time entries from the view itself; a view
        # that no longer decodes them does not fit this checkpoint.
        time_entries: list[tuple[int, dict]] = []
        for jsn in checkpoint.time_jsns:
            entry = self.view.entry(jsn)
            if entry.data is None:
                return
            journal = Journal.from_bytes(entry.data)
            if journal.journal_type is not JournalType.TIME:
                return
            time_entries.append((jsn, parse_time_journal(journal)))
        self._resumed = checkpoint
        self._resumed_time_entries = time_entries
        obs.inc("audit.resumes")

    # -------------------------------------------------------------------- run

    def run(self) -> AuditReport:
        with obs.span("audit.run"):
            try:
                self._try_resume()
                if self._resumed is not None:
                    # Pre-replay steps were already adjudicated before the
                    # checkpoint was written; replay them verbatim.
                    for name, passed, detail in self._resumed.pre_steps:
                        self._step(name, passed, detail)
                        if not passed and self.early_terminate:
                            return self.report
                    steps = (
                        self.replay,
                        self.check_time_journals,
                        self.check_receipt,
                    )
                else:
                    steps = (
                        self.check_certificates,
                        self.check_purge_approvals,
                        self.check_occult_approvals,
                        self.replay,
                        self.check_time_journals,
                        self.check_receipt,
                    )
                for step in steps:
                    ok = step()
                    if not ok and self.early_terminate:
                        break
                return self.report
            finally:
                self._shutdown_pool()


def dasein_audit(
    view,
    tsa_keys: dict[str, PublicKey] | None = None,
    temporal_range: tuple[float, float] | None = None,
    verify_client_signatures: bool = True,
    early_terminate: bool = True,
    *,
    workers: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: CheckpointStore | str | os.PathLike | None = None,
    resume: bool = False,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    pool: str = "auto",
) -> AuditReport:
    """Run the full §V Dasein-complete audit over an exported view.

    ``temporal_range`` optionally limits which time anchors are validated
    (the §V closing example: "audit all transactions committed before
    2018-12-31"); replay integrity is always checked end to end because root
    continuity requires it.

    With ``early_terminate`` (the paper's default semantics) the audit stops
    at the first failed sub-proof; disable it to collect every failure.

    ``workers`` switches on the parallel engine: signature verification
    (client pi_c per journal, Π1/Π2 multi-signatures, TSA evidence) is
    chunked onto a pool of ``workers`` processes (threads where fork is
    unavailable, or with ``pool='thread'``) and overlapped with the replay
    fold.  The report is byte-identical to the sequential engine's for any
    worker count.  ``chunk_size`` tunes journals per dispatched chunk.

    ``checkpoint`` (a path or :class:`CheckpointStore`) makes the audit
    resumable: replay state is snapshotted every ``checkpoint_every``
    verified blocks, and ``resume=True`` continues a killed audit from the
    last good jsn instead of genesis.
    """
    if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
        checkpoint = CheckpointStore(checkpoint)
    engine = _AuditEngine(
        view,
        tsa_keys or {},
        temporal_range,
        verify_client_signatures,
        early_terminate,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_store=checkpoint,
        resume=resume,
        checkpoint_every=checkpoint_every,
        pool_kind=pool,
    )
    return engine.run()
