"""Audit report types shared by the sequential and parallel engines.

The report is the audit's *product*: a list of named sub-proof outcomes plus
replay counters.  Both engine modes (inline and worker-pool) must emit
byte-identical reports for the same view — :func:`AuditReport.canonical`
serialises a report into the canonical JSON form that the equivalence tests
(and the ``--json`` CLI) pin, so "identical" is checkable as plain byte
equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["AuditStep", "AuditReport"]


@dataclass(frozen=True)
class AuditStep:
    """One verification sub-task and its outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class AuditReport:
    """The conjunction of every audit sub-proof (§V step 6)."""

    passed: bool
    steps: list[AuditStep] = field(default_factory=list)
    journals_replayed: int = 0
    blocks_verified: int = 0
    time_journals_verified: int = 0

    def failures(self) -> list[AuditStep]:
        return [step for step in self.steps if not step.passed]

    def to_dict(self) -> dict:
        """JSON-serialisable form (every field, steps in order)."""
        return {
            "passed": self.passed,
            "steps": [
                {"name": s.name, "passed": s.passed, "detail": s.detail}
                for s in self.steps
            ],
            "journals_replayed": self.journals_replayed,
            "blocks_verified": self.blocks_verified,
            "time_journals_verified": self.time_journals_verified,
        }

    def canonical(self) -> bytes:
        """Canonical byte encoding — what "byte-identical reports" means."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")).encode()
