"""Cost model for end-to-end latency shapes we cannot measure for real.

The paper's application-level experiments (§VI-D, Table II, Figure 10) run
against deployed cloud services — QLDB on AWS, LedgerDB on Alibaba Cloud, a
multi-node Fabric cluster.  This reproduction runs in one process, so those
experiments combine two ingredients:

* **measured work** — every hash, signature, and Merkle operation in the
  simulators is executed for real;
* **modelled environment costs** — network round trips, disk I/O, consensus
  batching — accounted through a :class:`CostMeter` against a calibrated
  :class:`CostProfile`.

Profiles are calibrated to the magnitudes the paper reports (e.g. QLDB
verify ≈ 1.5 s, Fabric commit ≈ 1.2 s, same-region API RTT ≈ 25 ms) so the
reproduced *shapes* — who wins, by what factor, where curves cross — are
driven by operation counts, not by tuning each data point.  EXPERIMENTS.md
records the calibration constants next to every affected experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CostProfile",
    "CostMeter",
    "LEDGERDB_PROFILE",
    "QLDB_PROFILE",
    "FABRIC_PROFILE",
]


@dataclass(frozen=True)
class CostProfile:
    """Per-operation environment costs, in the units suffixed on each name."""

    name: str
    hash_us: float = 0.5  # one SHA-256 over a small buffer
    sign_us: float = 80.0  # ECDSA P-256 sign (native-speed assumption)
    verify_sig_us: float = 110.0  # ECDSA P-256 verify
    disk_read_us: float = 120.0  # one random read (ESSD-class)
    disk_write_us: float = 30.0  # one appending write
    net_rtt_ms: float = 0.25  # intra-cluster round trip (25 GbE)
    api_rtt_ms: float = 25.0  # client <-> cloud service round trip
    tsa_rtt_ms: float = 50.0  # external TSA authority round trip
    per_kb_transfer_us: float = 8.0  # payload transfer cost per KiB
    consensus_batch_ms: float = 0.0  # ordering-service batching delay
    service_overhead_ms: float = 0.0  # opaque service-side processing per call


#: LedgerDB as a public-cloud service (Alibaba Cloud deployment of §VI-D).
LEDGERDB_PROFILE = CostProfile(
    name="ledgerdb",
    api_rtt_ms=25.0,
)

#: QLDB service profile.  ``service_overhead_ms`` calibrates the opaque
#: server-side digest/proof machinery behind GetRevision (Table II: 1.56 s
#: verify for a 32 KB document, of which ~2 API RTTs are ours to model).
QLDB_PROFILE = CostProfile(
    name="qldb",
    api_rtt_ms=30.0,
    service_overhead_ms=1480.0,
)

#: Hyperledger Fabric 2.2 with a Kafka ordering service (§VI-D topology:
#: 3 ZooKeeper, 4 Kafka, 5 endorsers, 3 orderers).  The batching delay
#: dominates commit latency (~1.2 s reported).
FABRIC_PROFILE = CostProfile(
    name="fabric",
    net_rtt_ms=0.25,
    consensus_batch_ms=1100.0,
    service_overhead_ms=60.0,
)


class CostMeter:
    """Accumulates modelled environment costs for one operation or run."""

    def __init__(self, profile: CostProfile) -> None:
        self.profile = profile
        self._ms: float = 0.0
        self._counts: dict[str, int] = {}
        self._breakdown_ms: dict[str, float] = {}

    # Each record_* method returns self so call sites can chain.

    def _add(self, op: str, count: float, ms_each: float) -> "CostMeter":
        self._counts[op] = self._counts.get(op, 0) + int(count)
        cost = count * ms_each
        self._breakdown_ms[op] = self._breakdown_ms.get(op, 0.0) + cost
        self._ms += cost
        return self

    def hashes(self, count: int = 1) -> "CostMeter":
        return self._add("hash", count, self.profile.hash_us / 1000.0)

    def signs(self, count: int = 1) -> "CostMeter":
        return self._add("sign", count, self.profile.sign_us / 1000.0)

    def verifies(self, count: int = 1) -> "CostMeter":
        return self._add("verify_sig", count, self.profile.verify_sig_us / 1000.0)

    def disk_reads(self, count: int = 1) -> "CostMeter":
        return self._add("disk_read", count, self.profile.disk_read_us / 1000.0)

    def disk_writes(self, count: int = 1) -> "CostMeter":
        return self._add("disk_write", count, self.profile.disk_write_us / 1000.0)

    def net_rtts(self, count: int = 1) -> "CostMeter":
        return self._add("net_rtt", count, self.profile.net_rtt_ms)

    def api_rtts(self, count: int = 1) -> "CostMeter":
        return self._add("api_rtt", count, self.profile.api_rtt_ms)

    def tsa_rtts(self, count: int = 1) -> "CostMeter":
        return self._add("tsa_rtt", count, self.profile.tsa_rtt_ms)

    def transfer_kb(self, kilobytes: float) -> "CostMeter":
        return self._add("transfer", kilobytes, self.profile.per_kb_transfer_us / 1000.0)

    def consensus_batches(self, count: int = 1) -> "CostMeter":
        return self._add("consensus_batch", count, self.profile.consensus_batch_ms)

    def service_calls(self, count: int = 1) -> "CostMeter":
        return self._add("service", count, self.profile.service_overhead_ms)

    # ------------------------------------------------------------ reporting

    @property
    def elapsed_ms(self) -> float:
        """Total modelled latency accumulated so far."""
        return self._ms

    @property
    def elapsed_s(self) -> float:
        return self._ms / 1000.0

    def breakdown(self) -> dict[str, float]:
        """Per-operation modelled milliseconds."""
        return dict(self._breakdown_ms)

    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._ms = 0.0
        self._counts.clear()
        self._breakdown_ms.clear()
