"""Environment simulation: calibrated cost model for cloud-scale experiments."""

from .costmodel import (
    FABRIC_PROFILE,
    LEDGERDB_PROFILE,
    QLDB_PROFILE,
    CostMeter,
    CostProfile,
)

__all__ = [
    "FABRIC_PROFILE",
    "LEDGERDB_PROFILE",
    "QLDB_PROFILE",
    "CostMeter",
    "CostProfile",
]
