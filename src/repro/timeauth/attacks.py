"""Timestamp-attack scenarios (§III-B1, Figure 5).

Two adversary playbooks are implemented against the simulated clock:

* :func:`run_one_way_amplification` — the *infinite time amplification*
  attack on one-way pegging: the LSP delays a journal's digest submission,
  so the journal stays tamperable (its claimed creation time forgeable)
  for the whole delay.  The achievable malicious window grows without bound.

* :func:`run_two_way_window` — the best an adversary can do against two-way
  pegging / T-Ledger: create a journal right after an anchor at τ1, submit
  just before the stamping deadline, and anchor the reply as late as
  possible.  The malicious window is capped at ~2·Δτ regardless of patience.

Both return :class:`AttackResult` records that the Figure-5 benchmark prints
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import leaf_hash
from .clock import SimClock
from .pegging import OneWayPegger, PublicChainNotary, TimeBound, TwoWayPegger
from .tsa import TimeStampAuthority
from .tledger import StaleRequestError, TimeLedger

__all__ = [
    "AttackResult",
    "run_one_way_amplification",
    "run_two_way_window",
    "run_tledger_stale_submission",
]


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one adversary scenario.

    ``malicious_window`` is the span of time during which the adversary could
    substitute/tamper the journal while still obtaining the same anchored
    time evidence; ``theoretical_bound`` is what the protocol guarantees
    (``inf`` for one-way pegging).
    """

    protocol: str
    adversary_delay: float
    creation_time: float
    evidence_bound: TimeBound
    malicious_window: float
    theoretical_bound: float

    @property
    def bounded(self) -> bool:
        return self.malicious_window <= self.theoretical_bound + 1e-9


def run_one_way_amplification(
    adversary_delay: float,
    block_interval: float = 600.0,
) -> AttackResult:
    """Infinite time amplification against one-way pegging (Figure 5(a)).

    A journal is created at τ2; the colluding LSP withholds its digest for
    ``adversary_delay`` seconds before submitting.  Until the digest lands in
    a notary block, nothing commits the journal's content — the adversary may
    rewrite it freely and still claim it existed "since τ2".  The malicious
    window therefore equals (anchor time − creation time) and grows linearly
    with the delay: unbounded.
    """
    clock = SimClock()
    notary = PublicChainNotary(clock, block_interval=block_interval)
    pegger = OneWayPegger(notary)

    clock.advance(10.0)
    creation_time = clock.now()  # τ2: journal is created
    journal_digest = leaf_hash(b"journal created at tau2")

    clock.advance(adversary_delay)  # the LSP sits on it
    pegger.peg(journal_digest)  # finally submitted at τ3
    clock.advance(block_interval)  # wait for inclusion
    bound = pegger.time_bound_for(journal_digest)
    assert bound is not None
    return AttackResult(
        protocol="one-way",
        adversary_delay=adversary_delay,
        creation_time=creation_time,
        evidence_bound=bound,
        malicious_window=bound.upper - creation_time,
        theoretical_bound=float("inf"),
    )


def run_two_way_window(
    adversary_delay: float,
    peg_interval: float = 1.0,
    epsilon: float = 1e-3,
) -> AttackResult:
    """Best-effort attack against two-way pegging (Figure 5(b)).

    The ledger pegs every Δτ = ``peg_interval`` seconds; anchors land at
    τ1, τ3 = τ1 + Δτ, τ5 = τ1 + 2·Δτ, ...  The adversary:

    1. creates (or plans to tamper) a journal at τ2 ≈ τ1, just after an
       anchor, so the current bracket is as fresh as possible;
    2. submits the covering ledger digest for TSA endorsement at the last
       scheduled moment τ3;
    3. holds the TSA's reply token and anchors it back at τ4, as late as
       possible — but **before τ5**, because the next finalization is
       protocol-scheduled and an unanchored epoch is immediately visible to
       any auditor of the public anchor chain.

    However patient the adversary (``adversary_delay``), step 3 clamps the
    tamper window (τ2, τ4) to < 2·Δτ.
    """
    clock = SimClock()
    tsa = TimeStampAuthority("tsa-0", clock)
    anchor_times: list[float] = []
    pegger = TwoWayPegger(tsa, anchor_callback=lambda token: anchor_times.append(clock.now()))

    # Anchor at τ1.
    clock.advance(10.0)
    pegger.peg(leaf_hash(b"ledger digest at tau1"))
    tau1 = clock.now()

    # Journal created at τ2 = τ1 + ε.
    clock.advance(epsilon)
    creation_time = clock.now()

    # Submission happens at the scheduled peg time τ3 = τ1 + Δτ.
    clock.advance(peg_interval - epsilon)
    tau3 = clock.now()
    token = tsa.stamp(leaf_hash(b"ledger digest covering the journal"))

    # Hold the token; the anchor-back must land before τ5 = τ3 + Δτ.
    max_hold = peg_interval - epsilon
    hold = min(adversary_delay, max_hold)
    clock.advance(hold)
    pegger._anchor(token)  # τ4: the token finally lands on the ledger
    tau4 = clock.now()

    return AttackResult(
        protocol="two-way",
        adversary_delay=adversary_delay,
        creation_time=creation_time,
        evidence_bound=TimeBound(lower=tau1, upper=tau3),
        malicious_window=tau4 - creation_time,
        theoretical_bound=2 * peg_interval,
    )


def run_tledger_stale_submission(
    hold_back: float,
    admission_tolerance: float = 1.0,
    finalize_interval: float = 1.0,
) -> bool:
    """Protocol 4 in action: does a held-back submission get through?

    A client stamps its request with τ_c, then the adversary delays delivery
    by ``hold_back`` seconds.  Returns True if the T-Ledger *accepted* the
    request (hold_back within τ_Δ), False if it was rejected as stale —
    demonstrating that the bottom-layer one-way protocol "eliminates the time
    amplification issue" (§III-B2).
    """
    clock = SimClock()
    tsa = TimeStampAuthority("tsa-0", clock)
    tledger = TimeLedger(
        clock,
        tsa,
        finalize_interval=finalize_interval,
        admission_tolerance=admission_tolerance,
    )
    clock.advance(5.0)
    client_timestamp = clock.now()  # τ_c stamped into the request
    digest = leaf_hash(b"common ledger digest")
    clock.advance(hold_back)  # adversary sits on the request
    try:
        tledger.submit("ledger-1", digest, client_timestamp)
    except StaleRequestError:
        return False
    return True
