"""T-Ledger — the two-layer time-notary anchoring architecture (§III-B2).

Direct TSA interaction per journal is costly, and shrinking the malicious
window Δτ means stamping *more* often.  The T-Ledger amortises this:

* **bottom layer** (common ledger → T-Ledger): an advanced one-way pegging
  protocol (Protocol 4).  A ledger submits (digest, local timestamp τ_c);
  the T-Ledger admits the request only if its own clock τ_t satisfies
  ``τ_t < τ_c + τ_Δ`` — a stale request (one the adversary sat on) is
  rejected, which removes the time-amplification loophole of plain one-way
  pegging.
* **top layer** (T-Ledger → TSA): the two-way pegging protocol (Protocol 3)
  every Δτ seconds — the *periodic time notary finalization*.  The TSA token
  is recorded back on the T-Ledger as a time journal.

The T-Ledger is public (Prerequisite 4): anyone can download its entries and
re-verify every accumulator proof and TSA signature offline, which is what
:class:`TimeEvidence` packages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest
from ..merkle.proofs import MembershipProof
from ..merkle.shrubs import ShrubsAccumulator
from .clock import Clock
from .pegging import TimeBound
from .tsa import TimeStampAuthority, TimeStampToken, TSAPool

__all__ = [
    "NotaryEntry",
    "NotaryReceipt",
    "Finalization",
    "TimeEvidence",
    "TimeLedger",
    "StaleRequestError",
]


class StaleRequestError(Exception):
    """Protocol 4 admission failure: the request's τ_c is too old (or ahead)."""


@dataclass(frozen=True)
class NotaryEntry:
    """One digest recorded on the T-Ledger."""

    seq: int
    ledger_id: str
    digest: Digest
    client_timestamp: float  # τ_c
    notary_timestamp: float  # τ_t at admission

    def leaf_digest(self) -> Digest:
        from ..crypto.hashing import leaf_hash
        from ..encoding import encode

        return leaf_hash(
            encode(
                {
                    "seq": self.seq,
                    "ledger_id": self.ledger_id,
                    "digest": self.digest,
                    "client_timestamp": self.client_timestamp,
                    "notary_timestamp": self.notary_timestamp,
                }
            )
        )


@dataclass(frozen=True)
class NotaryReceipt:
    """Returned to the submitting ledger at admission time."""

    seq: int
    notary_timestamp: float


@dataclass(frozen=True)
class Finalization:
    """A periodic TSA finalization covering entries ``[0, covered_size)``."""

    index: int
    covered_size: int
    root: Digest
    token: TimeStampToken


@dataclass(frozen=True)
class TimeEvidence:
    """Everything needed to verify a notary entry's time window offline.

    * ``inclusion`` proves the entry is committed by ``finalization.root``;
    * ``finalization.token`` is the TSA's signature on (root, t_upper);
    * ``previous_token`` (from the preceding finalization) gives t_lower.
    """

    entry: NotaryEntry
    inclusion: MembershipProof
    finalization: Finalization
    previous_token: TimeStampToken | None

    def time_bound(self) -> TimeBound:
        lower = self.previous_token.timestamp if self.previous_token else float("-inf")
        return TimeBound(lower=lower, upper=self.finalization.token.timestamp)

    def verify(self, tsa: "TSAPool | TimeStampAuthority | dict") -> bool:
        """Full offline verification of this evidence.  Never raises.

        ``tsa`` may be the authority object, a pool, or — for fully offline
        auditors — a plain ``{tsa_id: PublicKey}`` mapping.
        """
        if isinstance(tsa, dict):
            def verify_token(token: TimeStampToken) -> bool:
                key = tsa.get(token.tsa_id)
                return key is not None and token.verify(key)
        elif isinstance(tsa, TSAPool):
            verify_token = tsa.verify
        else:
            authority = tsa

            def verify_token(token: TimeStampToken) -> bool:
                return token.verify(authority.public_key)
        if not verify_token(self.finalization.token):
            return False
        if self.finalization.token.digest != self.finalization.root:
            return False
        if self.previous_token is not None and not verify_token(self.previous_token):
            return False
        if self.inclusion.tree_size != self.finalization.covered_size:
            return False
        if not self.inclusion.verify(self.entry.leaf_digest(), self.finalization.root):
            return False
        return True


class TimeLedger:
    """The public T-Ledger service."""

    def __init__(
        self,
        clock: Clock,
        tsa: TimeStampAuthority | TSAPool,
        finalize_interval: float = 1.0,  # Δτ: TSA proof sought every second
        admission_tolerance: float = 1.0,  # τ_Δ of Protocol 4
    ) -> None:
        if finalize_interval <= 0 or admission_tolerance <= 0:
            raise ValueError("intervals must be positive")
        self._clock = clock
        self._tsa = tsa
        self.finalize_interval = finalize_interval
        self.admission_tolerance = admission_tolerance
        self._entries: list[NotaryEntry] = []
        self._accumulator = ShrubsAccumulator()
        self._finalizations: list[Finalization] = []
        self._next_finalize_time = clock.now() + finalize_interval
        self.rejected_count = 0

    # ---------------------------------------------------------------- submit

    def submit(self, ledger_id: str, digest: Digest, client_timestamp: float) -> NotaryReceipt:
        """Protocol 4 step 1-2: admit a digest if its τ_c is fresh.

        Raises :class:`StaleRequestError` when ``τ_t >= τ_c + τ_Δ`` (the
        request was held back) or when τ_c claims a future time beyond the
        tolerance (a backdating setup for later).
        """
        self.tick()
        notary_now = self._clock.now()
        if notary_now >= client_timestamp + self.admission_tolerance:
            self.rejected_count += 1
            raise StaleRequestError(
                f"request is stale: τ_t={notary_now:.3f} >= τ_c={client_timestamp:.3f} "
                f"+ τ_Δ={self.admission_tolerance:.3f}"
            )
        if client_timestamp > notary_now + self.admission_tolerance:
            self.rejected_count += 1
            raise StaleRequestError(
                f"request claims a future τ_c={client_timestamp:.3f} beyond "
                f"tolerance at τ_t={notary_now:.3f}"
            )
        entry = NotaryEntry(
            seq=len(self._entries),
            ledger_id=ledger_id,
            digest=digest,
            client_timestamp=client_timestamp,
            notary_timestamp=notary_now,
        )
        self._entries.append(entry)
        self._accumulator.append_leaf(entry.leaf_digest())
        return NotaryReceipt(seq=entry.seq, notary_timestamp=notary_now)

    # -------------------------------------------------------------- finalize

    def tick(self) -> int:
        """Run every due periodic finalization; returns how many ran."""
        ran = 0
        while self._next_finalize_time <= self._clock.now():
            self._finalize()
            self._next_finalize_time += self.finalize_interval
            ran += 1
        return ran

    def _finalize(self) -> None:
        covered = self._accumulator.size
        if covered == 0 and self._finalizations:
            # Nothing new to notarise and an anchor already exists: the TSA
            # round would re-sign the same root; still do it so the chain of
            # tokens stays dense (bounds stay tight even over idle periods).
            pass
        root = self._accumulator.root()
        token = self._tsa.stamp(root)
        self._finalizations.append(
            Finalization(
                index=len(self._finalizations),
                covered_size=covered,
                root=root,
                token=token,
            )
        )

    def force_finalize(self) -> Finalization:
        """Immediately run one finalization (test/benchmark hook)."""
        self._finalize()
        return self._finalizations[-1]

    # -------------------------------------------------------------- evidence

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def finalizations(self) -> list[Finalization]:
        return list(self._finalizations)

    def entry(self, seq: int) -> NotaryEntry:
        return self._entries[seq]

    def get_evidence(self, seq: int) -> TimeEvidence:
        """Build offline-verifiable evidence for entry ``seq``.

        Requires a finalization covering the entry (i.e. at least one
        finalization after its admission) — callers should :meth:`tick`
        first, or wait up to Δτ of simulated time.
        """
        self.tick()
        if not 0 <= seq < len(self._entries):
            raise IndexError(f"no notary entry {seq}")
        covering = next(
            (f for f in self._finalizations if f.covered_size > seq), None
        )
        if covering is None:
            raise LookupError(
                f"entry {seq} not yet covered by a finalization; advance the clock"
            )
        previous = self._finalizations[covering.index - 1] if covering.index > 0 else None
        return TimeEvidence(
            entry=self._entries[seq],
            inclusion=self._accumulator.prove(seq, at_size=covering.covered_size),
            finalization=covering,
            previous_token=previous.token if previous else None,
        )

    def verify_evidence(self, evidence: TimeEvidence) -> bool:
        """Server-side convenience wrapper over :meth:`TimeEvidence.verify`."""
        return evidence.verify(self._tsa)
