"""Simulated clocks for deterministic time-protocol experiments.

Every actor in the *when* experiments (ledger, TSA, T-Ledger, adversary)
shares one :class:`SimClock`, so timestamp-attack scenarios are exactly
reproducible.  :class:`SkewedClock` derives a per-actor view with a fixed
offset, modelling a server whose local clock drifts from the authority's —
the situation Protocol 4's tau_delta admission check exists for.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

__all__ = ["Clock", "SimClock", "SkewedClock", "WallClock"]


class Clock(ABC):
    """Source of the current time in seconds."""

    @abstractmethod
    def now(self) -> float: ...


class SimClock(Clock):
    """A manually-advanced simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps (time is monotonic)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to an absolute time (no-op if already past it)."""
        self._now = max(self._now, float(timestamp))
        return self._now


class SkewedClock(Clock):
    """A view of another clock shifted by a constant offset (clock drift)."""

    def __init__(self, base: Clock, offset: float) -> None:
        self._base = base
        self.offset = float(offset)

    def now(self) -> float:
        return self._base.now() + self.offset


class WallClock(Clock):
    """Real OS time — for live demos only; tests use :class:`SimClock`."""

    def now(self) -> float:
        return time.time()
