"""Time verification (*when*): clocks, TSA, pegging protocols, T-Ledger."""

from .attacks import (
    AttackResult,
    run_one_way_amplification,
    run_tledger_stale_submission,
    run_two_way_window,
)
from .clock import Clock, SimClock, SkewedClock, WallClock
from .pegging import NotaryEvidence, OneWayPegger, PublicChainNotary, TimeBound, TwoWayPegger
from .tledger import (
    Finalization,
    NotaryEntry,
    NotaryReceipt,
    StaleRequestError,
    TimeEvidence,
    TimeLedger,
)
from .tsa import TimeStampAuthority, TimeStampToken, TSAPool, TSAUnavailableError

__all__ = [
    "AttackResult",
    "run_one_way_amplification",
    "run_tledger_stale_submission",
    "run_two_way_window",
    "Clock",
    "SimClock",
    "SkewedClock",
    "WallClock",
    "NotaryEvidence",
    "OneWayPegger",
    "PublicChainNotary",
    "TimeBound",
    "TwoWayPegger",
    "Finalization",
    "NotaryEntry",
    "NotaryReceipt",
    "StaleRequestError",
    "TimeEvidence",
    "TimeLedger",
    "TimeStampAuthority",
    "TimeStampToken",
    "TSAPool",
    "TSAUnavailableError",
]
