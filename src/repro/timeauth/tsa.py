"""Time Stamp Authority (TSA) — the trusted third party of Prerequisite 3.

A TSA "assigns the current timestamp to the digest submitted by a ledger and
signs the timestamp-digest pair" (Protocol 3).  The signed pair is a
:class:`TimeStampToken` — the pi_t proof of Figure 1.  The paper's deployment
"utilize[s] a pool of independent TSA services from different authorized
entities to further enhance system availability"; :class:`TSAPool` models
that with round-robin dispatch and fault injection for availability tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.ca import Certificate, CertificateAuthority, Role
from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair, PublicKey
from ..encoding import encode
from .clock import Clock

__all__ = ["TimeStampToken", "TimeStampAuthority", "TSAPool", "TSAUnavailableError"]


class TSAUnavailableError(Exception):
    """Raised when no TSA in a pool can serve a stamping request."""


@dataclass(frozen=True)
class TimeStampToken:
    """A TSA-signed (digest, timestamp) pair — proof pi_t.

    The token proves the digest existed no later than ``timestamp`` according
    to the authority identified by ``tsa_id``.
    """

    digest: Digest
    timestamp: float
    tsa_id: str
    signature: Signature

    def signing_payload(self) -> bytes:
        return _token_payload(self.digest, self.timestamp, self.tsa_id)

    def verify(self, tsa_public_key: PublicKey) -> bool:
        """Check the TSA's signature over the digest-timestamp pair."""
        return tsa_public_key.verify(sha256(self.signing_payload()), self.signature)


def _token_payload(digest: Digest, timestamp: float, tsa_id: str) -> bytes:
    return encode(
        {
            "scheme": "repro.tsa.token.v1",
            "digest": digest,
            "timestamp": timestamp,
            "tsa_id": tsa_id,
        }
    )


class TimeStampAuthority:
    """A single TSA actor with its own CA-certified key pair."""

    def __init__(
        self,
        tsa_id: str,
        clock: Clock,
        ca: CertificateAuthority | None = None,
        keypair: KeyPair | None = None,
    ) -> None:
        self.tsa_id = tsa_id
        self._clock = clock
        self._keypair = keypair or KeyPair.generate(seed=f"tsa:{tsa_id}")
        self.available = True  # toggled by availability / fault-injection tests
        self.stamps_issued = 0
        self.certificate: Certificate | None = None
        if ca is not None:
            self.certificate = ca.issue(tsa_id, Role.TSA, self._keypair.public)

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def stamp(self, digest: Digest) -> TimeStampToken:
        """Assign the current authoritative timestamp to ``digest`` and sign it."""
        if not self.available:
            raise TSAUnavailableError(f"TSA {self.tsa_id!r} is unavailable")
        timestamp = self._clock.now()
        payload = _token_payload(digest, timestamp, self.tsa_id)
        self.stamps_issued += 1
        return TimeStampToken(
            digest=digest,
            timestamp=timestamp,
            tsa_id=self.tsa_id,
            signature=self._keypair.sign(sha256(payload)),
        )


class TSAPool:
    """Round-robin pool over independent TSAs (single-point-of-failure fix).

    ``stamp`` tries each authority starting from the rotation cursor and
    raises :class:`TSAUnavailableError` only if *every* member is down.
    """

    def __init__(self, authorities: list[TimeStampAuthority]) -> None:
        if not authorities:
            raise ValueError("pool needs at least one TSA")
        self._authorities = list(authorities)
        self._cursor = 0

    def stamp(self, digest: Digest) -> TimeStampToken:
        attempts = 0
        while attempts < len(self._authorities):
            authority = self._authorities[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._authorities)
            attempts += 1
            if authority.available:
                return authority.stamp(digest)
        raise TSAUnavailableError("all TSAs in the pool are unavailable")

    def public_key_of(self, tsa_id: str) -> PublicKey:
        for authority in self._authorities:
            if authority.tsa_id == tsa_id:
                return authority.public_key
        raise KeyError(f"unknown TSA: {tsa_id!r}")

    def verify(self, token: TimeStampToken) -> bool:
        """Verify a token against the pool member that issued it."""
        try:
            return token.verify(self.public_key_of(token.tsa_id))
        except KeyError:
            return False

    def __len__(self) -> int:
        return len(self._authorities)
