"""Timestamp pegging protocols: vulnerable one-way and hardened two-way.

§III-B1 analyses ProvenDB's **one-way pegging** — periodically submitting
ledger digests to a public chain — and shows the LSP can delay a digest's
submission arbitrarily (*infinite time amplification*): the anchored
timestamp only upper-bounds creation time, and nothing bounds the gap.

LedgerDB's **two-way pegging** (Protocol 3) closes the loop: the TSA signs
the digest-timestamp pair *and the token is anchored back onto the ledger as
a time journal*, so consecutive time journals bracket every ordinary journal
into a window no wider than 2·Δτ (Figure 5(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..crypto.hashing import Digest
from .clock import Clock
from .tsa import TimeStampAuthority, TimeStampToken, TSAPool

__all__ = [
    "NotaryEvidence",
    "PublicChainNotary",
    "OneWayPegger",
    "TwoWayPegger",
    "TimeBound",
]


@dataclass(frozen=True)
class TimeBound:
    """A verified (lower, upper) bound on a journal's creation time."""

    lower: float
    upper: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, timestamp: float) -> bool:
        return self.lower <= timestamp <= self.upper


# ---------------------------------------------------------------------------
# One-way pegging substrate: a simulated public chain (Bitcoin-like).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NotaryEvidence:
    """Public-chain inclusion evidence for a submitted digest."""

    digest: Digest
    block_height: int
    block_time: float


@dataclass
class _NotaryBlock:
    height: int
    time: float
    digests: list[Digest] = field(default_factory=list)


class PublicChainNotary:
    """A simulated public blockchain used as a one-way timestamp notary.

    Digests submitted since the last block are included in the next block,
    mined every ``block_interval`` seconds of simulated time (call
    :meth:`tick` as the clock advances).  Block timestamps are credible (the
    public-chain property); what is *not* credible is when the LSP chose to
    submit — which is the whole attack surface.
    """

    def __init__(self, clock: Clock, block_interval: float = 600.0) -> None:
        if block_interval <= 0:
            raise ValueError("block interval must be positive")
        self._clock = clock
        self.block_interval = block_interval
        self._blocks: list[_NotaryBlock] = []
        self._pending: list[tuple[float, Digest]] = []  # (available_at, digest)
        self._next_block_time = clock.now() + block_interval
        self._evidence: dict[Digest, NotaryEvidence] = {}

    @property
    def height(self) -> int:
        return len(self._blocks)

    def submit(self, digest: Digest, at_time: float | None = None) -> None:
        """Queue a digest for inclusion in the first block after ``at_time``.

        ``at_time`` (default: now) lets callers that process events lazily
        preserve the submission's *logical* time, so the digest lands in the
        block it would have landed in under continuous simulation.
        """
        when = self._clock.now() if at_time is None else at_time
        self._pending.append((when, digest))

    def tick(self) -> None:
        """Mine every block whose time has come (idempotent)."""
        now = self._clock.now()
        while self._next_block_time <= now:
            block_time = self._next_block_time
            included = [d for t, d in self._pending if t <= block_time]
            self._pending = [(t, d) for t, d in self._pending if t > block_time]
            block = _NotaryBlock(
                height=len(self._blocks),
                time=block_time,
                digests=included,
            )
            self._blocks.append(block)
            for digest in block.digests:
                self._evidence.setdefault(
                    digest,
                    NotaryEvidence(digest=digest, block_height=block.height, block_time=block.time),
                )
            self._next_block_time += self.block_interval

    def evidence_for(self, digest: Digest) -> NotaryEvidence | None:
        """Inclusion evidence once the digest's block has been mined."""
        self.tick()
        return self._evidence.get(digest)


class OneWayPegger:
    """ProvenDB-style pegging: submit digests, never anchor back.

    The resulting evidence proves only "existed before block_time"; the
    effective lower bound is unknowable, so :meth:`time_bound_for` returns a
    bound with ``lower = -inf``.
    """

    def __init__(self, notary: PublicChainNotary) -> None:
        self._notary = notary

    def peg(self, digest: Digest) -> None:
        self._notary.submit(digest)

    def time_bound_for(self, digest: Digest) -> TimeBound | None:
        evidence = self._notary.evidence_for(digest)
        if evidence is None:
            return None
        return TimeBound(lower=float("-inf"), upper=evidence.block_time)


# ---------------------------------------------------------------------------
# Two-way pegging (Protocol 3).
# ---------------------------------------------------------------------------


class TwoWayPegger:
    """Protocol 3: TSA-stamp the ledger digest, then anchor the token back.

    ``anchor_callback`` is the "anchors the signed time journal back to that
    ledger" step — the ledger passes a function that records a time journal
    and the pegger invokes it with every token, keeping the loop closed.
    """

    def __init__(
        self,
        tsa: TimeStampAuthority | TSAPool,
        anchor_callback: Callable[[TimeStampToken], None],
    ) -> None:
        self._tsa = tsa
        self._anchor = anchor_callback
        self.tokens: list[TimeStampToken] = []

    def peg(self, digest: Digest) -> TimeStampToken:
        """Run one full two-way pegging round for ``digest``."""
        token = self._tsa.stamp(digest)
        self._anchor(token)
        self.tokens.append(token)
        return token

    @staticmethod
    def bracket(
        tokens: list[TimeStampToken], anchored_at: float
    ) -> TimeBound:
        """Window for a journal anchored at ledger position/time ``anchored_at``.

        Given the ordered time-journal tokens, a journal recorded between the
        token stamped at t_i and the one at t_{i+1} is bracketed into
        (t_i, t_{i+1}); with pegging interval Δτ and adversarial timing the
        worst case is 2·Δτ (Figure 5(b)).
        """
        lower = float("-inf")
        upper = float("inf")
        for token in tokens:
            if token.timestamp <= anchored_at:
                lower = max(lower, token.timestamp)
            else:
                upper = min(upper, token.timestamp)
        return TimeBound(lower=lower, upper=upper)
