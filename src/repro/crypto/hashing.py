"""Cryptographic hashing primitives used across the ledger.

All ledger digests are 32-byte SHA-256 values.  To prevent cross-context
collisions (e.g. an attacker presenting an interior Merkle node as a leaf),
every digest is *domain separated*: each context prepends a distinct one-byte
tag before hashing, following the convention of RFC 6962 (Certificate
Transparency) and the Diem Merkle accumulator.

Clue keys in CM-Tree1 are scattered with SHA3-256 (as in the paper, §IV-B2)
so that user-chosen clue strings keep the Patricia trie balanced.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "DIGEST_SIZE",
    "Digest",
    "sha256",
    "sha3_256",
    "leaf_hash",
    "node_hash",
    "journal_hash",
    "block_hash",
    "receipt_hash",
    "clue_key_hash",
    "chain_hash",
    "hexdigest",
    "EMPTY_DIGEST",
]

DIGEST_SIZE = 32

#: Digests are plain ``bytes`` of length :data:`DIGEST_SIZE`.
Digest = bytes

# Domain-separation tags.  One byte each; never reuse a value.
_TAG_LEAF = b"\x00"
_TAG_NODE = b"\x01"
_TAG_JOURNAL = b"\x02"
_TAG_BLOCK = b"\x03"
_TAG_RECEIPT = b"\x04"
_TAG_CHAIN = b"\x05"

#: Digest of the empty tree / absent child.
EMPTY_DIGEST: Digest = b"\x00" * DIGEST_SIZE


def sha256(data: bytes) -> Digest:
    """Raw SHA-256 of ``data`` (no domain tag — for external interop only)."""
    return hashlib.sha256(data).digest()


def sha3_256(data: bytes) -> Digest:
    """Raw SHA3-256 of ``data`` (used to scatter clue keys, §IV-B2)."""
    return hashlib.sha3_256(data).digest()


def leaf_hash(payload: bytes) -> Digest:
    """Hash of a Merkle *leaf* carrying ``payload``."""
    return hashlib.sha256(_TAG_LEAF + payload).digest()


def node_hash(left: Digest, right: Digest) -> Digest:
    """Hash of an interior Merkle node from its two children."""
    if len(left) != DIGEST_SIZE or len(right) != DIGEST_SIZE:
        raise ValueError("interior node children must be 32-byte digests")
    return hashlib.sha256(_TAG_NODE + left + right).digest()


def journal_hash(data: bytes) -> Digest:
    """Digest of a serialized journal entry (the *tx-hash* of §III-C)."""
    return hashlib.sha256(_TAG_JOURNAL + data).digest()


def block_hash(data: bytes) -> Digest:
    """Digest of a serialized block header (the *block-hash* of §III-C)."""
    return hashlib.sha256(_TAG_BLOCK + data).digest()


def receipt_hash(data: bytes) -> Digest:
    """Digest of a serialized client request (the *request-hash* of §III-C)."""
    return hashlib.sha256(_TAG_RECEIPT + data).digest()


def clue_key_hash(clue: str) -> Digest:
    """Scatter a user-specified clue string into a 32-byte CM-Tree1 key.

    The paper uses SHA-3 "to avoid excessive compression and keep the tree
    balanced" (§IV-B2).
    """
    return hashlib.sha3_256(clue.encode("utf-8")).digest()


def chain_hash(previous: Digest, current: Digest) -> Digest:
    """Entangle two adjacent digests (block linking / pseudo-genesis links)."""
    return hashlib.sha256(_TAG_CHAIN + previous + current).digest()


def hexdigest(digest: Digest) -> str:
    """Render a digest as lowercase hex for logs and receipts."""
    return digest.hex()
