"""Cryptographic substrate: hashing, ECDSA, PKI, and multi-signatures."""

from .ca import Certificate, CertificateAuthority, CertificateError, Role
from .ecdsa import (
    CURVE_P256,
    Curve,
    Point,
    Signature,
    sign_digest,
    sign_digests,
    verify_digest,
    verify_digests,
)
from .hashing import (
    DIGEST_SIZE,
    EMPTY_DIGEST,
    Digest,
    block_hash,
    chain_hash,
    clue_key_hash,
    hexdigest,
    journal_hash,
    leaf_hash,
    node_hash,
    receipt_hash,
    sha3_256,
    sha256,
)
from .keys import KeyPair, PublicKey, verify_batch
from .multisig import MultiSignature, MultiSignatureError

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "Role",
    "CURVE_P256",
    "Curve",
    "Point",
    "Signature",
    "sign_digest",
    "sign_digests",
    "verify_digest",
    "verify_digests",
    "DIGEST_SIZE",
    "EMPTY_DIGEST",
    "Digest",
    "block_hash",
    "chain_hash",
    "clue_key_hash",
    "hexdigest",
    "journal_hash",
    "leaf_hash",
    "node_hash",
    "receipt_hash",
    "sha3_256",
    "sha256",
    "KeyPair",
    "PublicKey",
    "verify_batch",
    "MultiSignature",
    "MultiSignatureError",
]
