"""ECDSA over NIST P-256, implemented from scratch on stdlib integers.

The paper's threat model (§II-B) assumes SHA-256 and ECDSA are reliable; every
non-repudiation proof in LedgerDB (client pi_c, LSP receipt pi_s, TSA pi_t) is an
ECDSA signature.  We implement the curve arithmetic directly so that the
reproduction has no external crypto dependency:

* Jacobian-coordinate point arithmetic with constant formulae,
* deterministic nonces per RFC 6979 (HMAC-DRBG) so signing is reproducible
  and never leaks the key through bad randomness,
* low-level ``sign_digest`` / ``verify_digest`` working on 32-byte digests.

Because signing and verification sit on every hot path of the ledger (pi_c
admission, pi_s receipts), the module carries two implementations:

* a **naive double-and-add ladder** (:func:`scalar_multiply`,
  :func:`sign_digest_naive`, :func:`verify_digest_naive`) kept as the audited
  reference, and
* a **fast path** used by default: windowed fixed-base tables with affine
  entries (:class:`FixedWindowTable`, shared per-curve generator tables built
  lazily), Strauss–Shamir dual-scalar multiplication for the uncached verify
  (:func:`shamir_multiply`), and an LRU of per-public-key window tables so the
  LSP workload — many verifications of the same few clients — skips the
  doubling ladder entirely.

Both paths produce identical signatures (RFC 6979 is deterministic) and are
cross-checked in ``tests/test_ecdsa_fastpath.py``.  This is a faithful,
test-covered implementation of the textbook algorithms — adequate for a
research artifact, not hardened against side channels.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from .. import obs

__all__ = [
    "CURVE_P256",
    "Curve",
    "Point",
    "Signature",
    "FixedWindowTable",
    "sign_digest",
    "verify_digest",
    "sign_digests",
    "verify_digests",
    "sign_digest_naive",
    "verify_digest_naive",
    "derive_public_key",
    "scalar_multiply",
    "scalar_multiply_base",
    "shamir_multiply",
    "precompute_public_key",
    "clear_fast_path_caches",
    "warm_tables",
]


@dataclass(frozen=True)
class Curve:
    """Short Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    name: str
    p: int  # field prime
    a: int
    b: int
    n: int  # group order
    gx: int  # generator
    gy: int

    @property
    def generator(self) -> "Point":
        return Point(self.gx, self.gy)

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8


#: NIST P-256 (secp256r1) domain parameters.
CURVE_P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
)


@dataclass(frozen=True)
class Point:
    """An affine point; ``Point.INFINITY`` is the group identity."""

    x: int
    y: int

    def is_infinity(self) -> bool:
        return self.x == 0 and self.y == 0


_INFINITY = Point(0, 0)


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s), canonicalised to low-s form.

    ``ry`` is the y-coordinate of the nonce point R *after* low-s
    normalisation — the "ECDSA*" variant (Antipa et al.): carrying R makes
    the signature batch-verifiable, because a verifier can check many
    signatures with one randomised aggregate equation instead of two table
    scans each (see :func:`verify_digests`).  It is purely advisory —
    verification verdicts depend on (r, s) alone, legacy 64-byte encodings
    decode with ``ry=None``, a corrupted hint merely costs the fast path —
    and it is excluded from equality because (r, s) identifies the
    signature.
    """

    r: int
    s: int
    ry: int | None = field(default=None, compare=False)

    def to_bytes(self, curve: Curve = CURVE_P256) -> bytes:
        size = curve.byte_length
        body = self.r.to_bytes(size, "big") + self.s.to_bytes(size, "big")
        if self.ry is None:
            return body
        return body + self.ry.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, data: bytes, curve: Curve = CURVE_P256) -> "Signature":
        size = curve.byte_length
        if len(data) == 2 * size:
            ry = None
        elif len(data) == 3 * size:
            ry = int.from_bytes(data[2 * size :], "big")
        else:
            raise ValueError(
                f"signature must be {2 * size} or {3 * size} bytes, "
                f"got {len(data)}"
            )
        return cls(
            int.from_bytes(data[:size], "big"),
            int.from_bytes(data[size : 2 * size], "big"),
            ry,
        )


def _inverse_mod(k: int, p: int) -> int:
    if k % p == 0:
        raise ZeroDivisionError("inverse of zero")
    return pow(k, -1, p)


# ---------------------------------------------------------------------------
# Jacobian point arithmetic.  Points are (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
# ---------------------------------------------------------------------------


def _to_jacobian(point: Point) -> tuple[int, int, int]:
    if point.is_infinity():
        return (1, 1, 0)
    return (point.x, point.y, 1)


def _from_jacobian(jac: tuple[int, int, int], curve: Curve) -> Point:
    x, y, z = jac
    if z == 0:
        return _INFINITY
    p = curve.p
    z_inv = _inverse_mod(z, p)
    z_inv2 = (z_inv * z_inv) % p
    return Point((x * z_inv2) % p, (y * z_inv2 * z_inv) % p)


def _jacobian_double(jac: tuple[int, int, int], curve: Curve) -> tuple[int, int, int]:
    x, y, z = jac
    if z == 0 or y == 0:
        return (1, 1, 0)
    p = curve.p
    ysq = (y * y) % p
    s = (4 * x * ysq) % p
    m = (3 * x * x + curve.a * pow(z, 4, p)) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = (2 * y * z) % p
    return (nx, ny, nz)


def _jacobian_add(
    a: tuple[int, int, int], b: tuple[int, int, int], curve: Curve
) -> tuple[int, int, int]:
    if a[2] == 0:
        return b
    if b[2] == 0:
        return a
    p = curve.p
    x1, y1, z1 = a
    x2, y2, z2 = b
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return (1, 1, 0)
        return _jacobian_double(a, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    h2 = (h * h) % p
    h3 = (h2 * h) % p
    u1h2 = (u1 * h2) % p
    nx = (r * r - h3 - 2 * u1h2) % p
    ny = (r * (u1h2 - nx) - s1 * h3) % p
    nz = (h * z1 * z2) % p
    return (nx, ny, nz)


def scalar_multiply(k: int, point: Point, curve: Curve = CURVE_P256) -> Point:
    """Compute ``k * point`` with double-and-add over Jacobian coordinates."""
    k %= curve.n
    if k == 0 or point.is_infinity():
        return _INFINITY
    result = (1, 1, 0)
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend, curve)
        addend = _jacobian_double(addend, curve)
        k >>= 1
    return _from_jacobian(result, curve)


def point_add(a: Point, b: Point, curve: Curve = CURVE_P256) -> Point:
    """Affine point addition (thin wrapper over the Jacobian core)."""
    return _from_jacobian(
        _jacobian_add(_to_jacobian(a), _to_jacobian(b), curve), curve
    )


def is_on_curve(point: Point, curve: Curve = CURVE_P256) -> bool:
    """Check the curve equation; the identity is considered on-curve."""
    if point.is_infinity():
        return True
    x, y, p = point.x, point.y, curve.p
    return (y * y - (x * x * x + curve.a * x + curve.b)) % p == 0


def derive_public_key(secret: int, curve: Curve = CURVE_P256) -> Point:
    """Public key Q = d * G for a secret scalar d in [1, n-1]."""
    if not 1 <= secret < curve.n:
        raise ValueError("secret key out of range")
    return scalar_multiply_base(secret, curve)


# ---------------------------------------------------------------------------
# Fast path: windowed fixed-base tables and Strauss–Shamir.
#
# The naive ladder above runs ~256 doublings plus ~128 additions per scalar
# multiplication.  The structures below trade memory for time:
#
# * ``FixedWindowTable`` precomputes d * 2^(w*i) * P for every window i and
#   digit d, so k*P becomes ~ceil(256/w) *additions only* — no doublings.
#   Table entries are normalised to affine coordinates in one shot with
#   Montgomery's batch-inversion trick, so the hot loop uses the cheaper
#   mixed Jacobian+affine addition formula (7M + 4S).
# * The per-curve generator table serves ``sign_digest`` (k*G) and the u1*G
#   half of verification; per-public-key tables are built lazily and kept in
#   an LRU so repeat verifications of the same client reuse them.
# * ``shamir_multiply`` computes u1*G + u2*Q in one interleaved pass sharing
#   a single doubling chain — the fast path for keys not (yet) in the LRU.
# ---------------------------------------------------------------------------


def _jacobian_mixed_add(
    acc: tuple[int, int, int], x2: int, y2: int, curve: Curve
) -> tuple[int, int, int]:
    """Add the *affine* point (x2, y2) to the Jacobian point ``acc``.

    madd-2007-bl: 7M + 4S, versus 11M + 5S for the general Jacobian add —
    this is the inner-loop workhorse of every table-based multiplication.
    """
    x1, y1, z1 = acc
    if z1 == 0:
        return (x2, y2, 1)
    p = curve.p
    z1z1 = z1 * z1 % p
    u2 = x2 * z1z1 % p
    s2 = y2 * z1z1 * z1 % p
    if u2 == x1:
        if s2 != y1:
            return (1, 1, 0)
        return _jacobian_double(acc, curve)
    # Lazy reduction: h, i4, and r2 stay unreduced (|value| < 4p) — every
    # place they feed is followed by a product reduction, so skipping their
    # own ``%`` saves three of the divisions that dominate this formula.
    h = u2 - x1
    hh = h * h % p
    i4 = 4 * hh
    j = h * i4 % p
    r2 = 2 * (s2 - y1)
    v = x1 * i4 % p
    nx = (r2 * r2 - j - 2 * v) % p
    ny = (r2 * (v - nx) - 2 * y1 * j) % p
    nz = 2 * z1 * h % p
    return (nx, ny, nz)


def _batch_inverse(values: list[int], modulus: int) -> list[int]:
    """Invert many nonzero values with a single ``pow`` (Montgomery's trick).

    Each extra element costs three modular multiplications instead of a full
    extended-Euclid/exponentiation inversion — the amortisation behind the
    batch sign/verify entry points below.
    """
    prefix: list[int] = []
    acc = 1
    for value in values:
        acc = acc * value % modulus
        prefix.append(acc)
    inv = pow(acc, -1, modulus)
    out = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        if i:
            out[i] = inv * prefix[i - 1] % modulus
            inv = inv * values[i] % modulus
        else:
            out[i] = inv
    return out


def _batch_to_affine(
    points: list[tuple[int, int, int]], p: int
) -> list[tuple[int, int]]:
    """Normalise Jacobian points to affine with one modular inversion.

    Montgomery's trick: invert the product of all z's once, then peel off
    individual z^-1 values with two multiplications each.  Every input must
    be a finite point (z != 0).
    """
    prefix: list[int] = []
    acc = 1
    for _x, _y, z in points:
        acc = acc * z % p
        prefix.append(acc)
    inv = pow(acc, -1, p)
    out: list[tuple[int, int]] = [(0, 0)] * len(points)
    for i in range(len(points) - 1, -1, -1):
        x, y, z = points[i]
        if i:
            z_inv = inv * prefix[i - 1] % p
            inv = inv * z % p
        else:
            z_inv = inv
        z_inv2 = z_inv * z_inv % p
        out[i] = (x * z_inv2 % p, y * z_inv2 * z_inv % p)
    return out


class FixedWindowTable:
    """Precomputed radix-2^w multiples of one point, for add-only k*P.

    Stores d * 2^(w*i) * P in affine form for every window index i and digit
    d in [1, 2^w).  ``multiply`` then decomposes k into base-2^w digits and
    sums one table entry per non-zero digit: ~ceil(bits/w) mixed additions
    and zero doublings.  Build cost is one pass of Jacobian arithmetic plus
    a single batch inversion, so tables amortise quickly on hot keys.
    """

    __slots__ = ("curve", "width", "num_windows", "_entries")

    def __init__(self, point: Point, width: int, curve: Curve = CURVE_P256) -> None:
        if not 2 <= width <= 10:
            raise ValueError("window width must be in [2, 10]")
        if point.is_infinity():
            raise ValueError("cannot build a window table for the identity")
        self.curve = curve
        self.width = width
        self.num_windows = (curve.n.bit_length() + width - 1) // width
        per_window = (1 << width) - 1
        jacobians: list[tuple[int, int, int]] = []
        base = _to_jacobian(point)
        for _ in range(self.num_windows):
            entry = base
            jacobians.append(entry)
            for _d in range(per_window - 1):
                entry = _jacobian_add(entry, base, curve)
                jacobians.append(entry)
            for _s in range(width):
                base = _jacobian_double(base, curve)
        # On a prime-order curve no small multiple of a finite point is the
        # identity, so every entry is finite and batch-normalisable.
        self._entries = _batch_to_affine(jacobians, curve.p)

    def multiply_jacobian(self, k: int) -> tuple[int, int, int]:
        """k * P in Jacobian coordinates (add-only window scan).

        The mixed addition is inlined with lazy reduction — this loop *is*
        the sign/verify hot path, and the call/tuple traffic plus the three
        skippable ``%`` reductions are worth ~20% per scalar multiplication.
        """
        k %= self.curve.n
        curve = self.curve
        p = curve.p
        width = self.width
        mask = (1 << width) - 1
        entries = self._entries
        offset = 0
        x1 = y1 = 0
        z1 = 0  # z1 == 0 encodes the identity
        while k:
            digit = k & mask
            if digit:
                x2, y2 = entries[offset + digit - 1]
                if z1 == 0:
                    x1, y1, z1 = x2, y2, 1
                else:
                    z1z1 = z1 * z1 % p
                    u2 = x2 * z1z1 % p
                    s2 = y2 * z1z1 % p * z1 % p
                    if u2 == x1:
                        if s2 != y1:
                            z1 = 0  # P + (-P): back to the identity
                        else:
                            x1, y1, z1 = _jacobian_double((x1, y1, z1), curve)
                    else:
                        h = u2 - x1
                        hh = h * h % p
                        i4 = 4 * hh
                        j = h * i4 % p
                        r2 = 2 * (s2 - y1)
                        v = x1 * i4 % p
                        nx = (r2 * r2 - j - 2 * v) % p
                        y1 = (r2 * (v - nx) - 2 * y1 * j) % p
                        z1 = 2 * z1 * h % p
                        x1 = nx
            k >>= width
            offset += mask
        if z1 == 0:
            return (1, 1, 0)
        return (x1, y1, z1)

    def multiply(self, k: int) -> Point:
        """k * P as an affine point."""
        return _from_jacobian(self.multiply_jacobian(k), self.curve)


#: Window width of the shared per-curve generator tables.
GENERATOR_WINDOW = 8
#: Window width of cached per-public-key tables.
PUBKEY_WINDOW = 6
#: Maximum number of public keys whose tables are retained (LRU eviction).
PUBKEY_CACHE_SIZE = 128
#: A key's table is built on its Nth verification (1 = build immediately).
PUBKEY_CACHE_THRESHOLD = 2

_GEN_TABLES: dict[str, FixedWindowTable] = {}
_PUBKEY_TABLES: "OrderedDict[tuple[str, int, int], FixedWindowTable]" = OrderedDict()
_PUBKEY_SEEN: dict[tuple[str, int, int], int] = {}


def _generator_table(curve: Curve) -> FixedWindowTable:
    table = _GEN_TABLES.get(curve.name)
    if table is None:
        table = FixedWindowTable(curve.generator, GENERATOR_WINDOW, curve)
        _GEN_TABLES[curve.name] = table
    return table


def scalar_multiply_base(k: int, curve: Curve = CURVE_P256) -> Point:
    """k * G via the precomputed fixed-base window table (no doublings)."""
    return _generator_table(curve).multiply(k)


def precompute_public_key(point: Point, curve: Curve = CURVE_P256) -> FixedWindowTable:
    """Build (or refresh) the cached window table for a public key.

    Callers that know a key is about to verify many signatures — e.g. the
    batched append pipeline — use this to pay the table build once up front.
    The caller is responsible for only passing on-curve points.
    """
    key = (curve.name, point.x, point.y)
    table = _PUBKEY_TABLES.get(key)
    if table is None:
        table = FixedWindowTable(point, PUBKEY_WINDOW, curve)
        _PUBKEY_TABLES[key] = table
        while len(_PUBKEY_TABLES) > PUBKEY_CACHE_SIZE:
            _PUBKEY_TABLES.popitem(last=False)
    else:
        _PUBKEY_TABLES.move_to_end(key)
    return table


def _note_pubkey_use(key: tuple[str, int, int], point: Point, curve: Curve):
    """Count a verification against ``point``; build its table when hot."""
    seen = _PUBKEY_SEEN.get(key, 0) + 1
    if seen >= PUBKEY_CACHE_THRESHOLD:
        _PUBKEY_SEEN.pop(key, None)
        return precompute_public_key(point, curve)
    if len(_PUBKEY_SEEN) >= 4096:  # bound the counter map on adversarial churn
        _PUBKEY_SEEN.clear()
    _PUBKEY_SEEN[key] = seen
    return None


def clear_fast_path_caches() -> None:
    """Drop every cached table (tests / memory pressure)."""
    _GEN_TABLES.clear()
    _PUBKEY_TABLES.clear()
    _PUBKEY_SEEN.clear()


def warm_tables(points=(), curve: Curve = CURVE_P256) -> None:
    """Eagerly build the generator table (and tables for ``points``).

    A fork-based worker pool inherits the parent's caches by copy-on-write,
    so warming them once before forking gives every worker the fast path for
    free instead of each child rebuilding tables on first use.  Off-curve or
    identity points are skipped (they can never verify anyway).
    """
    _generator_table(curve)
    for point in points:
        if not point.is_infinity() and is_on_curve(point, curve):
            precompute_public_key(point, curve)


def _shamir_jacobian(
    u1: int, u2: int, point: Point, curve: Curve
) -> tuple[int, int, int]:
    """u1*G + u2*Q via Strauss–Shamir: one shared doubling chain."""
    g = curve.generator
    gq = point_add(g, point, curve)
    gq_affine = None if gq.is_infinity() else (gq.x, gq.y)
    gx, gy = g.x, g.y
    qx, qy = point.x, point.y
    acc = (1, 1, 0)
    for i in range(max(u1.bit_length(), u2.bit_length()) - 1, -1, -1):
        acc = _jacobian_double(acc, curve)
        bits = ((u1 >> i) & 1) | (((u2 >> i) & 1) << 1)
        if bits == 1:
            acc = _jacobian_mixed_add(acc, gx, gy, curve)
        elif bits == 2:
            acc = _jacobian_mixed_add(acc, qx, qy, curve)
        elif bits == 3 and gq_affine is not None:
            acc = _jacobian_mixed_add(acc, gq_affine[0], gq_affine[1], curve)
    return acc


def shamir_multiply(u1: int, u2: int, point: Point, curve: Curve = CURVE_P256) -> Point:
    """Compute ``u1*G + u2*point`` in one interleaved Strauss–Shamir pass."""
    return _from_jacobian(_shamir_jacobian(u1 % curve.n, u2 % curve.n, point, curve), curve)


# ---------------------------------------------------------------------------
# RFC 6979 deterministic nonce generation.
# ---------------------------------------------------------------------------


def _bits2int(data: bytes, n: int) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int, curve: Curve) -> bytes:
    return value.to_bytes(curve.byte_length, "big")


def _bits2octets(data: bytes, curve: Curve) -> bytes:
    z1 = _bits2int(data, curve.n)
    z2 = z1 % curve.n
    return _int2octets(z2, curve)


def rfc6979_nonce(secret: int, digest: bytes, curve: Curve = CURVE_P256) -> int:
    """Deterministic per-message nonce k (RFC 6979, HMAC-SHA256 DRBG)."""
    holen = hashlib.sha256().digest_size
    v = b"\x01" * holen
    k = b"\x00" * holen
    priv_bytes = _int2octets(secret, curve)
    msg_bytes = _bits2octets(digest, curve)
    # hmac.digest is the one-shot OpenSSL fast path — same output as
    # hmac.new(...).digest(), several times cheaper per call.
    k = hmac.digest(k, v + b"\x00" + priv_bytes + msg_bytes, "sha256")
    v = hmac.digest(k, v, "sha256")
    k = hmac.digest(k, v + b"\x01" + priv_bytes + msg_bytes, "sha256")
    v = hmac.digest(k, v, "sha256")
    while True:
        t = b""
        while len(t) < curve.byte_length:
            v = hmac.digest(k, v, "sha256")
            t += v
        candidate = _bits2int(t, curve.n)
        if 1 <= candidate < curve.n:
            return candidate
        k = hmac.digest(k, v + b"\x00", "sha256")
        v = hmac.digest(k, v, "sha256")


# ---------------------------------------------------------------------------
# Sign / verify.
# ---------------------------------------------------------------------------


def _sign_digest_core(secret: int, digest: bytes, curve: Curve, kg_multiply) -> Signature:
    """RFC 6979 signing loop, parameterised over the k*G multiplier."""
    if not 1 <= secret < curve.n:
        raise ValueError("secret key out of range")
    z = _bits2int(digest, curve.n)
    counter = 0
    while True:
        k = rfc6979_nonce(secret, digest + counter.to_bytes(4, "big") if counter else digest, curve)
        point = kg_multiply(k)
        r = point.x % curve.n
        if r == 0:
            counter += 1
            continue
        s = (_inverse_mod(k, curve.n) * (z + r * secret)) % curve.n
        if s == 0:
            counter += 1
            continue
        ry = point.y
        if s > curve.n // 2:  # canonical low-s form; negating s negates R
            s = curve.n - s
            ry = curve.p - ry
        return Signature(r, s, ry)


def sign_digest(secret: int, digest: bytes, curve: Curve = CURVE_P256) -> Signature:
    """Sign a (32-byte) message digest, returning a low-s signature.

    Uses the precomputed fixed-base generator table for k*G; output is
    bit-identical to :func:`sign_digest_naive` (RFC 6979 is deterministic).
    """
    with obs.span("ecdsa.sign"):
        table = _generator_table(curve)
        return _sign_digest_core(secret, digest, curve, table.multiply)


def sign_digest_naive(secret: int, digest: bytes, curve: Curve = CURVE_P256) -> Signature:
    """Reference signer using the plain double-and-add ladder."""
    return _sign_digest_core(
        secret, digest, curve, lambda k: scalar_multiply(k, curve.generator, curve)
    )


def sign_digests(
    secret: int, digests: list[bytes], curve: Curve = CURVE_P256
) -> list[Signature]:
    """Sign many digests with one key, sharing the per-signature inversions.

    Output is bit-identical to calling :func:`sign_digest` per digest (RFC
    6979 nonces are deterministic), but the ``k^-1 mod n`` and the R-point
    normalisation ``z^-1 mod p`` — two of the three ``pow`` calls in a
    signature — are batched across the whole list with Montgomery's trick.
    The receipt signer of the batched append pipeline lives on this.
    """
    if not 1 <= secret < curve.n:
        raise ValueError("secret key out of range")
    if not digests:
        return []
    with obs.span("ecdsa.sign_batch") as _sp:
        _sp.add("signatures", len(digests))
        return _sign_digests_batched(secret, digests, curve)


def _sign_digests_batched(
    secret: int, digests: list[bytes], curve: Curve
) -> list[Signature]:
    table = _generator_table(curve)
    n = curve.n
    nonces = [rfc6979_nonce(secret, digest, curve) for digest in digests]
    # k in [1, n) on a prime-order curve means k*G is always finite, so every
    # R point batch-normalises and every nonce batch-inverts.
    r_points = _batch_to_affine([table.multiply_jacobian(k) for k in nonces], curve.p)
    nonce_inverses = _batch_inverse(nonces, n)
    out: list[Signature] = []
    for digest, (x, y), k_inv in zip(digests, r_points, nonce_inverses):
        r = x % n
        if r:
            s = k_inv * (_bits2int(digest, n) + r * secret) % n
            if s:
                ry = y
                if s > n // 2:  # low-s flip negates R
                    s = n - s
                    ry = curve.p - ry
                out.append(Signature(r, s, ry))
                continue
        # r == 0 or s == 0 (astronomically rare): take the retrying scalar
        # path so the output still matches sign_digest exactly.
        out.append(_sign_digest_core(secret, digest, curve, table.multiply))
    return out


def _resolve_pubkey_table(public_key: Point, curve: Curve):
    """Validate a verification key and look up its cached window table.

    Returns ``(usable, table_or_None)``.  A cached table implies the key was
    already checked on-curve, so the hit path skips that work entirely.
    """
    if public_key.is_infinity():
        return False, None
    cache_key = (curve.name, public_key.x, public_key.y)
    table = _PUBKEY_TABLES.get(cache_key)
    if table is not None:
        _PUBKEY_TABLES.move_to_end(cache_key)
        obs.inc("ecdsa.pubkey_cache.hit")
        return True, table
    obs.inc("ecdsa.pubkey_cache.miss")
    if not is_on_curve(public_key, curve):
        return False, None
    return True, _note_pubkey_use(cache_key, public_key, curve)


def _verify_prepared(
    public_key: Point, z: int, r: int, w: int, table, curve: Curve
) -> bool:
    """The verification tail once ``w = s^-1 mod n`` is in hand.

    Dispatch: with a window table, u1*G and u2*Q are two add-only table
    scans; otherwise a single Strauss–Shamir pass handles both scalars.  The
    final comparison ``x(R) mod n == r`` is done projectively — R.x == r iff
    X == c * Z^2 for some c in {r, r + n} below p — avoiding the last field
    inversion.
    """
    u1 = (z * w) % curve.n
    u2 = (r * w) % curve.n
    if table is not None:
        jac = _jacobian_add(
            _generator_table(curve).multiply_jacobian(u1),
            table.multiply_jacobian(u2),
            curve,
        )
    else:
        jac = _shamir_jacobian(u1, u2, public_key, curve)
    x, _y, zc = jac
    if zc == 0:
        return False
    p = curve.p
    zz = zc * zc % p
    candidate = r
    while candidate < p:
        if (x - candidate * zz) % p == 0:
            return True
        candidate += curve.n
    return False


def verify_digest(
    public_key: Point, digest: bytes, signature: Signature, curve: Curve = CURVE_P256
) -> bool:
    """Verify an ECDSA signature over a message digest.

    Returns ``False`` (never raises) for malformed signatures or off-curve
    keys, so callers can treat the result as a plain proof bit.
    """
    with obs.span("ecdsa.verify"):
        r, s = signature.r, signature.s
        if not (1 <= r < curve.n and 1 <= s < curve.n):
            return False
        usable, table = _resolve_pubkey_table(public_key, curve)
        if not usable:
            return False
        z = _bits2int(digest, curve.n)
        w = _inverse_mod(s, curve.n)
        return _verify_prepared(public_key, z, r, w, table, curve)


#: Smallest same-key group worth the aggregated batch equation: below this
#: the shared G/Q table scans don't amortise over the group.
BATCH_VERIFY_MIN = 3
#: Bits of the per-signature randomisers in the aggregate check.  A forged
#: signature survives aggregation with probability 2^-64 per attempt, and
#: any aggregate failure falls back to exact per-item verification.
BATCH_RANDOMIZER_BITS = 64

#: Secret seed for the batch-randomizer DRBG, drawn from the OS once per
#: process.  The aggregate check only needs randomizers the signature
#: submitter cannot predict; a SHA-256 counter stream keyed by this seed
#: gives that without a getrandom syscall per verification (getrandom can
#: cost milliseconds on entropy-starved VMs).
_RANDOMIZER_SEED = secrets.token_bytes(32)
_randomizer_counter = 0
_randomizer_lock = threading.Lock()


def _randomizer_bytes(nbytes: int) -> bytes:
    """``nbytes`` of DRBG output: SHA-256(seed ‖ counter) blocks."""
    global _randomizer_counter
    blocks = (nbytes + 31) // 32
    with _randomizer_lock:
        start = _randomizer_counter
        _randomizer_counter += blocks
    out = b"".join(
        hashlib.sha256(
            _RANDOMIZER_SEED + (start + i).to_bytes(8, "big")
        ).digest()
        for i in range(blocks)
    )
    return out[:nbytes]


def _r_point_from_hint(r: int, ry: int, curve: Curve) -> tuple[int, int] | None:
    """Validate the signer's R hint: the affine point (x, ry) with
    ``x ≡ r (mod n)`` if it lies on the curve, else None (corrupt hint)."""
    p = curve.p
    if not 0 < ry < p:
        return None
    ry2 = ry * ry % p
    for x in (r, r + curve.n):  # x may exceed n and wrap into r (≈2^-128)
        if x >= p:
            break
        if (x * x % p * x + curve.a * x + curve.b - ry2) % p == 0:
            return (x, ry)
    return None


def _wnaf(k: int, width: int) -> list[int]:
    """Little-endian width-w non-adjacent form: odd digits |d| < 2^(w-1)."""
    digits: list[int] = []
    modulus = 1 << width
    half = modulus >> 1
    while k:
        if k & 1:
            d = k & (modulus - 1)
            if d >= half:
                d -= modulus
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def _straus_sum(
    pairs: list[tuple[int, tuple[int, int]]], curve: Curve
) -> tuple[int, int, int]:
    """``sum(a_i * P_i)`` for small scalars via interleaved wNAF-4.

    One doubling chain shared by every point; per point an affine table of
    {1,3,5,7}·P (one batch normalisation, negations free) and ~bits/5 mixed
    additions.  Sized for the 64-bit randomisers of the aggregate verify."""
    p = curve.p
    jacobians: list[tuple[int, int, int]] = []
    for _a, (x, y) in pairs:
        # Odd multiples via mixed adds against the affine base:
        # 2P, 4P, 8P by doubling; 3P = 2P+P, 5P = 4P+P, 7P = 8P-P.
        p2 = _jacobian_double((x, y, 1), curve)
        p4 = _jacobian_double(p2, curve)
        p8 = _jacobian_double(p4, curve)
        jacobians.append(_jacobian_mixed_add(p2, x, y, curve))
        jacobians.append(_jacobian_mixed_add(p4, x, y, curve))
        jacobians.append(_jacobian_mixed_add(p8, x, p - y, curve))
    extras = _batch_to_affine(jacobians, p)
    # Bucket the nonzero wNAF digits by bit position up front, so the scan
    # below touches only actual additions (~bits/5 per point) instead of
    # sweeping every (position, point) cell.
    buckets: dict[int, list[tuple[int, int]]] = {}
    top = 0
    for i, (a, (x, y)) in enumerate(pairs):
        table = ((x, y), extras[3 * i], extras[3 * i + 1], extras[3 * i + 2])
        for position, d in enumerate(_wnaf(a, 4)):
            if d:
                x2, y2 = table[(d if d > 0 else -d) >> 1]
                buckets.setdefault(position, []).append(
                    (x2, y2 if d > 0 else p - y2)
                )
                if position > top:
                    top = position
    acc = (1, 1, 0)
    for position in range(top, -1, -1):
        if acc[2]:
            acc = _jacobian_double(acc, curve)
        for x2, y2 in buckets.get(position, ()):
            acc = _jacobian_mixed_add(acc, x2, y2, curve)
    return acc


def _jacobian_eq(
    a: tuple[int, int, int], b: tuple[int, int, int], p: int
) -> bool:
    """Projective equality: X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³."""
    if a[2] == 0 or b[2] == 0:
        return a[2] == b[2]
    z1sq = a[2] * a[2] % p
    z2sq = b[2] * b[2] % p
    if (a[0] * z2sq - b[0] * z1sq) % p:
        return False
    return (a[1] * z2sq * b[2] - b[1] * z1sq * a[2]) % p == 0


def _aggregate_group_verify(
    group: list[tuple[int, int, int, int]], table, curve: Curve
) -> bool:
    """Randomised batch check for same-key signatures carrying their R.

    ``group`` holds (z, r, w, ry) per signature, ``w = s^-1 mod n``.
    Checks ``sum(a_i·(u1_i·G + u2_i·Q - R_i)) == O`` for random 64-bit a_i:
    one generator scan, one key scan, and a small multi-scalar sum replace
    two full scans per signature.  ``True`` means every signature is valid
    (soundness error 2^-64); ``False`` means *something* failed — the caller
    re-verifies per item for exact verdicts.
    """
    n = curve.n
    tg = 0
    tq = 0
    pairs: list[tuple[int, tuple[int, int]]] = []
    # Randomizers come from a process-local DRBG, not per-call urandom:
    # getrandom can cost milliseconds on entropy-starved VMs, which would
    # dominate small-batch verification.  Unpredictability to the signature
    # *submitter* is all soundness needs, and a secret-seeded SHA-256
    # counter stream provides exactly that.
    width = BATCH_RANDOMIZER_BITS // 8
    entropy = _randomizer_bytes(width * len(group))
    mask = (1 << (BATCH_RANDOMIZER_BITS - 1)) - 1
    for index, (z, r, w, ry) in enumerate(group):
        r_point = _r_point_from_hint(r, ry, curve)
        if r_point is None:
            return False  # corrupt hint: attribute failures per item instead
        chunk = entropy[index * width : (index + 1) * width]
        a_i = 1 + (int.from_bytes(chunk, "big") & mask)
        tg = (tg + a_i * (z * w % n)) % n
        tq = (tq + a_i * (r * w % n)) % n
        pairs.append((a_i, r_point))
    lhs = _jacobian_add(
        _generator_table(curve).multiply_jacobian(tg),
        table.multiply_jacobian(tq),
        curve,
    )
    return _jacobian_eq(lhs, _straus_sum(pairs, curve), curve.p)


def verify_digests(
    checks: list[tuple[Point, bytes, Signature]], curve: Curve = CURVE_P256
) -> list[bool]:
    """Verify many ``(public_key, digest, signature)`` triples at once.

    Verdicts match :func:`verify_digest` per item (including LRU warm-up
    side effects).  Beyond sharing one Montgomery batch inversion for every
    ``s^-1 mod n``, same-key groups of *recoverable* signatures (R carried,
    cached window table, ≥ :data:`BATCH_VERIFY_MIN`) are checked with one
    randomised aggregate equation — the audit engine's chunk fast path.  Any
    aggregate mismatch falls back to exact per-item verification, so a bad
    signature is always attributed to the right index; a forged signature
    slipping through aggregation requires guessing a 64-bit randomiser.
    """
    with obs.span("ecdsa.verify_batch") as _sp:
        _sp.add("checks", len(checks))
        results = [False] * len(checks)
        prepared: list[tuple[int, Point, int, int, int | None, object]] = []
        s_values: list[int] = []
        for index, (public_key, digest, signature) in enumerate(checks):
            r, s = signature.r, signature.s
            if not (1 <= r < curve.n and 1 <= s < curve.n):
                continue
            usable, table = _resolve_pubkey_table(public_key, curve)
            if not usable:
                continue
            prepared.append(
                (
                    index,
                    public_key,
                    _bits2int(digest, curve.n),
                    r,
                    signature.ry,
                    table,
                )
            )
            s_values.append(s)
        if not prepared:
            return results
        inverses = _batch_inverse(s_values, curve.n)

        def flush_group(
            items: list[tuple[int, Point, int, int, int | None, object, int]]
        ) -> None:
            head_table = items[0][5]
            aggregable = (
                len(items) >= BATCH_VERIFY_MIN
                and head_table is not None
                and all(ry is not None for _i, _pk, _z, _r, ry, _t, _w in items)
            )
            if aggregable and _aggregate_group_verify(
                [(z, r, w, ry) for _i, _pk, z, r, ry, _t, w in items],
                head_table,
                curve,
            ):
                obs.inc("ecdsa.verify_batch.aggregated", len(items))
                for item in items:
                    results[item[0]] = True
                return
            for index, public_key, z, r, _parity, table, w in items:
                results[index] = _verify_prepared(public_key, z, r, w, table, curve)

        groups: "OrderedDict[tuple[int, int], list]" = OrderedDict()
        for (index, public_key, z, r, parity, table), w in zip(prepared, inverses):
            groups.setdefault((public_key.x, public_key.y), []).append(
                (index, public_key, z, r, parity, table, w)
            )
        for group in groups.values():
            flush_group(group)
        return results


def verify_digest_naive(
    public_key: Point, digest: bytes, signature: Signature, curve: Curve = CURVE_P256
) -> bool:
    """Reference verifier: two naive ladders and an affine final check."""
    if public_key.is_infinity() or not is_on_curve(public_key, curve):
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        return False
    z = _bits2int(digest, curve.n)
    w = _inverse_mod(s, curve.n)
    u1 = (z * w) % curve.n
    u2 = (r * w) % curve.n
    point = _from_jacobian(
        _jacobian_add(
            _to_jacobian(scalar_multiply(u1, curve.generator, curve)),
            _to_jacobian(scalar_multiply(u2, public_key, curve)),
            curve,
        ),
        curve,
    )
    if point.is_infinity():
        return False
    return point.x % curve.n == r
