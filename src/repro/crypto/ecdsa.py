"""ECDSA over NIST P-256, implemented from scratch on stdlib integers.

The paper's threat model (§II-B) assumes SHA-256 and ECDSA are reliable; every
non-repudiation proof in LedgerDB (client pi_c, LSP receipt pi_s, TSA pi_t) is an
ECDSA signature.  We implement the curve arithmetic directly so that the
reproduction has no external crypto dependency:

* Jacobian-coordinate point arithmetic with constant formulae,
* deterministic nonces per RFC 6979 (HMAC-DRBG) so signing is reproducible
  and never leaks the key through bad randomness,
* low-level ``sign_digest`` / ``verify_digest`` working on 32-byte digests.

This is a faithful, test-covered implementation of the textbook algorithms —
adequate for a research artifact, not hardened against side channels.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = [
    "CURVE_P256",
    "Curve",
    "Point",
    "Signature",
    "sign_digest",
    "verify_digest",
    "derive_public_key",
]


@dataclass(frozen=True)
class Curve:
    """Short Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    name: str
    p: int  # field prime
    a: int
    b: int
    n: int  # group order
    gx: int  # generator
    gy: int

    @property
    def generator(self) -> "Point":
        return Point(self.gx, self.gy)

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8


#: NIST P-256 (secp256r1) domain parameters.
CURVE_P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
)


@dataclass(frozen=True)
class Point:
    """An affine point; ``Point.INFINITY`` is the group identity."""

    x: int
    y: int

    def is_infinity(self) -> bool:
        return self.x == 0 and self.y == 0


_INFINITY = Point(0, 0)


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s), canonicalised to low-s form."""

    r: int
    s: int

    def to_bytes(self, curve: Curve = CURVE_P256) -> bytes:
        size = curve.byte_length
        return self.r.to_bytes(size, "big") + self.s.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, data: bytes, curve: Curve = CURVE_P256) -> "Signature":
        size = curve.byte_length
        if len(data) != 2 * size:
            raise ValueError(f"signature must be {2 * size} bytes, got {len(data)}")
        return cls(
            int.from_bytes(data[:size], "big"),
            int.from_bytes(data[size:], "big"),
        )


def _inverse_mod(k: int, p: int) -> int:
    if k % p == 0:
        raise ZeroDivisionError("inverse of zero")
    return pow(k, -1, p)


# ---------------------------------------------------------------------------
# Jacobian point arithmetic.  Points are (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
# ---------------------------------------------------------------------------


def _to_jacobian(point: Point) -> tuple[int, int, int]:
    if point.is_infinity():
        return (1, 1, 0)
    return (point.x, point.y, 1)


def _from_jacobian(jac: tuple[int, int, int], curve: Curve) -> Point:
    x, y, z = jac
    if z == 0:
        return _INFINITY
    p = curve.p
    z_inv = _inverse_mod(z, p)
    z_inv2 = (z_inv * z_inv) % p
    return Point((x * z_inv2) % p, (y * z_inv2 * z_inv) % p)


def _jacobian_double(jac: tuple[int, int, int], curve: Curve) -> tuple[int, int, int]:
    x, y, z = jac
    if z == 0 or y == 0:
        return (1, 1, 0)
    p = curve.p
    ysq = (y * y) % p
    s = (4 * x * ysq) % p
    m = (3 * x * x + curve.a * pow(z, 4, p)) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = (2 * y * z) % p
    return (nx, ny, nz)


def _jacobian_add(
    a: tuple[int, int, int], b: tuple[int, int, int], curve: Curve
) -> tuple[int, int, int]:
    if a[2] == 0:
        return b
    if b[2] == 0:
        return a
    p = curve.p
    x1, y1, z1 = a
    x2, y2, z2 = b
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return (1, 1, 0)
        return _jacobian_double(a, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    h2 = (h * h) % p
    h3 = (h2 * h) % p
    u1h2 = (u1 * h2) % p
    nx = (r * r - h3 - 2 * u1h2) % p
    ny = (r * (u1h2 - nx) - s1 * h3) % p
    nz = (h * z1 * z2) % p
    return (nx, ny, nz)


def scalar_multiply(k: int, point: Point, curve: Curve = CURVE_P256) -> Point:
    """Compute ``k * point`` with double-and-add over Jacobian coordinates."""
    k %= curve.n
    if k == 0 or point.is_infinity():
        return _INFINITY
    result = (1, 1, 0)
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend, curve)
        addend = _jacobian_double(addend, curve)
        k >>= 1
    return _from_jacobian(result, curve)


def point_add(a: Point, b: Point, curve: Curve = CURVE_P256) -> Point:
    """Affine point addition (thin wrapper over the Jacobian core)."""
    return _from_jacobian(
        _jacobian_add(_to_jacobian(a), _to_jacobian(b), curve), curve
    )


def is_on_curve(point: Point, curve: Curve = CURVE_P256) -> bool:
    """Check the curve equation; the identity is considered on-curve."""
    if point.is_infinity():
        return True
    x, y, p = point.x, point.y, curve.p
    return (y * y - (x * x * x + curve.a * x + curve.b)) % p == 0


def derive_public_key(secret: int, curve: Curve = CURVE_P256) -> Point:
    """Public key Q = d * G for a secret scalar d in [1, n-1]."""
    if not 1 <= secret < curve.n:
        raise ValueError("secret key out of range")
    return scalar_multiply(secret, curve.generator, curve)


# ---------------------------------------------------------------------------
# RFC 6979 deterministic nonce generation.
# ---------------------------------------------------------------------------


def _bits2int(data: bytes, n: int) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int, curve: Curve) -> bytes:
    return value.to_bytes(curve.byte_length, "big")


def _bits2octets(data: bytes, curve: Curve) -> bytes:
    z1 = _bits2int(data, curve.n)
    z2 = z1 % curve.n
    return _int2octets(z2, curve)


def rfc6979_nonce(secret: int, digest: bytes, curve: Curve = CURVE_P256) -> int:
    """Deterministic per-message nonce k (RFC 6979, HMAC-SHA256 DRBG)."""
    holen = hashlib.sha256().digest_size
    v = b"\x01" * holen
    k = b"\x00" * holen
    priv_bytes = _int2octets(secret, curve)
    msg_bytes = _bits2octets(digest, curve)
    k = hmac.new(k, v + b"\x00" + priv_bytes + msg_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + priv_bytes + msg_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        t = b""
        while len(t) < curve.byte_length:
            v = hmac.new(k, v, hashlib.sha256).digest()
            t += v
        candidate = _bits2int(t, curve.n)
        if 1 <= candidate < curve.n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


# ---------------------------------------------------------------------------
# Sign / verify.
# ---------------------------------------------------------------------------


def sign_digest(secret: int, digest: bytes, curve: Curve = CURVE_P256) -> Signature:
    """Sign a (32-byte) message digest, returning a low-s signature."""
    if not 1 <= secret < curve.n:
        raise ValueError("secret key out of range")
    z = _bits2int(digest, curve.n)
    counter = 0
    while True:
        k = rfc6979_nonce(secret, digest + counter.to_bytes(4, "big") if counter else digest, curve)
        point = scalar_multiply(k, curve.generator, curve)
        r = point.x % curve.n
        if r == 0:
            counter += 1
            continue
        s = (_inverse_mod(k, curve.n) * (z + r * secret)) % curve.n
        if s == 0:
            counter += 1
            continue
        if s > curve.n // 2:  # canonical low-s form
            s = curve.n - s
        return Signature(r, s)


def verify_digest(
    public_key: Point, digest: bytes, signature: Signature, curve: Curve = CURVE_P256
) -> bool:
    """Verify an ECDSA signature over a message digest.

    Returns ``False`` (never raises) for malformed signatures or off-curve
    keys, so callers can treat the result as a plain proof bit.
    """
    if public_key.is_infinity() or not is_on_curve(public_key, curve):
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        return False
    z = _bits2int(digest, curve.n)
    w = _inverse_mod(s, curve.n)
    u1 = (z * w) % curve.n
    u2 = (r * w) % curve.n
    point = _from_jacobian(
        _jacobian_add(
            _to_jacobian(scalar_multiply(u1, curve.generator, curve)),
            _to_jacobian(scalar_multiply(u2, public_key, curve)),
            curve,
        ),
        curve,
    )
    if point.is_infinity():
        return False
    return point.x % curve.n == r
