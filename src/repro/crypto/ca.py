"""Certificate authority substrate.

The threat model (§II-B) assumes "the identities of all ledger participants
are authentic, i.e., they (user, LSP, TSA, and regulator) disclose their
public keys certified by a CA".  This module provides that substrate: a CA
issues :class:`Certificate` objects binding a member id and role to a public
key; anyone holding the CA's public key can verify the binding offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .ecdsa import Signature
from .hashing import sha256
from .keys import KeyPair, PublicKey

__all__ = ["Role", "Certificate", "CertificateAuthority", "CertificateError"]


class CertificateError(Exception):
    """Raised when a certificate fails validation."""


class Role(Enum):
    """Roles a ledger participant may hold (§III-C, §II-B)."""

    USER = "user"
    LSP = "lsp"
    TSA = "tsa"
    DBA = "dba"
    REGULATOR = "regulator"
    AUDITOR = "auditor"


@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of (member_id, role, public key)."""

    member_id: str
    role: Role
    public_key: PublicKey
    issuer: str
    signature: Signature

    def signing_payload(self) -> bytes:
        return _certificate_payload(self.member_id, self.role, self.public_key, self.issuer)

    def verify(self, ca_public_key: PublicKey) -> bool:
        """Check that ``ca_public_key`` signed this certificate."""
        return ca_public_key.verify(sha256(self.signing_payload()), self.signature)


def _certificate_payload(
    member_id: str, role: Role, public_key: PublicKey, issuer: str
) -> bytes:
    return b"\x00".join(
        [
            b"repro.certificate.v1",
            issuer.encode("utf-8"),
            member_id.encode("utf-8"),
            role.value.encode("utf-8"),
            public_key.to_bytes(),
        ]
    )


class CertificateAuthority:
    """A minimal CA that issues and validates member certificates.

    Duplicate member ids are rejected so one real-world entity cannot hold
    two conflicting certified keys under the same name.
    """

    def __init__(self, name: str, keypair: KeyPair | None = None) -> None:
        self.name = name
        self._keypair = keypair or KeyPair.generate(seed=f"ca:{name}")
        self._issued: dict[str, Certificate] = {}

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def issue(self, member_id: str, role: Role, public_key: PublicKey) -> Certificate:
        """Issue a certificate for ``member_id`` acting as ``role``."""
        if member_id in self._issued:
            raise CertificateError(f"member id already certified: {member_id!r}")
        payload = _certificate_payload(member_id, role, public_key, self.name)
        cert = Certificate(
            member_id=member_id,
            role=role,
            public_key=public_key,
            issuer=self.name,
            signature=self._keypair.sign(sha256(payload)),
        )
        self._issued[member_id] = cert
        return cert

    def lookup(self, member_id: str) -> Certificate:
        """Fetch a previously-issued certificate."""
        try:
            return self._issued[member_id]
        except KeyError:
            raise CertificateError(f"no certificate for member {member_id!r}") from None

    def validate(self, certificate: Certificate) -> None:
        """Raise :class:`CertificateError` unless ``certificate`` is ours and valid."""
        if certificate.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {certificate.issuer!r}, not {self.name!r}"
            )
        if not certificate.verify(self.public_key):
            raise CertificateError("certificate signature is invalid")
