"""Multi-signature sets for mutation prerequisites.

Purge requires multi-signatures from the DBA and *all* members owning
journals before the purge point (Prerequisite 1); occult requires the DBA and
the regulator (Prerequisite 2).  A :class:`MultiSignature` is an unordered set
of per-member signatures over one digest, validated against an explicit
required-signer set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ca import Certificate
from .ecdsa import Signature

__all__ = ["MultiSignature", "MultiSignatureError"]


class MultiSignatureError(Exception):
    """Raised when a multi-signature set does not satisfy its prerequisite."""


@dataclass
class MultiSignature:
    """Signatures from several members over a single digest."""

    digest: bytes
    signatures: dict[str, Signature] = field(default_factory=dict)

    def add(self, member_id: str, signature: Signature) -> None:
        """Record ``member_id``'s signature; re-signing must be identical."""
        existing = self.signatures.get(member_id)
        if existing is not None and existing != signature:
            raise MultiSignatureError(
                f"conflicting signature already recorded for {member_id!r}"
            )
        self.signatures[member_id] = signature

    def signer_ids(self) -> frozenset[str]:
        return frozenset(self.signatures)

    def verify(
        self,
        required_signers: dict[str, Certificate],
    ) -> None:
        """Check that every required signer signed ``digest`` with a valid key.

        ``required_signers`` maps member id to that member's certificate;
        extra signatures beyond the required set are permitted (they only add
        endorsement) but every *required* one must be present and valid.
        Raises :class:`MultiSignatureError` on any failure.
        """
        missing = sorted(set(required_signers) - set(self.signatures))
        if missing:
            raise MultiSignatureError(f"missing required signatures from: {missing}")
        for member_id, certificate in required_signers.items():
            signature = self.signatures[member_id]
            if not certificate.public_key.verify(self.digest, signature):
                raise MultiSignatureError(f"invalid signature from {member_id!r}")

    def is_satisfied_by(self, required_signers: dict[str, Certificate]) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(required_signers)
        except MultiSignatureError:
            return False
        return True
