"""Key pairs and serialisable public keys for ledger participants.

Every member of a LedgerDB deployment (user, LSP, TSA, DBA, regulator) holds
an ECDSA key pair.  ``KeyPair.generate`` derives keys deterministically from a
seed so tests, examples, and benchmarks are reproducible without an OS RNG.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from .ecdsa import (
    CURVE_P256,
    Curve,
    Point,
    Signature,
    derive_public_key,
    is_on_curve,
    precompute_public_key,
    sign_digest,
    sign_digests,
    verify_digest,
    verify_digests,
)

__all__ = ["PublicKey", "KeyPair", "verify_batch"]


@dataclass(frozen=True)
class PublicKey:
    """A serialisable ECDSA public key (uncompressed SEC1-style encoding)."""

    point: Point
    curve: Curve = CURVE_P256

    def to_bytes(self) -> bytes:
        size = self.curve.byte_length
        return b"\x04" + self.point.x.to_bytes(size, "big") + self.point.y.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, data: bytes, curve: Curve = CURVE_P256) -> "PublicKey":
        size = curve.byte_length
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise ValueError("expected uncompressed SEC1 public key")
        point = Point(
            int.from_bytes(data[1 : 1 + size], "big"),
            int.from_bytes(data[1 + size :], "big"),
        )
        if not is_on_curve(point, curve):
            raise ValueError("public key is not on the curve")
        return cls(point, curve)

    def fingerprint(self) -> bytes:
        """32-byte identifier of this key (hash of its encoding)."""
        return hashlib.sha256(self.to_bytes()).digest()

    def verify(self, digest: bytes, signature: Signature) -> bool:
        """Verify ``signature`` over a 32-byte digest.  Never raises."""
        return verify_digest(self.point, digest, signature, self.curve)

    def precompute(self) -> "PublicKey":
        """Eagerly build this key's window table in the verifier cache.

        Batch admission calls this before fanning out signature checks so
        every verification of the key runs add-only table scans.  Returns
        ``self`` for chaining.  Raises ``ValueError`` for an invalid point
        (off-curve keys can never verify anyway).
        """
        if self.point.is_infinity() or not is_on_curve(self.point, self.curve):
            raise ValueError("cannot precompute an invalid public key")
        precompute_public_key(self.point, self.curve)
        return self


@dataclass(frozen=True)
class KeyPair:
    """A member's signing key pair (sk, pk)."""

    secret: int
    public: PublicKey

    @classmethod
    def generate(cls, seed: bytes | str | None = None, curve: Curve = CURVE_P256) -> "KeyPair":
        """Create a key pair.

        With ``seed`` the secret scalar is derived deterministically
        (hash-to-scalar with rejection sampling); without, a cryptographically
        random scalar is drawn.
        """
        if seed is None:
            secret = secrets.randbelow(curve.n - 1) + 1
        else:
            material = seed.encode("utf-8") if isinstance(seed, str) else seed
            counter = 0
            while True:
                candidate = int.from_bytes(
                    hashlib.sha256(material + counter.to_bytes(4, "big")).digest(), "big"
                )
                if 1 <= candidate < curve.n:
                    secret = candidate
                    break
                counter += 1
        return cls(secret, PublicKey(derive_public_key(secret, curve), curve))

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest with this key pair's secret."""
        return sign_digest(self.secret, digest, self.public.curve)

    def sign_batch(self, digests: list[bytes]) -> list[Signature]:
        """Sign many digests, amortising the modular inversions.

        Bit-identical output to ``[self.sign(d) for d in digests]`` — RFC
        6979 is deterministic — but roughly two of the three ``pow`` calls
        per signature collapse into one shared batch inversion.
        """
        return sign_digests(self.secret, digests, self.public.curve)


def verify_batch(checks: list[tuple[PublicKey, bytes, Signature]]) -> list[bool]:
    """Batch-verify ``(public_key, digest, signature)`` triples.

    Same verdict per item as :meth:`PublicKey.verify`, with the ``s^-1``
    inversions shared per curve.  Never raises — malformed inputs simply
    verify ``False``.
    """
    results = [False] * len(checks)
    by_curve: dict[str, tuple[Curve, list]] = {}
    for index, (public_key, digest, signature) in enumerate(checks):
        group = by_curve.setdefault(public_key.curve.name, (public_key.curve, []))
        group[1].append((index, public_key.point, digest, signature))
    for curve, items in by_curve.values():
        verdicts = verify_digests(
            [(point, digest, sig) for _i, point, digest, sig in items], curve
        )
        for (index, _point, _digest, _sig), ok in zip(items, verdicts):
            results[index] = ok
    return results
