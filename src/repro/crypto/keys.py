"""Key pairs and serialisable public keys for ledger participants.

Every member of a LedgerDB deployment (user, LSP, TSA, DBA, regulator) holds
an ECDSA key pair.  ``KeyPair.generate`` derives keys deterministically from a
seed so tests, examples, and benchmarks are reproducible without an OS RNG.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from .ecdsa import (
    CURVE_P256,
    Curve,
    Point,
    Signature,
    derive_public_key,
    is_on_curve,
    sign_digest,
    verify_digest,
)

__all__ = ["PublicKey", "KeyPair"]


@dataclass(frozen=True)
class PublicKey:
    """A serialisable ECDSA public key (uncompressed SEC1-style encoding)."""

    point: Point
    curve: Curve = CURVE_P256

    def to_bytes(self) -> bytes:
        size = self.curve.byte_length
        return b"\x04" + self.point.x.to_bytes(size, "big") + self.point.y.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, data: bytes, curve: Curve = CURVE_P256) -> "PublicKey":
        size = curve.byte_length
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise ValueError("expected uncompressed SEC1 public key")
        point = Point(
            int.from_bytes(data[1 : 1 + size], "big"),
            int.from_bytes(data[1 + size :], "big"),
        )
        if not is_on_curve(point, curve):
            raise ValueError("public key is not on the curve")
        return cls(point, curve)

    def fingerprint(self) -> bytes:
        """32-byte identifier of this key (hash of its encoding)."""
        return hashlib.sha256(self.to_bytes()).digest()

    def verify(self, digest: bytes, signature: Signature) -> bool:
        """Verify ``signature`` over a 32-byte digest.  Never raises."""
        return verify_digest(self.point, digest, signature, self.curve)


@dataclass(frozen=True)
class KeyPair:
    """A member's signing key pair (sk, pk)."""

    secret: int
    public: PublicKey

    @classmethod
    def generate(cls, seed: bytes | str | None = None, curve: Curve = CURVE_P256) -> "KeyPair":
        """Create a key pair.

        With ``seed`` the secret scalar is derived deterministically
        (hash-to-scalar with rejection sampling); without, a cryptographically
        random scalar is drawn.
        """
        if seed is None:
            secret = secrets.randbelow(curve.n - 1) + 1
        else:
            material = seed.encode("utf-8") if isinstance(seed, str) else seed
            counter = 0
            while True:
                candidate = int.from_bytes(
                    hashlib.sha256(material + counter.to_bytes(4, "big")).digest(), "big"
                )
                if 1 <= candidate < curve.n:
                    secret = candidate
                    break
                counter += 1
        return cls(secret, PublicKey(derive_public_key(secret, curve), curve))

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest with this key pair's secret."""
        return sign_digest(self.secret, digest, self.public.curve)
