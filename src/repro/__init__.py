"""repro — a from-scratch reproduction of *Ubiquitous Verification in
Centralized Ledger Database* (ICDE 2022).

The package implements LedgerDB's verification machinery end to end:

* :mod:`repro.crypto` — SHA-256/SHA-3 digests, from-scratch ECDSA (P-256,
  RFC 6979), a CA substrate, and multi-signatures;
* :mod:`repro.storage` — append-only streams and KV node stores;
* :mod:`repro.merkle` — the tree family: Shrubs accumulators, **fam**
  (fractal accumulating model) with trusted anchors, tim/bim baselines, a
  Merkle Patricia Trie, **CM-Tree** for N-lineage, and the ccMPT baseline;
* :mod:`repro.timeauth` — TSA actors, one-/two-way pegging, **T-Ledger**,
  and the timestamp-attack harness;
* :mod:`repro.core` — the ledger kernel (journals, receipts, blocks, purge,
  occult), Dasein what/when/who verification, and the §V audit;
* :mod:`repro.baselines` — QLDB-, Fabric-, and ProvenDB-like comparators;
* :mod:`repro.sim` / :mod:`repro.workloads` — the calibrated cost model and
  deterministic workload generators behind the benchmark suite.

Quickstart::

    from repro import Ledger, LedgerConfig, ClientRequest, KeyPair, Role

    ledger = Ledger(LedgerConfig(uri="ledger://demo"))
    alice = KeyPair.generate(seed="alice")
    ledger.registry.register("alice", Role.USER, alice.public)
    request = ClientRequest.build(
        "ledger://demo", "alice", b"hello ledger", clues=("CLUE-1",)
    ).signed_by(alice)
    receipt = ledger.append(request)
    proof = ledger.get_proof(receipt.jsn)
    assert ledger.verify_journal(ledger.get_journal(receipt.jsn), proof)
"""

from .core import (
    AuditReport,
    ClientRequest,
    DaseinReport,
    DaseinVerifier,
    Journal,
    JournalType,
    Ledger,
    LedgerConfig,
    LedgerView,
    MemberRegistry,
    OccultMode,
    Receipt,
    UsageError,
    VerifyResult,
    dasein_audit,
)
from .crypto import CertificateAuthority, KeyPair, MultiSignature, PublicKey, Role, Signature
from .merkle import (
    AnchorStore,
    CMTree,
    ClueCounterMPT,
    FamAccumulator,
    MPT,
    ShrubsAccumulator,
    TimAccumulator,
)
from .service import LedgerService, ServiceConfig
from .timeauth import (
    SimClock,
    TimeLedger,
    TimeStampAuthority,
    TSAPool,
)
from . import api  # noqa: E402  (the v2 session API; after core is loaded)
from .api import LedgerSession, connect, scoped_ledger

__version__ = "1.0.0"

__all__ = [
    "AuditReport",
    "ClientRequest",
    "DaseinReport",
    "DaseinVerifier",
    "Journal",
    "JournalType",
    "Ledger",
    "LedgerConfig",
    "LedgerView",
    "MemberRegistry",
    "OccultMode",
    "Receipt",
    "UsageError",
    "VerifyResult",
    "dasein_audit",
    "api",
    "connect",
    "scoped_ledger",
    "LedgerSession",
    "LedgerService",
    "ServiceConfig",
    "CertificateAuthority",
    "KeyPair",
    "MultiSignature",
    "PublicKey",
    "Role",
    "Signature",
    "AnchorStore",
    "CMTree",
    "ClueCounterMPT",
    "FamAccumulator",
    "MPT",
    "ShrubsAccumulator",
    "TimAccumulator",
    "SimClock",
    "TimeLedger",
    "TimeStampAuthority",
    "TSAPool",
    "__version__",
]
