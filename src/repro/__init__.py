"""repro — a from-scratch reproduction of *Ubiquitous Verification in
Centralized Ledger Database* (ICDE 2022).

The package implements LedgerDB's verification machinery end to end:

* :mod:`repro.crypto` — SHA-256/SHA-3 digests, from-scratch ECDSA (P-256,
  RFC 6979), a CA substrate, and multi-signatures;
* :mod:`repro.storage` — append-only streams and KV node stores;
* :mod:`repro.merkle` — the tree family: Shrubs accumulators, **fam**
  (fractal accumulating model) with trusted anchors, tim/bim baselines, a
  Merkle Patricia Trie, **CM-Tree** for N-lineage, and the ccMPT baseline;
* :mod:`repro.timeauth` — TSA actors, one-/two-way pegging, **T-Ledger**,
  and the timestamp-attack harness;
* :mod:`repro.core` — the ledger kernel (journals, receipts, blocks, purge,
  occult), Dasein what/when/who verification, and the §V audit;
* :mod:`repro.artifacts` — the kernel-free artifact layer (byte-symmetric
  evidence objects and the structured ``VerifyResult``);
* :mod:`repro.export` — offline export bundles, the standalone verifier,
  and rebuild-from-truth;
* :mod:`repro.baselines` — QLDB-, Fabric-, and ProvenDB-like comparators;
* :mod:`repro.sim` / :mod:`repro.workloads` — the calibrated cost model and
  deterministic workload generators behind the benchmark suite.

Quickstart::

    from repro import Ledger, LedgerConfig, ClientRequest, KeyPair, Role

    ledger = Ledger(LedgerConfig(uri="ledger://demo"))
    alice = KeyPair.generate(seed="alice")
    ledger.registry.register("alice", Role.USER, alice.public)
    request = ClientRequest.build(
        "ledger://demo", "alice", b"hello ledger", clues=("CLUE-1",)
    ).signed_by(alice)
    receipt = ledger.append(request)
    proof = ledger.get_proof(receipt.jsn)
    assert ledger.verify_journal(ledger.get_journal(receipt.jsn), proof)

Exports resolve lazily (PEP 562): ``import repro`` loads essentially
nothing, and ``from repro.export.verifier import verify_bundle`` pulls in
only the kernel-free slice — the standalone-verifier guarantee that a
bundle check never imports the ledger kernel, the service layer, or the
network stack depends on this, so keep new top-level exports in the lazy
table rather than adding eager ``import`` statements here.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

# name -> submodule (relative) providing it.  Resolved on first attribute
# access and cached in the module dict by __getattr__.
_EXPORTS = {
    # core kernel
    "AuditReport": ".core",
    "ClientRequest": ".core",
    "DaseinReport": ".core",
    "DaseinVerifier": ".core",
    "Journal": ".core",
    "JournalType": ".core",
    "Ledger": ".core",
    "LedgerConfig": ".core",
    "LedgerView": ".core",
    "MemberRegistry": ".core",
    "OccultMode": ".core",
    "Receipt": ".core",
    "UsageError": ".core",
    "dasein_audit": ".core",
    # artifact layer (kernel-free)
    "Artifact": ".artifacts",
    "VerifyResult": ".artifacts",
    # offline export / standalone verification / rebuild-from-truth
    "ExportBundle": ".export",
    "export_bundle": ".export",
    "verify_bundle": ".export",
    "RebuildReport": ".export.rebuild",
    # crypto
    "CertificateAuthority": ".crypto",
    "KeyPair": ".crypto",
    "MultiSignature": ".crypto",
    "PublicKey": ".crypto",
    "Role": ".crypto",
    "Signature": ".crypto",
    # merkle
    "AnchorStore": ".merkle",
    "CMTree": ".merkle",
    "ClueCounterMPT": ".merkle",
    "FamAccumulator": ".merkle",
    "MPT": ".merkle",
    "ShrubsAccumulator": ".merkle",
    "TimAccumulator": ".merkle",
    # service
    "LedgerService": ".service",
    "ServiceConfig": ".service",
    # time authorities
    "SimClock": ".timeauth",
    "TimeLedger": ".timeauth",
    "TimeStampAuthority": ".timeauth",
    "TSAPool": ".timeauth",
    # v2 session API
    "LedgerSession": ".api",
    "connect": ".api",
    "scoped_ledger": ".api",
}

# Submodules reachable as plain attributes after ``import repro``.
_SUBMODULES = frozenset(
    {
        "api",
        "artifacts",
        "core",
        "crypto",
        "encoding",
        "export",
        "merkle",
        "obs",
        "service",
        "shard",
        "storage",
        "timeauth",
        "transparency",
    }
)

__all__ = [  # noqa: F822  (names resolve lazily via __getattr__)
    *sorted(_EXPORTS),
    "api",
    "export",
    "__version__",
]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(importlib.import_module(module_name, __name__), name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS) | set(_SUBMODULES))
