"""The unified session protocol: one verifying surface, any transport.

:class:`VerifyingSession` is the structural type both session classes
satisfy — :class:`repro.api.LedgerSession` (in-process, optionally
service-backed) and :class:`repro.net.client.RemoteLedgerSession` (TCP,
client-side verification).  Code written against the protocol — the
transparency :class:`~repro.transparency.witness.Witness`, the CLI, tests —
runs over either transport with zero branches::

    def cross_audit(session: VerifyingSession) -> WitnessReport:
        head = session.get_sth()            # works local AND remote
        ...

``repro.api.connect()`` returns a :class:`VerifyingSession` for both
registered ``lgid``\\ s and ``ledger://host:port`` addresses, and
``isinstance(session, VerifyingSession)`` holds at runtime for both.

The contract the protocol pins down (DESIGN.md §11/§16):

* identical method *signatures* on every transport — kwargs a transport
  cannot honour are rejected with a typed
  :class:`~repro.core.errors.UsageError` naming the transport, never
  silently swallowed.  Which kwarg belongs to which transport — and *why*
  the others refuse it — lives in one declarative table,
  :data:`CAPABILITIES`, instead of being re-stated at every call site;
* every ``verify``-family method returns a structured
  :class:`~repro.core.verification.VerifyResult` (truthy-compatible with
  the old bools);
* the transparency surface (``get_sth`` / ``get_sth_range`` /
  ``get_consistency`` / ``append_acked``) is part of the session, so
  non-equivocation auditing needs no side channel.

:class:`SessionHelpers` is the shared ABC-style mixin: context management
and argument normalisation live here once instead of per transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from .core.errors import UsageError

if TYPE_CHECKING:
    from .core.journal import ClientRequest, Journal
    from .core.receipt import Receipt
    from .core.verification import VerifyResult
    from .crypto.keys import KeyPair
    from .export.bundle import ExportBundle
    from .transparency.censorship import SubmissionAck
    from .transparency.sth import (
        ConsistencyAssertion,
        ConsistencyBundle,
        SignedTreeHead,
    )

__all__ = [
    "CAPABILITIES",
    "SessionHelpers",
    "TransportCapability",
    "VerifyingSession",
    "check_transport_kwargs",
]


# ------------------------------------------------------------- capabilities


@dataclass(frozen=True)
class TransportCapability:
    """One session/connect kwarg and which transports honour it.

    ``reason`` explains — to the caller of the transport that *rejects* the
    kwarg — why passing it there cannot mean anything; it lands verbatim in
    the :class:`UsageError` and in generated documentation, so it should
    read as a sentence fragment after "``:``".
    """

    kwarg: str
    transports: frozenset[str]
    reason: str

    def supports(self, transport: str) -> bool:
        return transport in self.transports


#: The declarative capability table: every kwarg on the session surface
#: that only some transports honour, with the rejection rationale.  Both
#: ``connect()`` and the session classes consult this instead of hand-rolling
#: per-call-site rejections — add a row here, never another inline ``raise``.
CAPABILITIES: dict[str, TransportCapability] = {
    "service": TransportCapability(
        kwarg="service",
        transports=frozenset({"local"}),
        reason="the remote server runs its own group-commit service",
    ),
    "expected_lsp_key": TransportCapability(
        kwarg="expected_lsp_key",
        transports=frozenset({"remote"}),
        reason="an in-process ledger's LSP key needs no out-of-band pinning",
    ),
    "timeout": TransportCapability(
        kwarg="timeout",
        transports=frozenset({"remote"}),
        reason=(
            "local calls traverse no socket (per-call timeout= on "
            "service-backed appends still applies)"
        ),
    ),
    "max_workers": TransportCapability(
        kwarg="max_workers",
        transports=frozenset({"local"}),
        reason=(
            "the server's group-commit service owns batching; max_workers "
            "only tunes the local direct-append path"
        ),
    ),
}


def check_transport_kwargs(transport: str, lgid: Any = "?", **kwargs: Any) -> None:
    """Reject any non-``None`` kwarg the table says ``transport`` cannot honour.

    Raises:
        UsageError: naming the kwarg, the transport, and the table's reason.
    """
    for name, value in kwargs.items():
        if value is None:
            continue
        capability = CAPABILITIES.get(name)
        if capability is None or capability.supports(transport):
            continue
        raise UsageError(
            f"{name}= is not supported by the {transport} transport "
            f"({lgid!r}): {capability.reason}"
        )


@runtime_checkable
class VerifyingSession(Protocol):
    """Structural type of a verifying ledger session, local or remote.

    ``runtime_checkable`` checks member *presence* only; the signature
    contract is enforced by the conformance tests (identical parameter
    lists on both implementations, per-transport typed rejection of
    unsupported kwargs).
    """

    def append(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        request: "ClientRequest | None" = None,
        timeout: float | None = None,
    ) -> "Receipt": ...

    def append_batch(
        self,
        items: list[tuple[bytes, str | None]] | None = None,
        *,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        requests: "list[ClientRequest] | None" = None,
        max_workers: int | None = None,
        timeout: float | None = None,
    ) -> "list[Receipt]": ...

    def append_acked(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        request: "ClientRequest | None" = None,
        deadline_epochs: int | None = None,
        timeout: float | None = None,
    ) -> "tuple[Receipt, SubmissionAck]": ...

    def list_tx(self, clue: str) -> "list[Journal]": ...

    def get_proof(self, jsn: int, anchored: bool = True) -> Any: ...

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[Any]: ...

    def get_sth(self) -> "SignedTreeHead": ...

    def get_sth_range(self, start: int, end: int) -> "list[SignedTreeHead]": ...

    def get_consistency(
        self, old: "SignedTreeHead", new: "SignedTreeHead"
    ) -> "tuple[ConsistencyBundle | None, ConsistencyAssertion | None]": ...

    def verify(
        self,
        target: Any,
        *,
        key: str | None = None,
        txdata: "list[Journal] | None" = None,
        rho: Any = None,
        root: bytes | None = None,
        level: Any = "server",
    ) -> "VerifyResult": ...

    def export(
        self,
        path: Any = None,
        *,
        clues: tuple[str, ...] = (),
    ) -> "ExportBundle": ...

    def close(self) -> None: ...


class SessionHelpers:
    """Shared behaviour for :class:`VerifyingSession` implementations.

    Context management and argument normalisation are transport-independent;
    both session classes inherit them from here so the protocol surface
    cannot drift apart by accident.
    """

    #: Implementations override with their transport name, used in the
    #: typed errors that reject unsupported kwargs.
    transport = "session"

    def close(self) -> None:  # pragma: no cover - overridden by transports
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def _normalize_clues(
        clue: str | None, clues: tuple[str, ...] | None
    ) -> tuple[str, ...]:
        if clue is not None and clues is not None:
            raise UsageError("pass clue= or clues=, not both")
        return tuple(clues) if clues is not None else ((clue,) if clue else ())

    def _check_capabilities(self, **kwargs: Any) -> None:
        """Typed rejection of kwargs this transport cannot honour.

        Table-driven (:data:`CAPABILITIES`): pass the candidate kwargs and
        every non-``None`` one the table denies this transport raises a
        :class:`UsageError` carrying the table's rationale.
        """
        check_transport_kwargs(
            self.transport, getattr(self, "lgid", "?"), **kwargs
        )
