"""The unified session protocol: one verifying surface, any transport.

:class:`VerifyingSession` is the structural type both session classes
satisfy — :class:`repro.api.LedgerSession` (in-process, optionally
service-backed) and :class:`repro.net.client.RemoteLedgerSession` (TCP,
client-side verification).  Code written against the protocol — the
transparency :class:`~repro.transparency.witness.Witness`, the CLI, tests —
runs over either transport with zero branches::

    def cross_audit(session: VerifyingSession) -> WitnessReport:
        head = session.get_sth()            # works local AND remote
        ...

``repro.api.connect()`` returns a :class:`VerifyingSession` for both
registered ``lgid``\\ s and ``ledger://host:port`` addresses, and
``isinstance(session, VerifyingSession)`` holds at runtime for both.

The contract the protocol pins down (DESIGN.md §11/§16):

* identical method *signatures* on every transport — kwargs a transport
  cannot honour are rejected with a typed
  :class:`~repro.core.errors.UsageError` naming the transport, never
  silently swallowed;
* every ``verify``-family method returns a structured
  :class:`~repro.core.verification.VerifyResult` (truthy-compatible with
  the old bools);
* the transparency surface (``get_sth`` / ``get_sth_range`` /
  ``get_consistency`` / ``append_acked``) is part of the session, so
  non-equivocation auditing needs no side channel.

:class:`SessionHelpers` is the shared ABC-style mixin: context management
and argument normalisation live here once instead of per transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from .core.errors import UsageError

if TYPE_CHECKING:
    from .core.journal import ClientRequest, Journal
    from .core.receipt import Receipt
    from .core.verification import VerifyResult
    from .crypto.keys import KeyPair
    from .transparency.censorship import SubmissionAck
    from .transparency.sth import (
        ConsistencyAssertion,
        ConsistencyBundle,
        SignedTreeHead,
    )

__all__ = ["VerifyingSession", "SessionHelpers"]


@runtime_checkable
class VerifyingSession(Protocol):
    """Structural type of a verifying ledger session, local or remote.

    ``runtime_checkable`` checks member *presence* only; the signature
    contract is enforced by the conformance tests (identical parameter
    lists on both implementations, per-transport typed rejection of
    unsupported kwargs).
    """

    def append(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        request: "ClientRequest | None" = None,
        timeout: float | None = None,
    ) -> "Receipt": ...

    def append_batch(
        self,
        items: list[tuple[bytes, str | None]] | None = None,
        *,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        requests: "list[ClientRequest] | None" = None,
        max_workers: int | None = None,
        timeout: float | None = None,
    ) -> "list[Receipt]": ...

    def append_acked(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: "KeyPair | None" = None,
        request: "ClientRequest | None" = None,
        deadline_epochs: int | None = None,
        timeout: float | None = None,
    ) -> "tuple[Receipt, SubmissionAck]": ...

    def list_tx(self, clue: str) -> "list[Journal]": ...

    def get_proof(self, jsn: int, anchored: bool = True) -> Any: ...

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[Any]: ...

    def get_sth(self) -> "SignedTreeHead": ...

    def get_sth_range(self, start: int, end: int) -> "list[SignedTreeHead]": ...

    def get_consistency(
        self, old: "SignedTreeHead", new: "SignedTreeHead"
    ) -> "tuple[ConsistencyBundle | None, ConsistencyAssertion | None]": ...

    def verify(
        self,
        target: Any,
        *,
        key: str | None = None,
        txdata: "list[Journal] | None" = None,
        rho: Any = None,
        root: bytes | None = None,
        level: Any = "server",
    ) -> "VerifyResult": ...

    def close(self) -> None: ...


class SessionHelpers:
    """Shared behaviour for :class:`VerifyingSession` implementations.

    Context management and argument normalisation are transport-independent;
    both session classes inherit them from here so the protocol surface
    cannot drift apart by accident.
    """

    #: Implementations override with their transport name, used in the
    #: typed errors that reject unsupported kwargs.
    transport = "session"

    def close(self) -> None:  # pragma: no cover - overridden by transports
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def _normalize_clues(
        clue: str | None, clues: tuple[str, ...] | None
    ) -> tuple[str, ...]:
        if clue is not None and clues is not None:
            raise UsageError("pass clue= or clues=, not both")
        return tuple(clues) if clues is not None else ((clue,) if clue else ())

    def _reject_kwarg(self, name: str, why: str) -> None:
        """Typed rejection of a kwarg this transport cannot honour."""
        raise UsageError(
            f"{name}= is not supported by the {self.transport} transport "
            f"({getattr(self, 'lgid', '?')!r}): {why}"
        )
