"""Censorship evidence: acked-but-absent becomes provable (DESIGN.md §16).

Equivocation detection (``sth.py``) catches a server that *rewrites*
history, but not one that silently *drops* a valid request — from the
outside, a dropped request is indistinguishable from one never sent.
AQUAREUM's fix (PAPERS.md): the server signs a :class:`SubmissionAck` at
admission time, binding itself to include the request within a deadline.
An ack plus any later signed tree head past the deadline is a
:class:`CensorshipEvidence` bundle that verifies offline; the server's only
way out is :func:`refute_censorship` — an inclusion proof folding the acked
request into a signed head.

Evidence here is *conditional* in a way equivocation evidence is not: it
proves "the server promised and, as of head H, had not demonstrated
inclusion".  The refutation closes the loop — a judge holding evidence asks
the server to refute; silence convicts operationally, a valid refutation
acquits cryptographically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair, PublicKey
from ..encoding import decode, encode
from ..merkle.fam import FamAccumulator, FamProof
from .sth import SOLO_SHARD, SignedTreeHead

if TYPE_CHECKING:
    from ..core.journal import Journal

__all__ = [
    "SubmissionAck",
    "CensorshipEvidence",
    "refute_censorship",
]


@dataclass(frozen=True)
class SubmissionAck:
    """The LSP's signed promise to include an admitted request.

    ``epoch``/``tree_size`` pin the fam state at admission; the promise is
    "this request will be included (and provable) before epoch
    ``epoch + deadline_epochs`` closes".  ``request_hash`` is the client
    request's own hash — the same digest a committed journal carries — so
    inclusion is checkable without trusting the server's jsn assignment.
    """

    ledger_uri: str
    request_hash: Digest
    epoch: int
    tree_size: int
    deadline_epochs: int
    timestamp: float
    shard_index: int = SOLO_SHARD
    lsp_signature: Signature | None = None

    def signing_payload(self) -> bytes:
        return encode(
            {
                "scheme": "repro.ack.v1",
                "ledger_uri": self.ledger_uri,
                "request_hash": self.request_hash,
                "epoch": self.epoch,
                "tree_size": self.tree_size,
                "deadline_epochs": self.deadline_epochs,
                "timestamp": self.timestamp,
                "shard_index": self.shard_index,
            }
        )

    def signed_by(self, lsp_keypair: KeyPair) -> "SubmissionAck":
        return replace(
            self, lsp_signature=lsp_keypair.sign(sha256(self.signing_payload()))
        )

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Check the LSP's signature.  Never raises."""
        if self.lsp_signature is None:
            return False
        return lsp_public_key.verify(
            sha256(self.signing_payload()), self.lsp_signature
        )

    def to_bytes(self) -> bytes:
        return encode(
            {
                "ledger_uri": self.ledger_uri,
                "request_hash": self.request_hash,
                "epoch": self.epoch,
                "tree_size": self.tree_size,
                "deadline_epochs": self.deadline_epochs,
                "timestamp": self.timestamp,
                "shard_index": self.shard_index,
                "lsp_signature": (
                    self.lsp_signature.to_bytes() if self.lsp_signature else b""
                ),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SubmissionAck":
        obj = decode(data)
        signature_bytes = bytes(obj["lsp_signature"])
        return cls(
            ledger_uri=obj["ledger_uri"],
            request_hash=bytes(obj["request_hash"]),
            epoch=obj["epoch"],
            tree_size=obj["tree_size"],
            deadline_epochs=obj["deadline_epochs"],
            timestamp=obj["timestamp"],
            shard_index=obj["shard_index"],
            lsp_signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )


@dataclass(frozen=True)
class CensorshipEvidence:
    """A signed ack whose deadline passed, witnessed by a signed head.

    ``sth`` must speak for the same stream as the ack and sit at or past
    the promised deadline epoch.  The bundle does not (cannot) prove the
    request is absent — absence is unfalsifiable from outside — it proves
    the server owes an inclusion proof and lets :func:`refute_censorship`
    settle the matter either way.
    """

    ack: SubmissionAck
    sth: SignedTreeHead

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Offline check: both signatures, one stream, deadline expired."""
        try:
            return self._verify(lsp_public_key)
        except (KeyError, ValueError, IndexError, TypeError):
            return False

    def _verify(self, lsp_public_key: PublicKey) -> bool:
        if self.ack.deadline_epochs < 1:
            return False
        if not self.ack.verify(lsp_public_key):
            return False
        if not self.sth.verify(lsp_public_key):
            return False
        if self.sth.is_composite:
            return False
        if self.ack.ledger_uri != self.sth.ledger_uri:
            return False
        if self.ack.shard_index != self.sth.shard_index:
            return False
        return self.sth.epoch >= self.ack.epoch + self.ack.deadline_epochs

    def to_bytes(self) -> bytes:
        return encode({"ack": self.ack.to_bytes(), "sth": self.sth.to_bytes()})

    @classmethod
    def from_bytes(cls, data: bytes) -> "CensorshipEvidence":
        obj = decode(data)
        return cls(
            ack=SubmissionAck.from_bytes(bytes(obj["ack"])),
            sth=SignedTreeHead.from_bytes(bytes(obj["sth"])),
        )


def refute_censorship(
    evidence: CensorshipEvidence,
    journal: "Journal",
    proof: FamProof,
    head: SignedTreeHead | None = None,
    lsp_public_key: PublicKey | None = None,
) -> bool:
    """The server's exoneration: fold the acked request into a signed head.

    ``journal`` must carry the ack's ``request_hash`` and ``proof`` must be
    a full-chain (non-anchored) fam proof folding the journal to ``head``'s
    root.  ``head`` defaults to the evidence's own head; passing a fresher
    signed head (with ``lsp_public_key`` so its signature can be checked) is
    how the server refutes after including the request late.  Never raises.
    """
    try:
        if head is None:
            head = evidence.sth
        elif lsp_public_key is None or not head.verify(lsp_public_key):
            return False
        if head.is_composite:
            return False
        if head.ledger_uri != evidence.ack.ledger_uri:
            return False
        if head.shard_index != evidence.ack.shard_index:
            return False
        if journal.request_hash != evidence.ack.request_hash:
            return False
        return FamAccumulator.fold_full(journal.tx_hash(), proof) == head.root
    except (KeyError, ValueError, IndexError, TypeError, AttributeError):
        return False
