"""Signed tree heads and non-equivocation evidence (DESIGN.md §16).

The paper's LSP is still trusted in one important way: nothing stops it from
showing client A one chain and client B another ("forking" / equivocation).
The defence, borrowed from certificate-transparency-style systems (GlassDB,
AQUAREUM — see PAPERS.md), is to make the server *commit* to one chain in a
form third parties can compare:

* a :class:`SignedTreeHead` (STH) binds the LSP key to the exact fam state
  ``(epoch, tree_size, live_size, root)`` at a moment in time — one is
  emitted automatically at every epoch close and any client can demand a
  fresh one;
* a :class:`ConsistencyBundle` proves head B append-only-extends head A
  across fam epoch rolls (seal proof + merged-leaf links), so two honest
  heads are always connectable;
* a :class:`ConsistencyAssertion` is the LSP's *signed claim* that two
  head coordinates carry specific roots — refusing to prove a signed claim
  is suspicious, but signing a claim that contradicts a signed head is
  **evidence**;
* :class:`EquivocationEvidence` packages the conflicting signed statements
  into a bundle that :func:`verify_equivocation` checks *offline*: no
  ledger instance, no network — just the LSP public key.

Everything here depends only on crypto/encoding/merkle, so evidence
verifies in a process that has never imported the ledger kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair, PublicKey
from ..encoding import decode, encode
from ..merkle.consistency import ConsistencyProof
from ..merkle.fam import FamAccumulator
from ..merkle.proofs import MembershipProof
from ..merkle.shrubs import ShrubsAccumulator

__all__ = [
    "SignedTreeHead",
    "ConsistencyBundle",
    "ConsistencyAssertion",
    "EquivocationEvidence",
    "SthStore",
    "verify_equivocation",
]

#: ``shard_index`` of a non-sharded ledger's heads.
SOLO_SHARD = -1
#: ``epoch`` marker for a sharded deployment's composite head (a composite
#: head commits the shard map, not a fam tree, so it has no epoch).
COMPOSITE_EPOCH = -1


@dataclass(frozen=True)
class SignedTreeHead:
    """The LSP's signed commitment to one exact fam state.

    ``tree_size`` counts journals (fam jsns); ``live_size`` counts leaves of
    the live epoch tree *including* the merged leaf, which is what the
    consistency machinery operates on.  ``shard_index`` distinguishes the
    per-shard streams of one sharded deployment — shards share the
    deployment URI and LSP key, so without it two sibling shards at equal
    coordinates would read as a fork.

    A sharded deployment's *composite* head carries ``epoch == -1``,
    ``live_size == number of shards``, the composite (shard-map) root, and
    the per-shard head tuples in ``shard_heads`` so the composite root can
    be re-folded by anyone (:meth:`composite_consistent`).
    """

    ledger_uri: str
    epoch: int
    tree_size: int
    live_size: int
    root: Digest
    timestamp: float
    fractal_height: int
    shard_index: int = SOLO_SHARD
    #: Composite heads only: (shard_index, epoch, tree_size, live_size, root)
    #: per shard, in shard order.
    shard_heads: tuple[tuple[int, int, int, int, Digest], ...] = ()
    lsp_signature: Signature | None = None

    # ------------------------------------------------------------- identity

    @property
    def is_composite(self) -> bool:
        return self.epoch == COMPOSITE_EPOCH

    @property
    def coords(self) -> tuple[int, int, int]:
        """The comparable position of this head: (epoch, tree_size, live_size)."""
        return (self.epoch, self.tree_size, self.live_size)

    def same_stream(self, other: "SignedTreeHead") -> bool:
        """True when both heads speak for the same append-only stream."""
        return (
            self.ledger_uri == other.ledger_uri
            and self.shard_index == other.shard_index
            and self.fractal_height == other.fractal_height
        )

    def composite_consistent(self) -> bool:
        """Re-fold ``shard_heads`` and compare with ``root`` (composite only).

        The shard map is a plain Shrubs accumulator over the per-shard roots
        in shard order, so anyone holding this head can recompute the
        composite root with no ledger instance.
        """
        if not self.is_composite:
            return False
        shard_map = ShrubsAccumulator()
        shard_map.extend([bytes(root) for *_coords, root in self.shard_heads])
        return shard_map.root() == self.root

    # -------------------------------------------------------------- signing

    def signing_payload(self) -> bytes:
        return encode(
            {
                "scheme": "repro.sth.v1",
                "ledger_uri": self.ledger_uri,
                "epoch": self.epoch,
                "tree_size": self.tree_size,
                "live_size": self.live_size,
                "root": self.root,
                "timestamp": self.timestamp,
                "fractal_height": self.fractal_height,
                "shard_index": self.shard_index,
                "shard_heads": [list(entry) for entry in self.shard_heads],
            }
        )

    def signed_by(self, lsp_keypair: KeyPair) -> "SignedTreeHead":
        return replace(
            self, lsp_signature=lsp_keypair.sign(sha256(self.signing_payload()))
        )

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Check the LSP's signature.  Never raises."""
        if self.lsp_signature is None:
            return False
        return lsp_public_key.verify(
            sha256(self.signing_payload()), self.lsp_signature
        )

    # ------------------------------------------------------------ wire form

    def to_bytes(self) -> bytes:
        return encode(
            {
                "ledger_uri": self.ledger_uri,
                "epoch": self.epoch,
                "tree_size": self.tree_size,
                "live_size": self.live_size,
                "root": self.root,
                "timestamp": self.timestamp,
                "fractal_height": self.fractal_height,
                "shard_index": self.shard_index,
                "shard_heads": [list(entry) for entry in self.shard_heads],
                "lsp_signature": (
                    self.lsp_signature.to_bytes() if self.lsp_signature else b""
                ),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SignedTreeHead":
        obj = decode(data)
        signature_bytes = bytes(obj["lsp_signature"])
        return cls(
            ledger_uri=obj["ledger_uri"],
            epoch=obj["epoch"],
            tree_size=obj["tree_size"],
            live_size=obj["live_size"],
            root=bytes(obj["root"]),
            timestamp=obj["timestamp"],
            fractal_height=obj["fractal_height"],
            shard_index=obj["shard_index"],
            shard_heads=tuple(
                (int(s), int(e), int(t), int(l), bytes(r))
                for s, e, t, l, r in obj["shard_heads"]
            ),
            lsp_signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )


@dataclass(frozen=True)
class ConsistencyBundle:
    """Append-only link between two signed tree heads across epoch rolls.

    Within one epoch a plain :class:`ConsistencyProof` suffices (``live``).
    Across epochs the bundle chains: ``seal`` proves the old head's epoch
    grew append-only from the head's live size to full capacity (yielding
    ``sealed_root``, the only *claimed* intermediate — the verify needs both
    endpoint roots), then each ``links`` entry is the Rule-1 merged-leaf
    proof whose folded root *derives* the next epoch root, and
    ``final_link`` folds the last derived root into the new head's live
    tree.  Intermediate epoch roots are therefore computed, not trusted.
    """

    old_epoch: int
    old_live_size: int
    new_epoch: int
    new_live_size: int
    live: ConsistencyProof | None = None
    seal: ConsistencyProof | None = None
    sealed_root: Digest | None = None
    links: tuple[MembershipProof, ...] = ()
    final_link: MembershipProof | None = None

    @classmethod
    def build(
        cls,
        fam: FamAccumulator,
        old_epoch: int,
        old_live_size: int,
        new_epoch: int | None = None,
        new_live_size: int | None = None,
    ) -> "ConsistencyBundle":
        """Build the bundle from the server's accumulator.

        ``new_epoch``/``new_live_size`` default to the live head.  Both
        endpoints may be historical — Shrubs interior nodes are immutable,
        so any past head is still provable.
        """
        if new_epoch is None:
            new_epoch = fam.num_epochs - 1
        if new_live_size is None:
            new_live_size = fam.live_size(new_epoch)
        if not 0 <= old_epoch <= new_epoch < fam.num_epochs:
            raise ValueError(
                f"epoch pair ({old_epoch}, {new_epoch}) out of range "
                f"[0, {fam.num_epochs})"
            )
        if old_epoch == new_epoch:
            if not 0 < old_live_size <= new_live_size:
                raise ValueError(
                    f"need 0 < old_live_size <= new_live_size, got "
                    f"({old_live_size}, {new_live_size})"
                )
            if old_live_size == new_live_size:
                return cls(old_epoch, old_live_size, new_epoch, new_live_size)
            return cls(
                old_epoch,
                old_live_size,
                new_epoch,
                new_live_size,
                live=fam.prove_epoch_consistency(
                    old_epoch, old_live_size, new_live_size
                ),
            )
        capacity = fam.epoch_capacity
        seal = fam.prove_epoch_consistency(old_epoch, old_live_size, capacity)
        links = tuple(
            fam.prove_epoch_link(k) for k in range(old_epoch + 1, new_epoch)
        )
        return cls(
            old_epoch,
            old_live_size,
            new_epoch,
            new_live_size,
            seal=seal,
            sealed_root=fam.epoch_root(old_epoch),
            links=links,
            final_link=fam.prove_head_link(new_epoch, new_live_size),
        )

    def verify(self, old: SignedTreeHead, new: SignedTreeHead) -> bool:
        """Check that ``new`` append-only-extends ``old``.  Never raises.

        Checks structure only — callers validate the heads' signatures and
        stream identity separately (the :class:`Witness` does both).
        """
        try:
            return self._verify(old, new)
        except (KeyError, ValueError, IndexError, TypeError):
            return False

    def _verify(self, old: SignedTreeHead, new: SignedTreeHead) -> bool:
        if not old.same_stream(new):
            return False
        if old.is_composite or new.is_composite:
            return False  # composite heads have no epoch tree to connect
        if (old.epoch, old.live_size) != (self.old_epoch, self.old_live_size):
            return False
        if (new.epoch, new.live_size) != (self.new_epoch, self.new_live_size):
            return False
        if (old.epoch, old.live_size) > (new.epoch, new.live_size):
            return False
        if old.tree_size > new.tree_size:
            return False
        if old.epoch == new.epoch:
            if old.live_size == new.live_size:
                return old.tree_size == new.tree_size and old.root == new.root
            if self.live is None:
                return False
            if (self.live.old_size, self.live.new_size) != (
                old.live_size,
                new.live_size,
            ):
                return False
            return self.live.verify(old.root, new.root)
        # Cross-epoch: seal the old epoch, fold merged-leaf links forward.
        capacity = 1 << old.fractal_height
        if self.seal is None or self.sealed_root is None:
            return False
        if (self.seal.old_size, self.seal.new_size) != (old.live_size, capacity):
            return False
        if not self.seal.verify(old.root, self.sealed_root):
            return False
        if len(self.links) != new.epoch - old.epoch - 1:
            return False
        current = self.sealed_root
        for link in self.links:
            if link.leaf_index != 0 or link.tree_size != capacity:
                return False
            current = link.computed_root(current)
        if self.final_link is None:
            return False
        if self.final_link.leaf_index != 0:
            return False
        if self.final_link.tree_size != new.live_size:
            return False
        return self.final_link.computed_root(current) == new.root

    def to_bytes(self) -> bytes:
        return encode(
            {
                "old_epoch": self.old_epoch,
                "old_live_size": self.old_live_size,
                "new_epoch": self.new_epoch,
                "new_live_size": self.new_live_size,
                "live": self.live.to_bytes() if self.live else b"",
                "seal": self.seal.to_bytes() if self.seal else b"",
                "sealed_root": self.sealed_root if self.sealed_root else b"",
                "links": [link.to_bytes() for link in self.links],
                "final_link": self.final_link.to_bytes() if self.final_link else b"",
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ConsistencyBundle":
        obj = decode(data)
        live = bytes(obj["live"])
        seal = bytes(obj["seal"])
        sealed_root = bytes(obj["sealed_root"])
        final_link = bytes(obj["final_link"])
        return cls(
            old_epoch=obj["old_epoch"],
            old_live_size=obj["old_live_size"],
            new_epoch=obj["new_epoch"],
            new_live_size=obj["new_live_size"],
            live=ConsistencyProof.from_bytes(live) if live else None,
            seal=ConsistencyProof.from_bytes(seal) if seal else None,
            sealed_root=sealed_root if sealed_root else None,
            links=tuple(
                MembershipProof.from_bytes(bytes(blob)) for blob in obj["links"]
            ),
            final_link=(
                MembershipProof.from_bytes(final_link) if final_link else None
            ),
        )


@dataclass(frozen=True)
class ConsistencyAssertion:
    """The LSP's *signed claim* that two head coordinates carry these roots.

    Append-only extension to a given size does not determine a unique root,
    so "the server's proof failed" is an alarm, not evidence — a broken
    proof proves nothing about who lied.  An assertion closes that gap: the
    server signs the endpoint roots it claims to connect, and a signed
    assertion whose endpoint contradicts a signed head at the same
    coordinates *is* offline-verifiable equivocation (see
    :class:`EquivocationEvidence`).
    """

    ledger_uri: str
    shard_index: int
    fractal_height: int
    old_epoch: int
    old_tree_size: int
    old_live_size: int
    old_root: Digest
    new_epoch: int
    new_tree_size: int
    new_live_size: int
    new_root: Digest
    timestamp: float
    lsp_signature: Signature | None = None

    def same_stream(self, head: SignedTreeHead) -> bool:
        return (
            self.ledger_uri == head.ledger_uri
            and self.shard_index == head.shard_index
            and self.fractal_height == head.fractal_height
        )

    def matches_old(self, head: SignedTreeHead) -> bool:
        """True when ``head`` sits at this assertion's old coordinates."""
        return self.same_stream(head) and head.coords == (
            self.old_epoch,
            self.old_tree_size,
            self.old_live_size,
        )

    def matches_new(self, head: SignedTreeHead) -> bool:
        return self.same_stream(head) and head.coords == (
            self.new_epoch,
            self.new_tree_size,
            self.new_live_size,
        )

    def signing_payload(self) -> bytes:
        return encode(
            {
                "scheme": "repro.sth-consistency.v1",
                "ledger_uri": self.ledger_uri,
                "shard_index": self.shard_index,
                "fractal_height": self.fractal_height,
                "old_epoch": self.old_epoch,
                "old_tree_size": self.old_tree_size,
                "old_live_size": self.old_live_size,
                "old_root": self.old_root,
                "new_epoch": self.new_epoch,
                "new_tree_size": self.new_tree_size,
                "new_live_size": self.new_live_size,
                "new_root": self.new_root,
                "timestamp": self.timestamp,
            }
        )

    def signed_by(self, lsp_keypair: KeyPair) -> "ConsistencyAssertion":
        return replace(
            self, lsp_signature=lsp_keypair.sign(sha256(self.signing_payload()))
        )

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Check the LSP's signature.  Never raises."""
        if self.lsp_signature is None:
            return False
        return lsp_public_key.verify(
            sha256(self.signing_payload()), self.lsp_signature
        )

    def to_bytes(self) -> bytes:
        return encode(
            {
                "ledger_uri": self.ledger_uri,
                "shard_index": self.shard_index,
                "fractal_height": self.fractal_height,
                "old_epoch": self.old_epoch,
                "old_tree_size": self.old_tree_size,
                "old_live_size": self.old_live_size,
                "old_root": self.old_root,
                "new_epoch": self.new_epoch,
                "new_tree_size": self.new_tree_size,
                "new_live_size": self.new_live_size,
                "new_root": self.new_root,
                "timestamp": self.timestamp,
                "lsp_signature": (
                    self.lsp_signature.to_bytes() if self.lsp_signature else b""
                ),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ConsistencyAssertion":
        obj = decode(data)
        signature_bytes = bytes(obj["lsp_signature"])
        return cls(
            ledger_uri=obj["ledger_uri"],
            shard_index=obj["shard_index"],
            fractal_height=obj["fractal_height"],
            old_epoch=obj["old_epoch"],
            old_tree_size=obj["old_tree_size"],
            old_live_size=obj["old_live_size"],
            old_root=bytes(obj["old_root"]),
            new_epoch=obj["new_epoch"],
            new_tree_size=obj["new_tree_size"],
            new_live_size=obj["new_live_size"],
            new_root=bytes(obj["new_root"]),
            timestamp=obj["timestamp"],
            lsp_signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )


@dataclass(frozen=True)
class EquivocationEvidence:
    """Two conflicting LSP-signed statements — the server forked its ledger.

    Kinds:

    * ``"fork-heads"`` — two signed heads at equal coordinates with
      different roots (the classic CT fork proof);
    * ``"fork-assertion"`` — a signed consistency assertion whose endpoint
      contradicts a signed head at the same coordinates;
    * ``"composite-mismatch"`` — a signed composite head whose embedded
      shard heads do not re-fold to its own composite root;
    * ``"fork-composite"`` — a signed per-shard head conflicting with the
      same shard's entry inside a signed composite head.

    Every kind verifies *offline* against only the LSP public key.
    """

    kind: str
    first: SignedTreeHead
    second: SignedTreeHead | None = None
    assertion: ConsistencyAssertion | None = None
    detail: str = ""

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Standalone check — no ledger, no network.  Never raises."""
        try:
            return self._verify(lsp_public_key)
        except (KeyError, ValueError, IndexError, TypeError):
            return False

    def _verify(self, lsp_public_key: PublicKey) -> bool:
        if not self.first.verify(lsp_public_key):
            return False
        if self.kind == "fork-heads":
            if self.second is None or not self.second.verify(lsp_public_key):
                return False
            return (
                self.first.same_stream(self.second)
                and self.first.coords == self.second.coords
                and self.first.root != self.second.root
            )
        if self.kind == "fork-assertion":
            if self.assertion is None or not self.assertion.verify(lsp_public_key):
                return False
            assertion = self.assertion
            head = self.first
            if assertion.matches_old(head) and assertion.old_root != head.root:
                return True
            if assertion.matches_new(head) and assertion.new_root != head.root:
                return True
            return False
        if self.kind == "composite-mismatch":
            return self.first.is_composite and not self.first.composite_consistent()
        if self.kind == "fork-composite":
            if self.second is None or not self.second.verify(lsp_public_key):
                return False
            shard_head, composite = self.first, self.second
            if not composite.is_composite or shard_head.is_composite:
                return False
            if composite.ledger_uri != shard_head.ledger_uri:
                return False
            if composite.fractal_height != shard_head.fractal_height:
                return False
            for shard, epoch, tree_size, live_size, root in composite.shard_heads:
                if shard != shard_head.shard_index:
                    continue
                if (epoch, tree_size, live_size) == shard_head.coords:
                    return bytes(root) != shard_head.root
            return False
        return False

    def to_bytes(self) -> bytes:
        return encode(
            {
                "kind": self.kind,
                "first": self.first.to_bytes(),
                "second": self.second.to_bytes() if self.second else b"",
                "assertion": self.assertion.to_bytes() if self.assertion else b"",
                "detail": self.detail,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EquivocationEvidence":
        obj = decode(data)
        second = bytes(obj["second"])
        assertion = bytes(obj["assertion"])
        return cls(
            kind=obj["kind"],
            first=SignedTreeHead.from_bytes(bytes(obj["first"])),
            second=SignedTreeHead.from_bytes(second) if second else None,
            assertion=(
                ConsistencyAssertion.from_bytes(assertion) if assertion else None
            ),
            detail=obj["detail"],
        )


def verify_equivocation(
    evidence: EquivocationEvidence, lsp_public_key: PublicKey
) -> bool:
    """Offline verdict on an evidence bundle: True = the LSP equivocated.

    The standalone entry point the gossip/audit tooling hands to third
    parties: it touches only the evidence bytes and the LSP public key.
    """
    return evidence.verify(lsp_public_key)


class SthStore:
    """Append-only log of epoch-close heads, optionally file-backed.

    The on-disk form is a flat sequence of ``4-byte big-endian length +
    head bytes`` records; loading tolerates a torn tail (a crash mid-append
    drops at most the in-flight record, mirroring the journal stream's
    rollback discipline).
    """

    def __init__(self, path=None) -> None:
        from pathlib import Path

        self._path = Path(path) if path is not None else None
        self._heads: list[SignedTreeHead] = []
        if self._path is not None and self._path.exists():
            self._load()

    def _load(self) -> None:
        data = self._path.read_bytes()
        offset = 0
        while offset + 4 <= len(data):
            length = int.from_bytes(data[offset : offset + 4], "big")
            if offset + 4 + length > len(data):
                break  # torn tail: drop the partial record
            try:
                self._heads.append(
                    SignedTreeHead.from_bytes(data[offset + 4 : offset + 4 + length])
                )
            except (KeyError, ValueError, TypeError):
                break  # corrupt record poisons the suffix, keep the prefix
            offset += 4 + length

    def append(self, head: SignedTreeHead) -> None:
        self._heads.append(head)
        if self._path is not None:
            blob = head.to_bytes()
            with open(self._path, "ab") as fh:
                fh.write(len(blob).to_bytes(4, "big") + blob)
                fh.flush()

    def heads(self) -> list[SignedTreeHead]:
        return list(self._heads)

    def latest(self) -> SignedTreeHead | None:
        return self._heads[-1] if self._heads else None

    def for_epoch(self, epoch: int) -> SignedTreeHead | None:
        """The epoch-close head minted when ``epoch`` became the live epoch."""
        for head in reversed(self._heads):
            if head.epoch == epoch:
                return head
        return None

    def range(self, start: int, end: int) -> list[SignedTreeHead]:
        """Stored heads with ``start <= epoch < end``, in emission order."""
        return [head for head in self._heads if start <= head.epoch < end]

    def __len__(self) -> int:
        return len(self._heads)
