"""repro.transparency — non-equivocation layer (DESIGN.md §16).

Signed tree heads, consistency bundles, gossip cross-audit, and censorship
evidence: the subsystem that removes the last "trust me" from the server in
ROADMAP item 4.  Everything verifies offline against the LSP public key:

* :mod:`repro.transparency.sth` — :class:`SignedTreeHead`,
  :class:`ConsistencyBundle`, :class:`ConsistencyAssertion`,
  :class:`EquivocationEvidence`, :func:`verify_equivocation`;
* :mod:`repro.transparency.witness` — the :class:`Witness` gossip store,
  written once against :class:`~repro.session.VerifyingSession`;
* :mod:`repro.transparency.censorship` — :class:`SubmissionAck`,
  :class:`CensorshipEvidence`, :func:`refute_censorship`;
* :mod:`repro.transparency.attacks` — the :class:`ForkingServer` scenario
  double (imported explicitly by the attack suite; not re-exported here
  because it pulls in the whole net stack).
"""

from .censorship import CensorshipEvidence, SubmissionAck, refute_censorship
from .sth import (
    ConsistencyAssertion,
    ConsistencyBundle,
    EquivocationEvidence,
    SignedTreeHead,
    SthStore,
    verify_equivocation,
)
from .witness import Witness, WitnessReport

__all__ = [
    "CensorshipEvidence",
    "ConsistencyAssertion",
    "ConsistencyBundle",
    "EquivocationEvidence",
    "SignedTreeHead",
    "SthStore",
    "SubmissionAck",
    "Witness",
    "WitnessReport",
    "refute_censorship",
    "verify_equivocation",
]
