"""Attack scenarios for the non-equivocation layer (DESIGN.md §16).

Two adversary playbooks are implemented against *real* servers speaking the
real wire protocol, detected by *stock* clients — no test-only hooks on the
honest side:

* :class:`ForkingServer` — the split-view attack.  Ledgers created with the
  same uri derive the same deterministic LSP keypair, so two divergent
  ledgers behind two listeners present one signing identity and two
  histories.  A :class:`~repro.transparency.witness.Witness` auditing both
  listeners through ordinary ``repro.api.connect()`` sessions walks away
  with offline-verifiable :class:`EquivocationEvidence`.

* :class:`CensoringLedgerServer` — the silent-drop attack.  A
  :class:`~repro.net.server.LedgerServer` subclass that acks marked
  requests at admission, *forges a perfectly-signed receipt*, and never
  commits.  The receipt alone convinces the client (it is exactly what an
  honest commit would have produced) — which is the point: only the
  :class:`SubmissionAck` deadline turns the drop into
  :class:`CensorshipEvidence` the server cannot refute.

Each ``run_*`` function plays one scenario end to end and returns a frozen
:class:`ScenarioResult`, in the spirit of :mod:`repro.timeauth.attacks`; the
honest-server scenario is the control: same machinery, zero evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.journal import ClientRequest
from ..core.ledger import Ledger, LedgerConfig
from ..core.receipt import Receipt
from ..crypto.ca import Role
from ..crypto.keys import KeyPair, PublicKey
from ..net.server import LedgerServer, ServerThread
from .censorship import CensorshipEvidence, refute_censorship
from .sth import verify_equivocation
from .witness import Witness, WitnessReport

__all__ = [
    "CensoringLedgerServer",
    "ForkingServer",
    "ScenarioResult",
    "run_censorship",
    "run_fork_equivocation",
    "run_honest_server",
]

#: Member id / deterministic key seed for the scenarios' client identity.
_CLIENT_ID = "alice"
_CLIENT_SEED = "transparency-attacks:alice"


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one adversary (or control) scenario.

    ``detected`` is the headline: did the stock verification machinery
    catch the attack (or, for the control, correctly stay silent)?
    ``evidence_verified`` asserts every collected artifact also verifies
    *offline* against nothing but the LSP public key — evidence a judge
    cannot check convicts nobody.
    """

    scenario: str
    detected: bool
    evidence_kinds: tuple[str, ...]
    evidence_verified: bool
    alarms: tuple[str, ...]
    refutation_succeeded: bool | None = None
    detail: str = ""


def _client_keypair() -> KeyPair:
    return KeyPair.generate(seed=_CLIENT_SEED)


def _build_ledger(uri: str, data_dir: Path, fractal_height: int) -> Ledger:
    ledger = Ledger.create(
        uri,
        config=LedgerConfig(
            uri=uri, data_dir=str(data_dir), fractal_height=fractal_height
        ),
    )
    ledger.registry.register(_CLIENT_ID, Role.USER, _client_keypair().public)
    return ledger


class ForkingServer:
    """Two listeners, one LSP identity, two histories (the split view).

    Both ledgers are created with the same uri, so
    ``KeyPair.generate(seed=f"lsp:{uri}")`` hands them the *same* LSP
    keypair — exactly the capability a compromised or malicious operator
    has.  :meth:`seed` feeds identical pre-signed requests to both forks
    (identical roots, indistinguishable to any single client);
    :meth:`diverge` then commits different payloads at the same tree
    coordinates.  :attr:`address_a`/:attr:`address_b` are what victims
    connect to.
    """

    def __init__(
        self,
        base_dir: str | Path,
        *,
        uri: str = "ledger://forked",
        fractal_height: int = 2,
    ) -> None:
        base = Path(base_dir)
        self.uri = uri
        self.ledger_a = _build_ledger(uri, base / "fork-a", fractal_height)
        self.ledger_b = _build_ledger(uri, base / "fork-b", fractal_height)
        self._nonce = 0
        self._threads: list[ServerThread] = []

    @property
    def lsp_public_key(self) -> PublicKey:
        return self.ledger_a.lsp_public_key

    @property
    def client_keypair(self) -> KeyPair:
        return _client_keypair()

    def _request(self, payload: bytes, clue: str | None) -> ClientRequest:
        self._nonce += 1
        return ClientRequest.build(
            self.uri,
            _CLIENT_ID,
            payload,
            clues=(clue,) if clue else (),
            nonce=self._nonce.to_bytes(8, "big"),
            client_timestamp=self.ledger_a.clock.now(),
        ).signed_by(self.client_keypair)

    def seed(self, count: int, clue: str | None = "SEED") -> None:
        """Commit ``count`` identical requests to both forks."""
        for index in range(count):
            request = self._request(b"seed %d" % index, clue)
            self.ledger_a.append(request)
            self.ledger_b.append(request)

    def diverge(
        self,
        payload_a: bytes,
        payload_b: bytes,
        clue: str | None = "PAY",
    ) -> None:
        """Commit *different* payloads at the same tree coordinates."""
        self.ledger_a.append(self._request(payload_a, clue))
        self.ledger_b.append(self._request(payload_b, clue))

    def start(self) -> None:
        if self._threads:
            return
        self._threads = [ServerThread(self.ledger_a), ServerThread(self.ledger_b)]

    @property
    def address_a(self) -> tuple[str, int]:
        return self._threads[0].address

    @property
    def address_b(self) -> tuple[str, int]:
        return self._threads[1].address

    def close(self) -> None:
        threads, self._threads = self._threads, []
        for thread in threads:
            thread.close()

    def __enter__(self) -> "ForkingServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CensoringLedgerServer(LedgerServer):
    """A server that acks, forges a receipt, and never commits.

    Requests whose payload contains ``censor_marker`` are recorded in
    :attr:`dropped` and answered with a receipt that is *bit-for-bit
    plausible* — correctly LSP-signed, echoing the exact request hash — so
    the stock client's receipt verification passes.  That is the attack's
    sharp edge: without the admission-ack deadline, a dropped request is
    indistinguishable from a committed one until the victim next reads.
    Everything else (honest traffic, reads, transparency ops) passes
    through unchanged, so the server keeps emitting genuine signed heads —
    the very heads that mature the ack into evidence.
    """

    def __init__(self, *args, censor_marker: bytes = b"censor-me", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.censor_marker = censor_marker
        self.dropped: list[ClientRequest] = []

    async def _op_append(self, message: dict) -> dict:
        request = self._decode_request(message.get("request"))
        if self.censor_marker not in request.payload:
            return await super()._op_append(message)
        response: dict = {}
        if message.get("want_ack"):
            response["ack"] = (
                await self._run(self.ledger.issue_ack, request)
            ).to_bytes()
        self.dropped.append(request)
        forged = await self._run(self._forge_receipt, request)
        response["receipt"] = forged.to_bytes()
        return response

    def _forge_receipt(self, request: ClientRequest) -> Receipt:
        ledger = self.ledger
        latest = ledger.latest_receipt
        return Receipt(
            ledger_uri=ledger.config.uri,
            jsn=ledger.size,  # the jsn an honest commit would get next
            request_hash=request.request_hash(),
            tx_hash=request.request_hash(),  # fabricated: nothing was built
            block_hash=latest.block_hash if latest else b"\x00" * 32,
            block_height=latest.block_height if latest else 0,
            ledger_root=ledger.current_root(),
            timestamp=ledger.clock.now(),
        ).signed_by(ledger._lsp_keypair)


# ------------------------------------------------------------- scenarios


def _connect(address: tuple[str, int], *, with_identity: bool = False):
    import repro.api as api  # late: repro.api itself imports this package

    host, port = address
    kwargs: dict = {}
    if with_identity:
        kwargs = {"client_id": _CLIENT_ID, "keypair": _client_keypair()}
    return api.connect(f"ledger://{host}:{port}", **kwargs)


def run_fork_equivocation(
    base_dir: str | Path,
    *,
    seed_appends: int = 6,
) -> ScenarioResult:
    """The split-view attack, detected by a gossiping witness.

    One witness audits both listeners through stock sessions.  The first
    audit (fork A) comes back clean — a forked server is locally flawless.
    The second (fork B) collides: same signed identity, same coordinates,
    different roots.  Every piece of evidence is re-verified offline.
    """
    with ForkingServer(base_dir) as fork:
        fork.seed(seed_appends)
        fork.diverge(b"alice pays bob 10", b"alice pays mallory 10")
        fork.start()
        witness = Witness(fork.lsp_public_key)
        with _connect(fork.address_a) as session_a:
            report_a: WitnessReport = witness.audit(session_a)
        with _connect(fork.address_b) as session_b:
            report_b: WitnessReport = witness.audit(session_b)
        evidence = list(witness.evidence)
        verified = bool(evidence) and all(
            verify_equivocation(ev, fork.lsp_public_key) for ev in evidence
        )
        return ScenarioResult(
            scenario="fork-equivocation",
            detected=bool(evidence),
            evidence_kinds=tuple(ev.kind for ev in evidence),
            evidence_verified=verified,
            alarms=tuple(witness.alarms),
            detail=(
                f"audit A clean={report_a.clean}; audit B found "
                f"{len(report_b.evidence)} evidence / {len(report_b.alarms)} alarms"
            ),
        )


def run_censorship(
    base_dir: str | Path,
    *,
    uri: str = "ledger://censoring",
    fractal_height: int = 2,
    deadline_epochs: int = 1,
) -> ScenarioResult:
    """The acked-then-dropped attack, matured into censorship evidence.

    The victim appends with ``append_acked`` and walks away satisfied —
    receipt and ack both verify.  Honest traffic then rolls the tree past
    the ack's deadline epoch; the victim's next ``get_sth`` plus the kept
    ack form :class:`CensorshipEvidence` that verifies offline, and the
    server — asked to refute with an inclusion proof — cannot.
    """
    ledger = _build_ledger(uri, Path(base_dir) / "censoring", fractal_height)
    thread = ServerThread(ledger, server_cls=CensoringLedgerServer)
    try:
        with _connect(thread.address, with_identity=True) as session:
            receipt, ack = session.append_acked(
                b"please censor-me quietly",
                clue="VICTIM",
                deadline_epochs=deadline_epochs,
            )
            # The forged receipt *passed* client verification — record that;
            # it is why receipts alone cannot prove liveness.
            receipt_fooled = receipt.verify(ledger.lsp_public_key)
            # Honest traffic rolls epochs past the promised deadline.
            capacity = 2**fractal_height
            for index in range((deadline_epochs + 1) * capacity):
                session.append(b"honest filler %d" % index, clue="FILL")
            head = session.get_sth()
            evidence = CensorshipEvidence(ack=ack, sth=head)
            matured = evidence.verify(ledger.lsp_public_key)
        refuted = _attempt_refutation(ledger, evidence)
        return ScenarioResult(
            scenario="censorship",
            detected=matured and not refuted,
            evidence_kinds=("censorship",) if matured else (),
            evidence_verified=matured,
            alarms=(),
            refutation_succeeded=refuted,
            detail=(
                f"forged receipt fooled the client: {receipt_fooled}; "
                f"ack pinned epoch {ack.epoch}, head reached epoch {head.epoch}"
            ),
        )
    finally:
        thread.close()


def run_honest_server(
    base_dir: str | Path,
    *,
    uri: str = "ledger://honest",
    fractal_height: int = 2,
    rounds: int = 3,
    appends_per_round: int = 5,
) -> ScenarioResult:
    """The control: an honest server survives the full gauntlet.

    The same witness machinery audits the server between batches of real
    appends (every consistency pair proven, every assertion checked), and
    an acked append is *refuted* when challenged — the inclusion proof
    folds the acked request into a signed head.  Zero evidence, zero
    alarms, or the detectors are crying wolf.
    """
    ledger = _build_ledger(uri, Path(base_dir) / "honest", fractal_height)
    thread = ServerThread(ledger)
    try:
        witness = Witness(ledger.lsp_public_key)
        reports: list[WitnessReport] = []
        with _connect(thread.address, with_identity=True) as session:
            receipt, ack = session.append_acked(b"acked and kept", clue="KEPT")
            for round_index in range(rounds):
                for index in range(appends_per_round):
                    session.append(
                        b"round %d tx %d" % (round_index, index), clue="HONEST"
                    )
                reports.append(witness.audit(session))
            head = session.get_sth()
        evidence = CensorshipEvidence(ack=ack, sth=head)
        refuted = _attempt_refutation(ledger, evidence)
        clean = all(report.clean for report in reports) and not witness.evidence
        return ScenarioResult(
            scenario="honest-server",
            detected=not clean,
            evidence_kinds=tuple(ev.kind for ev in witness.evidence),
            evidence_verified=all(
                verify_equivocation(ev, ledger.lsp_public_key)
                for ev in witness.evidence
            ),
            alarms=tuple(witness.alarms),
            refutation_succeeded=refuted,
            detail=(
                f"{len(reports)} audit rounds, "
                f"{sum(r.pairs_checked for r in reports)} pairs proven"
            ),
        )
    finally:
        thread.close()


def _attempt_refutation(ledger: Ledger, evidence: CensorshipEvidence) -> bool:
    """The judge's challenge: can the server fold the acked request in?

    Scans the ledger for a journal carrying the ack's request hash and, if
    found, demands a full-chain existence proof to the evidence head's
    root.  An honest server that committed the request refutes; a censoring
    one has nothing to fold.
    """
    target = evidence.ack.request_hash
    for jsn in range(ledger.size):
        journal = ledger.get_journal(jsn)
        if journal.request_hash != target:
            continue
        proof = ledger.get_proof(jsn, anchored=False)
        if refute_censorship(evidence, journal, proof):
            return True
    return False
