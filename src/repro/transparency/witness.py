"""The witness: gossip cross-audit of signed tree heads (DESIGN.md §16).

A witness ingests STHs from any number of sources — its own polling of a
server, heads gossiped by other clients, composite heads of a sharded
deployment — and maintains one invariant per stream: *every pair of heads
it holds must be provably append-only consistent*.  Conflicts produce
typed, offline-verifiable :class:`~repro.transparency.sth.EquivocationEvidence`;
suspicious-but-unprovable behaviour (a refused or failed consistency proof)
produces *alarms*, which is the honest residual of CT-style gossip — a
broken proof identifies a misbehaving server but not which chain lied.

The witness talks to servers exclusively through the
:class:`~repro.session.VerifyingSession` protocol (``get_sth`` /
``get_consistency``), so the same code cross-audits an in-process ledger,
a remote socket, or one shard of a deployment with zero transport branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import obs
from ..crypto.keys import PublicKey
from .sth import ConsistencyAssertion, EquivocationEvidence, SignedTreeHead

if TYPE_CHECKING:
    from ..session import VerifyingSession

__all__ = ["Witness", "WitnessReport"]

#: Stream key for composite heads (they have no meaningful shard index).
_COMPOSITE_KEY = "composite"


@dataclass
class WitnessReport:
    """Outcome of one cross-audit round against one session."""

    heads_seen: int = 0
    pairs_checked: int = 0
    evidence: list[EquivocationEvidence] = field(default_factory=list)
    alarms: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.evidence and not self.alarms

    def to_dict(self) -> dict:
        return {
            "heads_seen": self.heads_seen,
            "pairs_checked": self.pairs_checked,
            "evidence": [
                {"kind": ev.kind, "detail": ev.detail} for ev in self.evidence
            ],
            "alarms": list(self.alarms),
            "clean": self.clean,
        }


class Witness:
    """Cross-audit store for one LSP identity.

    ``lsp_public_key`` is the out-of-band trust anchor (pinned at first
    contact or distributed like a CA root); heads failing its signature are
    discarded with an alarm, never stored — an unsigned "conflict" proves
    nothing.
    """

    def __init__(self, lsp_public_key: PublicKey) -> None:
        self.lsp_public_key = lsp_public_key
        # (ledger_uri, shard_index | "composite") -> heads sorted by coords.
        self._heads: dict[tuple, list[SignedTreeHead]] = {}
        # Adjacent pairs already proven consistent: (stream key, old, new).
        self._verified: set[tuple] = set()
        self.evidence: list[EquivocationEvidence] = []
        self.alarms: list[str] = []

    # -------------------------------------------------------------- ingest

    def _key(self, head: SignedTreeHead) -> tuple:
        if head.is_composite:
            return (head.ledger_uri, _COMPOSITE_KEY)
        return (head.ledger_uri, head.shard_index)

    def ingest(self, head: SignedTreeHead) -> EquivocationEvidence | None:
        """Add one head; returns fresh equivocation evidence, if any.

        Checks the signature, dedupes, and runs every offline conflict
        check the new head enables (fork-heads, composite refold, composite
        vs per-shard cross-checks).  Consistency *proofs* between distinct
        coordinates need a server — see :meth:`audit`.
        """
        if not head.verify(self.lsp_public_key):
            self._alarm(
                f"discarded head for {head.ledger_uri!r} "
                f"(shard {head.shard_index}): bad LSP signature"
            )
            return None
        key = self._key(head)
        stored = self._heads.setdefault(key, [])
        if any(existing == head for existing in stored):
            return None
        obs.inc("transparency.witness.heads")
        first_conflict: EquivocationEvidence | None = None
        if head.is_composite and not head.composite_consistent():
            first_conflict = self._record(
                EquivocationEvidence(
                    kind="composite-mismatch",
                    first=head,
                    detail=(
                        f"composite head at tree_size {head.tree_size} does "
                        f"not re-fold from its own shard heads"
                    ),
                )
            )
        for existing in stored:
            if existing.coords == head.coords and existing.root != head.root:
                conflict = self._record(
                    EquivocationEvidence(
                        kind="fork-heads",
                        first=existing,
                        second=head,
                        detail=(
                            f"two signed heads at coords {head.coords} with "
                            f"different roots ({head.ledger_uri!r}, shard "
                            f"{head.shard_index})"
                        ),
                    )
                )
                first_conflict = first_conflict or conflict
        first_conflict = first_conflict or self._cross_check_composites(head)
        stored.append(head)
        stored.sort(key=lambda h: h.coords)
        return first_conflict

    def _cross_check_composites(
        self, head: SignedTreeHead
    ) -> EquivocationEvidence | None:
        """Compare per-shard heads with shard entries inside composites."""
        found: EquivocationEvidence | None = None
        if head.is_composite:
            shard_heads = [
                h
                for (uri, shard), heads in self._heads.items()
                if uri == head.ledger_uri and shard != _COMPOSITE_KEY
                for h in heads
            ]
            for shard_head in shard_heads:
                conflict = self._composite_conflict(shard_head, head)
                found = found or conflict
        else:
            for composite in self._heads.get(
                (head.ledger_uri, _COMPOSITE_KEY), []
            ):
                conflict = self._composite_conflict(head, composite)
                found = found or conflict
        return found

    def _composite_conflict(
        self, shard_head: SignedTreeHead, composite: SignedTreeHead
    ) -> EquivocationEvidence | None:
        if composite.fractal_height != shard_head.fractal_height:
            return None
        for shard, epoch, tree_size, live_size, root in composite.shard_heads:
            if shard != shard_head.shard_index:
                continue
            if (epoch, tree_size, live_size) != shard_head.coords:
                continue
            if bytes(root) != shard_head.root:
                return self._record(
                    EquivocationEvidence(
                        kind="fork-composite",
                        first=shard_head,
                        second=composite,
                        detail=(
                            f"shard {shard_head.shard_index} head at coords "
                            f"{shard_head.coords} conflicts with the same "
                            f"entry inside a signed composite head"
                        ),
                    )
                )
        return None

    def observe_assertion(
        self, assertion: ConsistencyAssertion
    ) -> EquivocationEvidence | None:
        """Check a signed consistency assertion against every stored head.

        A validly-signed assertion whose endpoint coordinates match a
        stored signed head but claim a different root is form-2 evidence:
        the server signed two contradictory statements.
        """
        if not assertion.verify(self.lsp_public_key):
            self._alarm(
                f"discarded consistency assertion for "
                f"{assertion.ledger_uri!r}: bad LSP signature"
            )
            return None
        for head in self._heads.get(
            (assertion.ledger_uri, assertion.shard_index), []
        ):
            mismatch = (
                assertion.matches_old(head) and assertion.old_root != head.root
            ) or (assertion.matches_new(head) and assertion.new_root != head.root)
            if mismatch:
                return self._record(
                    EquivocationEvidence(
                        kind="fork-assertion",
                        first=head,
                        assertion=assertion,
                        detail=(
                            f"signed assertion contradicts the signed head "
                            f"at coords {head.coords} "
                            f"({head.ledger_uri!r}, shard {head.shard_index})"
                        ),
                    )
                )
        return None

    # --------------------------------------------------------------- audit

    def audit(self, session: "VerifyingSession") -> WitnessReport:
        """One cross-audit round: pull the live head, prove every gap.

        Ingests the session's current head, then demands a consistency
        bundle + assertion for every adjacent, not-yet-verified pair of
        stored heads on that stream.  Failed or refused proofs raise
        alarms; contradictory signed statements become evidence.
        """
        report = WitnessReport()
        before_evidence = len(self.evidence)
        before_alarms = len(self.alarms)
        try:
            head = session.get_sth()
        except Exception as exc:  # noqa: BLE001 - any transport failure is an alarm
            self._alarm(f"session refused get_sth: {exc}")
            return self._fill(report, before_evidence, before_alarms)
        report.heads_seen += 1
        self.ingest(head)
        for key in list(self._keys_for(head)):
            heads = self._heads.get(key, [])
            for old, new in zip(heads, heads[1:]):
                if old.is_composite or (key, old.coords, new.coords) in self._verified:
                    continue
                report.pairs_checked += 1
                self._check_pair(session, key, old, new)
        return self._fill(report, before_evidence, before_alarms)

    def _keys_for(self, head: SignedTreeHead):
        yield self._key(head)
        if head.is_composite:
            # A composite head pull may have revealed nothing checkable,
            # but its per-shard streams might still have unverified gaps
            # only if their heads came from this same session — leave
            # per-shard streams to their own sessions.
            return

    def _check_pair(
        self,
        session: "VerifyingSession",
        key: tuple,
        old: SignedTreeHead,
        new: SignedTreeHead,
    ) -> None:
        try:
            bundle, assertion = session.get_consistency(old, new)
        except Exception as exc:  # noqa: BLE001 - refusal is the CT residual
            self._alarm(
                f"server refused consistency proof between coords "
                f"{old.coords} and {new.coords}: {exc}"
            )
            return
        if assertion is not None:
            self.observe_assertion(assertion)
        if bundle is None or not bundle.verify(old, new):
            self._alarm(
                f"consistency proof between coords {old.coords} and "
                f"{new.coords} failed for {old.ledger_uri!r} "
                f"(shard {old.shard_index})"
            )
            return
        self._verified.add((key, old.coords, new.coords))

    # ----------------------------------------------------------- internals

    def _record(self, evidence: EquivocationEvidence) -> EquivocationEvidence:
        self.evidence.append(evidence)
        obs.inc("transparency.witness.evidence")
        return evidence

    def _alarm(self, message: str) -> None:
        self.alarms.append(message)
        obs.inc("transparency.witness.alarms")

    def _fill(
        self, report: WitnessReport, before_evidence: int, before_alarms: int
    ) -> WitnessReport:
        report.evidence = self.evidence[before_evidence:]
        report.alarms = self.alarms[before_alarms:]
        return report

    def heads(self, ledger_uri: str, shard_index: int = -1) -> list[SignedTreeHead]:
        """Stored heads for one stream, sorted by coordinates."""
        return list(self._heads.get((ledger_uri, shard_index), []))

    @property
    def head_count(self) -> int:
        return sum(len(heads) for heads in self._heads.values())
