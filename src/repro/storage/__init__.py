"""Storage substrate: append-only streams and KV node stores."""

from .checksum import crc32c
from .kv import CachedKVStore, KeyNotFoundError, KVStore, MemoryKVStore
from .pagestore import PageCorruptionError, PagedNodeStore
from .stream import (
    FileStream,
    MemoryStream,
    OpenReport,
    RecordErasedError,
    Stream,
    StreamCorruptionError,
    StreamError,
)

__all__ = [
    "CachedKVStore",
    "KeyNotFoundError",
    "KVStore",
    "MemoryKVStore",
    "PageCorruptionError",
    "PagedNodeStore",
    "FileStream",
    "MemoryStream",
    "OpenReport",
    "RecordErasedError",
    "Stream",
    "StreamCorruptionError",
    "StreamError",
    "crc32c",
]
