"""Storage substrate: append-only streams and KV node stores."""

from .kv import CachedKVStore, KeyNotFoundError, KVStore, MemoryKVStore
from .stream import FileStream, MemoryStream, RecordErasedError, Stream, StreamError

__all__ = [
    "CachedKVStore",
    "KeyNotFoundError",
    "KVStore",
    "MemoryKVStore",
    "FileStream",
    "MemoryStream",
    "RecordErasedError",
    "Stream",
    "StreamError",
]
