"""Paged on-disk node store — the persistent bottom of the trie (§IV-B2).

The paper keeps "a configurable top layers cache in memory ... bottom layers
including the leaf nodes are stored on disk persistently".  This module is
that disk: a :class:`KVStore` that groups content-addressed Merkle nodes
into immutable *page files*, fronted by an LRU page cache of mmap'd pages.

Design (DESIGN.md §13):

* **Write-behind batching.**  ``put`` lands in a dirty buffer; ``flush()``
  packs the buffer into one or more new page files.  The ledger calls
  ``flush`` at block-commit boundaries, so node persistence rides the same
  cadence as block sealing and a crash can only lose nodes that the journal
  stream can deterministically regenerate (content-addressed puts replay to
  identical pages-worth of state).
* **Page commit rides the §9 contract.**  A page is written to a ``.tmp``
  sibling, flushed, fsync'd, then atomically renamed into place and the
  directory fsync'd.  A torn page write therefore leaves only an ignored
  ``.tmp``; a visible ``page-*.pg`` is complete by construction.
* **Checksummed, self-validating pages.**  The fixed header carries CRC32C
  over itself, over the index section, and over the value blob.  Header and
  index are verified at open (corruption refuses the store rather than
  serving garbage); the blob CRC is verified lazily the first time a page
  is faulted into the cache, which keeps open() O(#pages · index) without
  ever trusting unchecked bytes.
* **mmap-backed reads.**  A page faults in as one ``mmap`` mapping; value
  reads are zero-copy slices.  The LRU page cache bounds resident mappings
  to ``cache_pages``.
* **Deletes are logical.**  ``delete`` drops the key from the live index and
  queues a durable tombstone for the next flush; ``compact()`` rewrites the
  live set into fresh pages and unlinks the old generation.

Page file format (all integers big-endian)::

    header   = magic "LDBPAGE1" | count u32 | index_len u32 | blob_len u32
             | index_crc u32 | blob_crc u32 | header_crc u32       (32 bytes)
    index    = count * ( key_len u16 | key | value_len u32 )
    blob     = concatenated values, in index order

``value_len == 0xFFFFFFFF`` marks a tombstone (no blob bytes).  Page files
are numbered monotonically; at open they are replayed in order, so later
pages (including compaction output) shadow earlier ones.
"""

from __future__ import annotations

import mmap
import os
import struct
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterator

from .. import obs
from .checksum import crc32c
from .kv import KeyNotFoundError, KVStore
from .stream import StreamCorruptionError

__all__ = ["PagedNodeStore", "PageCorruptionError", "PAGE_MAGIC"]

PAGE_MAGIC = b"LDBPAGE1"
_HEADER = struct.Struct(">8sIIIIII")
_KEY_LEN = struct.Struct(">H")
_VAL_LEN = struct.Struct(">I")
_TOMBSTONE = 0xFFFFFFFF
_PAGE_GLOB = "page-*.pg"


class PageCorruptionError(StreamCorruptionError):
    """A page file failed its magic or checksum validation (bit rot, torn
    metadata, outside tampering).  The store refuses to serve from it; the
    ledger-level open falls back to a full stream rebuild."""

    def __init__(self, reason: str) -> None:
        # The parent's (offset, reason) shape is record-oriented; pages are
        # whole files, so the reason string names the file instead.
        Exception.__init__(self, f"page corrupt: {reason}")
        self.offset = -1
        self.reason = reason
        self.path = None


class _Page:
    """Metadata for one committed page file (values stay on disk)."""

    __slots__ = ("number", "path", "blob_start", "blob_len", "blob_crc", "count", "index_crc")

    def __init__(self, number: int, path: Path, blob_start: int, blob_len: int,
                 blob_crc: int, count: int, index_crc: int) -> None:
        self.number = number
        self.path = path
        self.blob_start = blob_start
        self.blob_len = blob_len
        self.blob_crc = blob_crc
        self.count = count
        self.index_crc = index_crc


class PagedNodeStore(KVStore):
    """On-disk page-organized node store with an LRU page cache.

    ``file_factory`` (same contract as :class:`~repro.storage.stream.FileStream`)
    wraps the raw ``.tmp`` handle during page writes so the §9 fault harness
    can inject crashes into the page-commit path.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        cache_pages: int = 64,
        page_bytes: int = 64 * 1024,
        file_factory: Callable | None = None,
    ) -> None:
        if cache_pages < 1:
            raise ValueError("cache_pages must be >= 1")
        if page_bytes < 1:
            raise ValueError("page_bytes must be >= 1")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._cache_pages = cache_pages
        self._page_bytes = page_bytes
        self._file_factory = file_factory
        self._dirty: dict[bytes, bytes] = {}
        self._pending_tombstones: set[bytes] = set()
        # key -> (page_number, offset_in_blob, value_len)
        self._index: dict[bytes, tuple[int, int, int]] = {}
        self._pages: dict[int, _Page] = {}
        self._mmaps: OrderedDict[int, mmap.mmap] = OrderedDict()
        self._next_page = 0
        # Benchmark-facing counters (live even when obs is disabled).
        self.cache_hits = 0
        self.cache_misses = 0
        self.dirty_hits = 0
        self.backend_reads = 0
        self.page_loads = 0
        self.flushes = 0
        self.pages_written = 0
        self.bytes_written = 0
        self._open_scan()

    # ------------------------------------------------------------- open scan

    def _open_scan(self) -> None:
        """Build the live index from committed pages; sweep torn ``.tmp``s."""
        with obs.span("pagestore.open_scan") as sp:
            for leftover in self._dir.glob(_PAGE_GLOB + ".tmp"):
                leftover.unlink()  # torn page commit: never became visible
            numbered = []
            for path in self._dir.glob(_PAGE_GLOB):
                try:
                    number = int(path.stem.split("-", 1)[1])
                except (IndexError, ValueError):
                    raise PageCorruptionError(f"unrecognised page file name: {path.name}")
                numbered.append((number, path))
            for number, path in sorted(numbered):
                self._scan_page(number, path)
                self._next_page = max(self._next_page, number + 1)
            sp.add("pages", len(numbered))

    def _scan_page(self, number: int, path: Path) -> None:
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise PageCorruptionError(f"{path.name}: truncated page header")
            magic, count, index_len, blob_len, index_crc, blob_crc, header_crc = (
                _HEADER.unpack(header)
            )
            if magic != PAGE_MAGIC:
                raise PageCorruptionError(f"{path.name}: bad page magic")
            if crc32c(header[:-4]) != header_crc:
                raise PageCorruptionError(f"{path.name}: page header checksum mismatch")
            index_bytes = handle.read(index_len)
        if len(index_bytes) != index_len:
            raise PageCorruptionError(f"{path.name}: truncated page index")
        if crc32c(index_bytes) != index_crc:
            raise PageCorruptionError(f"{path.name}: page index checksum mismatch")
        if path.stat().st_size != _HEADER.size + index_len + blob_len:
            raise PageCorruptionError(f"{path.name}: page size mismatch")
        page = _Page(number, path, _HEADER.size + index_len, blob_len,
                     blob_crc, count, index_crc)
        offset = 0
        cursor = 0
        for _ in range(count):
            (key_len,) = _KEY_LEN.unpack_from(index_bytes, cursor)
            cursor += _KEY_LEN.size
            key = index_bytes[cursor:cursor + key_len]
            cursor += key_len
            (value_len,) = _VAL_LEN.unpack_from(index_bytes, cursor)
            cursor += _VAL_LEN.size
            if value_len == _TOMBSTONE:
                self._index.pop(key, None)
            else:
                self._index[key] = (number, offset, value_len)
                offset += value_len
        if offset != blob_len:
            raise PageCorruptionError(f"{path.name}: index does not cover blob")
        self._pages[number] = page

    # ------------------------------------------------------------ KV surface

    def get(self, key: bytes) -> bytes:
        obs.inc("pagestore.read")
        value = self._dirty.get(key)
        if value is not None:
            self.dirty_hits += 1
            return value
        entry = self._index.get(key)
        if entry is None:
            raise KeyNotFoundError(key)
        self.backend_reads += 1
        return self._read_committed(entry)

    def _read_committed(self, entry: tuple[int, int, int]) -> bytes:
        number, offset, length = entry
        page_map = self._mmaps.get(number)
        if page_map is not None:
            self._mmaps.move_to_end(number)
            self.cache_hits += 1
            obs.inc("pagestore.cache.hit")
        else:
            self.cache_misses += 1
            obs.inc("pagestore.cache.miss")
            page_map = self._load_page(number)
        start = self._pages[number].blob_start + offset
        return bytes(page_map[start:start + length])

    def put(self, key: bytes, value: bytes) -> None:
        if len(key) > 0xFFFF:
            raise ValueError("key too long for page index (max 65535 bytes)")
        self._pending_tombstones.discard(key)
        if key not in self._dirty:
            entry = self._index.get(key)
            if entry is not None and entry[2] == len(value):
                try:
                    committed = self._read_committed(entry)
                except PageCorruptionError:
                    # A rotted page must not block the overwrite: the fresh
                    # value shadows the damaged entry at the next flush.
                    committed = None
                if committed == value:
                    # Content-addressed dedupe: re-putting a node that is
                    # already durable (same digest, same bytes) is a no-op, so
                    # replayed deltas never bloat pages with duplicates.
                    return
        self._dirty[key] = value

    def delete(self, key: bytes) -> None:
        found = False
        if key in self._dirty:
            del self._dirty[key]
            found = True
        if key in self._index:
            del self._index[key]
            self._pending_tombstones.add(key)
            found = True
        if not found:
            raise KeyNotFoundError(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._dirty or key in self._index

    def __len__(self) -> int:
        extra = sum(1 for key in self._dirty if key not in self._index)
        return len(self._index) + extra

    def keys(self) -> Iterator[bytes]:
        seen = list(self._dirty)
        yield from seen
        dirty = self._dirty
        for key in list(self._index):
            if key not in dirty:
                yield key

    # ----------------------------------------------------------- page faults

    def _load_page(self, number: int) -> mmap.mmap:
        page = self._pages[number]
        self.page_loads += 1
        obs.inc("pagestore.page_load")
        with open(page.path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        blob = mapped[page.blob_start:page.blob_start + page.blob_len]
        if crc32c(blob) != page.blob_crc:
            mapped.close()
            raise PageCorruptionError(f"{page.path.name}: page blob checksum mismatch")
        self._mmaps[number] = mapped
        while len(self._mmaps) > self._cache_pages:
            _evicted, old = self._mmaps.popitem(last=False)
            old.close()
            obs.inc("pagestore.cache.evict")
        return mapped

    def _drop_mapping(self, number: int) -> None:
        mapped = self._mmaps.pop(number, None)
        if mapped is not None:
            mapped.close()

    # ---------------------------------------------------------------- flush

    def flush(self) -> int:
        """Persist the dirty buffer as new page files; returns pages written.

        Each page commit is tmp -> flush -> fsync -> rename -> dir fsync, so
        a crash at any point leaves every previously visible page intact and
        at worst an ignorable ``.tmp``.
        """
        if not self._dirty and not self._pending_tombstones:
            return 0
        with obs.span("pagestore.flush") as sp:
            batches = self._plan_pages()
            written = 0
            for batch in batches:
                self._write_page(batch)
                written += 1
            self.flushes += 1
            sp.add("pages", written)
            sp.add("nodes", len(self._dirty))
            self._dirty.clear()
            self._pending_tombstones.clear()
            return written

    def _plan_pages(self) -> list[list[tuple[bytes, bytes | None]]]:
        """Split the dirty buffer into page-sized batches (tombstones first)."""
        entries: list[tuple[bytes, bytes | None]] = [
            (key, None) for key in sorted(self._pending_tombstones)
        ]
        entries.extend(self._dirty.items())
        batches: list[list[tuple[bytes, bytes | None]]] = []
        current: list[tuple[bytes, bytes | None]] = []
        blob_size = 0
        for key, value in entries:
            length = len(value) if value is not None else 0
            if current and blob_size + length > self._page_bytes:
                batches.append(current)
                current = []
                blob_size = 0
            current.append((key, value))
            blob_size += length
        if current:
            batches.append(current)
        return batches

    def _write_page(self, entries: list[tuple[bytes, bytes | None]]) -> None:
        number = self._next_page
        index_parts: list[bytes] = []
        blob_parts: list[bytes] = []
        offset = 0
        for key, value in entries:
            length = _TOMBSTONE if value is None else len(value)
            index_parts.append(_KEY_LEN.pack(len(key)) + key + _VAL_LEN.pack(length))
            if value is not None:
                blob_parts.append(value)
                offset += len(value)
        index_bytes = b"".join(index_parts)
        blob = b"".join(blob_parts)
        body = _HEADER.pack(
            PAGE_MAGIC, len(entries), len(index_bytes), len(blob),
            crc32c(index_bytes), crc32c(blob), 0,
        )
        header = body[:-4] + struct.pack(">I", crc32c(body[:-4]))
        path = self._page_path(number)
        tmp = path.with_name(path.name + ".tmp")
        raw = open(tmp, "wb")
        handle = self._file_factory(raw) if self._file_factory is not None else raw
        try:
            handle.write(header + index_bytes + blob)
            handle.flush()
            if hasattr(handle, "fsync"):
                handle.fsync()
            else:
                os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(tmp, path)
        self._fsync_dir()
        # Only now — after the rename is durable — admit the page to the index.
        page = _Page(number, path, _HEADER.size + len(index_bytes), len(blob),
                     crc32c(blob), len(entries), crc32c(index_bytes))
        self._pages[number] = page
        self._next_page = number + 1
        offset = 0
        for key, value in entries:
            if value is None:
                self._index.pop(key, None)
            else:
                self._index[key] = (number, offset, len(value))
                offset += len(value)
        self.pages_written += 1
        self.bytes_written += len(header) + len(index_bytes) + len(blob)
        obs.inc("pagestore.pages_written")

    def _page_path(self, number: int) -> Path:
        return self._dir / f"page-{number:08d}.pg"

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # -------------------------------------------------------------- compact

    def compact(self, live_keys: set[bytes] | None = None) -> dict:
        """Rewrite the live set into fresh pages and unlink the old ones.

        With ``live_keys`` (e.g. the node set reachable from a trusted MPT
        root) only those keys survive — unreachable nodes are garbage from
        superseded trie paths and are dropped.  Crash-safe: the new
        generation commits page-by-page before any old file is unlinked, and
        page replay order means a half-finished compaction merely leaves
        redundant (identical) entries behind.
        """
        self.flush()
        before_pages = len(self._pages)
        before_entries = len(self._index)
        before_bytes = sum(
            page.blob_start + page.blob_len for page in self._pages.values()
        )
        keep: list[tuple[bytes, bytes]] = []
        for key in list(self._index):
            if live_keys is not None and key not in live_keys:
                continue
            keep.append((key, self.get(key)))
        old_numbers = list(self._pages)
        self._index.clear()
        self._dirty = dict(keep)
        self._pending_tombstones.clear()
        self.flush()
        for number in old_numbers:
            self._drop_mapping(number)
            page = self._pages.pop(number)
            page.path.unlink()
        self._fsync_dir()
        after_bytes = sum(
            page.blob_start + page.blob_len for page in self._pages.values()
        )
        stats = {
            "pages_before": before_pages,
            "pages_after": len(self._pages),
            "entries_before": before_entries,
            "entries_after": len(self._index),
            "bytes_before": before_bytes,
            "bytes_after": after_bytes,
        }
        obs.inc("pagestore.compactions")
        return stats

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush outstanding writes and drop every cached mapping."""
        self.flush()
        for number in list(self._mmaps):
            self._drop_mapping(number)

    def __enter__(self) -> "PagedNodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- manifest

    def manifest(self) -> list[tuple[str, int, int]]:
        """(file name, entry count, index crc) per page — snapshot material."""
        return [
            (page.path.name, page.count, page.index_crc)
            for _number, page in sorted(self._pages.items())
        ]

    def verify_manifest(self, manifest: list[tuple[str, int, int]]) -> bool:
        """True when every manifested page is still present and unchanged.

        Pages written *after* the manifest was taken are fine (they hold
        post-snapshot nodes); a missing or altered manifested page means the
        snapshot's node set cannot be trusted.
        """
        by_name = {page.path.name: page for page in self._pages.values()}
        for name, count, index_crc in manifest:
            page = by_name.get(str(name))
            if page is None or page.count != count or page.index_crc != index_crc:
                return False
        return True

    # ----------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Counter snapshot for ``python -m repro stats`` and benchmarks."""
        total = self.cache_hits + self.cache_misses
        return {
            "pages": len(self._pages),
            "entries": len(self._index),
            "dirty_nodes": len(self._dirty),
            "cached_pages": len(self._mmaps),
            "cache_pages_limit": self._cache_pages,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / total) if total else 0.0,
            "dirty_hits": self.dirty_hits,
            "backend_reads": self.backend_reads,
            "page_loads": self.page_loads,
            "flushes": self.flushes,
            "pages_written": self.pages_written,
            "bytes_written": self.bytes_written,
        }
