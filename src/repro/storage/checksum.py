"""CRC32C (Castagnoli) checksums for the stream file system.

The storage layer checksums every record so that silent corruption — bit rot,
misdirected writes, truncation by an outside party — is *detected* rather
than replayed into the verification structures.  CRC32C is the conventional
choice for storage software (iSCSI, ext4, btrfs, LevelDB/RocksDB log format)
because of its good burst-error behaviour and ubiquitous hardware support.

CPython ships no CRC32C primitive, so this module carries a table-driven
software implementation (the classic reflected algorithm, polynomial
``0x1EDC6F41``).  If a native ``crc32c`` extension happens to be importable
it is preferred transparently; the pure-Python fallback keeps the repository
dependency-free.  Throughput of the fallback is ~5 MB/s — irrelevant next to
the fsync and ECDSA costs that dominate a commit.
"""

from __future__ import annotations

__all__ = ["crc32c"]

_CASTAGNOLI_POLY = 0x82F63B78  # 0x1EDC6F41 bit-reflected


def _build_table() -> tuple[int, ...]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _CASTAGNOLI_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def _crc32c_pure(data: bytes, value: int = 0) -> int:
    """Reflected table-driven CRC32C; ``value`` chains partial computations."""
    crc = value ^ 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # pragma: no cover - exercised only where the extension exists
    from crc32c import crc32c as _crc32c_native  # type: ignore[import-not-found]

    def crc32c(data: bytes, value: int = 0) -> int:
        """CRC32C of ``data`` (native extension)."""
        return _crc32c_native(data, value)

except ImportError:
    crc32c = _crc32c_pure


# Known-answer vectors (RFC 3720 appendix B.4) guard both implementations;
# checked at import (not via assert: must survive ``python -O``) so a broken
# table or extension can never silently corrupt a stream.
if (
    crc32c(b"") != 0x00000000
    or crc32c(b"123456789") != 0xE3069283
    or crc32c(b"\x00" * 32) != 0x8A9136AA
):  # pragma: no cover
    raise RuntimeError("crc32c self-test failed; refusing to run with a bad checksum")
