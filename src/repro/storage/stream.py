"""Append-only record streams — LedgerDB's stream file system substrate.

LedgerDB "implements a stream file system ... to manage journals" (§II-C).
A :class:`Stream` is an append-only sequence of byte records addressed by a
dense integer offset (the journal stream is addressed by jsn).  Two backends
are provided:

* :class:`MemoryStream` — list-backed, used by tests and benchmarks;
* :class:`FileStream`  — length-prefixed records in a single file with an
  in-memory offset index, demonstrating durable operation.

Streams support *erasure* of individual records (required by occult's
asynchronous data reorganisation and by purge): an erased slot keeps its
offset but its payload is gone.  Erasure is exposed separately from append so
that the ledger layer can enforce its multi-signature prerequisites first.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from typing import Iterator

__all__ = ["Stream", "MemoryStream", "FileStream", "StreamError", "RecordErasedError"]


class StreamError(Exception):
    """Raised on out-of-range access or backend corruption."""


class RecordErasedError(StreamError):
    """Raised when reading a record that has been physically erased."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"record at offset {offset} has been erased")
        self.offset = offset


class Stream(ABC):
    """Abstract append-only record stream."""

    @abstractmethod
    def append(self, record: bytes) -> int:
        """Append ``record``; return its offset (0-based, dense)."""

    def append_many(self, records: list[bytes]) -> list[int]:
        """Append several records; return their offsets, in order.

        The base implementation loops over :meth:`append`.  Backends with
        per-append durability costs (flush/fsync) override this to batch
        the I/O — the group-commit half of ``Ledger.append_batch``.
        """
        return [self.append(record) for record in records]

    @abstractmethod
    def read(self, offset: int) -> bytes:
        """Read the record at ``offset``.

        Raises :class:`StreamError` for out-of-range offsets and
        :class:`RecordErasedError` for erased slots.
        """

    @abstractmethod
    def erase(self, offset: int) -> None:
        """Physically erase the record at ``offset`` (idempotent)."""

    @abstractmethod
    def is_erased(self, offset: int) -> bool:
        """True if the slot exists but its payload was erased."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of slots ever appended (erased slots still count)."""

    def iter_records(self, start: int = 0, stop: int | None = None) -> Iterator[tuple[int, bytes]]:
        """Yield ``(offset, record)`` for live records in ``[start, stop)``."""
        end = len(self) if stop is None else min(stop, len(self))
        for offset in range(start, end):
            if not self.is_erased(offset):
                yield offset, self.read(offset)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < len(self):
            raise StreamError(f"offset {offset} out of range [0, {len(self)})")


class MemoryStream(Stream):
    """List-backed stream; erased slots hold ``None``."""

    def __init__(self) -> None:
        self._records: list[bytes | None] = []

    def append(self, record: bytes) -> int:
        self._records.append(bytes(record))
        return len(self._records) - 1

    def read(self, offset: int) -> bytes:
        self._check_offset(offset)
        record = self._records[offset]
        if record is None:
            raise RecordErasedError(offset)
        return record

    def erase(self, offset: int) -> None:
        self._check_offset(offset)
        self._records[offset] = None

    def is_erased(self, offset: int) -> bool:
        self._check_offset(offset)
        return self._records[offset] is None

    def __len__(self) -> int:
        return len(self._records)


# FileStream record layout: [u32 length][u8 erased-flag][payload bytes].
_HEADER = struct.Struct(">IB")
_FLAG_LIVE = 0
_FLAG_ERASED = 1


class FileStream(Stream):
    """Durable stream of length-prefixed records in one file.

    Erasure overwrites the payload bytes with zeros and flips the record's
    flag byte in place, so offsets of later records are unaffected.

    With ``durable=True`` every append (and erase) is followed by an
    ``fsync``, making commits crash-safe at ~100 us a piece; ``append_many``
    then issues a *single* fsync for the whole batch — the classic WAL
    group-commit amortisation.
    """

    def __init__(self, path: str | os.PathLike[str], *, durable: bool = False) -> None:
        self._path = os.fspath(path)
        self._durable = durable
        # Positions (file offsets) of each record header, rebuilt on open.
        self._positions: list[int] = []
        self._erased: list[bool] = []
        mode = "r+b" if os.path.exists(self._path) else "w+b"
        self._file = open(self._path, mode)
        self._load_index()

    def _load_index(self) -> None:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(0)
        position = 0
        while position < size:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise StreamError(f"truncated record header at {position} in {self._path}")
            length, flag = _HEADER.unpack(header)
            self._positions.append(position)
            self._erased.append(flag == _FLAG_ERASED)
            position += _HEADER.size + length
            self._file.seek(position)

    def append(self, record: bytes) -> int:
        self._file.seek(0, os.SEEK_END)
        position = self._file.tell()
        self._file.write(_HEADER.pack(len(record), _FLAG_LIVE))
        self._file.write(record)
        self._file.flush()
        if self._durable:
            os.fsync(self._file.fileno())
        self._positions.append(position)
        self._erased.append(False)
        return len(self._positions) - 1

    def append_many(self, records: list[bytes]) -> list[int]:
        if not records:
            return []
        self._file.seek(0, os.SEEK_END)
        position = self._file.tell()
        chunks: list[bytes] = []
        offsets: list[int] = []
        for record in records:
            chunks.append(_HEADER.pack(len(record), _FLAG_LIVE))
            chunks.append(record)
            self._positions.append(position)
            self._erased.append(False)
            offsets.append(len(self._positions) - 1)
            position += _HEADER.size + len(record)
        self._file.write(b"".join(chunks))
        self._file.flush()
        if self._durable:
            os.fsync(self._file.fileno())
        return offsets

    def read(self, offset: int) -> bytes:
        self._check_offset(offset)
        if self._erased[offset]:
            raise RecordErasedError(offset)
        self._file.seek(self._positions[offset])
        length, flag = _HEADER.unpack(self._file.read(_HEADER.size))
        if flag == _FLAG_ERASED:  # stale in-memory index (crash recovery path)
            self._erased[offset] = True
            raise RecordErasedError(offset)
        data = self._file.read(length)
        if len(data) < length:
            raise StreamError(f"truncated record body at offset {offset}")
        return data

    def erase(self, offset: int) -> None:
        self._check_offset(offset)
        if self._erased[offset]:
            return
        position = self._positions[offset]
        self._file.seek(position)
        length, _flag = _HEADER.unpack(self._file.read(_HEADER.size))
        self._file.seek(position)
        self._file.write(_HEADER.pack(length, _FLAG_ERASED))
        self._file.write(b"\x00" * length)
        self._file.flush()
        if self._durable:
            os.fsync(self._file.fileno())
        self._erased[offset] = True

    def is_erased(self, offset: int) -> bool:
        self._check_offset(offset)
        return self._erased[offset]

    def __len__(self) -> int:
        return len(self._positions)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FileStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
