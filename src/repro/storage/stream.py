"""Append-only record streams — LedgerDB's stream file system substrate.

LedgerDB "implements a stream file system ... to manage journals" (§II-C).
A :class:`Stream` is an append-only sequence of byte records addressed by a
dense integer offset (the journal stream is addressed by jsn).  Two backends
are provided:

* :class:`MemoryStream` — list-backed, used by tests and benchmarks;
* :class:`FileStream`  — a crash-consistent, corruption-detecting log of
  checksummed records in a single file with an in-memory offset index.

Streams support *erasure* of individual records (required by occult's
asynchronous data reorganisation and by purge): an erased slot keeps its
offset but its payload is gone.  Erasure is exposed separately from append so
that the ledger layer can enforce its multi-signature prerequisites first.

Crash-consistency model (DESIGN.md §9)
--------------------------------------

The on-disk format is::

    superblock := b"LDBSTRM2"                                            (8 bytes)
    record     := length:u32 | flags:u8 | pcrc:u32 | hcrc:u32 | payload  (13 + length)

``flags`` carries two bits: ``ERASED`` (payload scrubbed in place) and
``COMMIT`` (this record terminates a commit — set on every single append and
on the *last* record of an ``append_many`` batch, making the batch's final
header its commit epilogue).  ``pcrc`` is the CRC32C of the payload (zero
for erased records, whose scrubbed payload is don't-care); ``hcrc`` is the
CRC32C of the preceding nine header bytes, making the header self-validating
— crucially, a corrupted *length* field can never masquerade as a torn tail
and silently swallow the committed records behind it.

``open()`` scans and verifies the whole file:

* an incomplete final record (header or payload cut short, with every
  header that *is* complete passing its ``hcrc``) is a **torn tail** — the
  crash happened mid-write — and is truncated away;
* intact trailing records *after the last COMMIT record* belong to a batch
  whose commit epilogue never reached the disk and are truncated with it
  (this is the atomicity half of group commit: a batch recovers all-or-
  nothing);
* any checksum mismatch — ``hcrc`` on a complete header, ``pcrc`` on a
  complete record — is **corruption**, wherever it sits, and raises
  :class:`StreamCorruptionError` with the record offset and a precise
  reason: corruption is never silently returned as data, and because CRC32C
  detects all single-bit and sub-32-bit-burst errors, no single flipped bit
  anywhere in the file can alias into a valid parse.

The fault model assumes a torn write persists some *prefix* of the issued
bytes (standard sector-append semantics) and that the 13-byte record header
rewrite performed by :meth:`FileStream.erase` is atomic (headers are far
smaller than a 512-byte sector).  See :mod:`repro.storage.faults` for the
injection harness that exercises every crash point of this model.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator

from .. import obs
from .checksum import crc32c

__all__ = [
    "Stream",
    "MemoryStream",
    "FileStream",
    "StreamError",
    "StreamCorruptionError",
    "RecordErasedError",
    "OpenReport",
]


class StreamError(Exception):
    """Raised on out-of-range access or backend corruption."""


class StreamCorruptionError(StreamError):
    """The backing file holds bytes that cannot be honest data.

    ``offset`` is the record slot (or byte position, for framing damage
    before any record parses) where verification failed; ``reason`` states
    the exact check that failed.  This is deliberately *not* recoverable:
    mid-stream corruption means the ledger's durable history was tampered
    with or rotted, and only an auditor with external evidence (receipts,
    anchored roots) can adjudicate what was lost.
    """

    def __init__(self, offset: int, reason: str, *, path: str | None = None) -> None:
        where = f" in {path}" if path else ""
        super().__init__(f"stream corrupt at record {offset}{where}: {reason}")
        self.offset = offset
        self.reason = reason
        self.path = path


class RecordErasedError(StreamError):
    """Raised when reading a record that has been physically erased."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"record at offset {offset} has been erased")
        self.offset = offset


@dataclass(frozen=True)
class OpenReport:
    """What :class:`FileStream` did to the file while opening it.

    A clean open reports zeros everywhere.  After a crash, ``truncated_*``
    describe the torn/uncommitted tail that was rolled back (the pre-commit
    state the ledger recovers to) and ``scrubbed_records`` counts interrupted
    erasures whose payload zeroing was completed.
    """

    records: int = 0
    truncated_records: int = 0
    truncated_bytes: int = 0
    truncation_reason: str = ""
    scrubbed_records: tuple[int, ...] = field(default=())

    @property
    def clean(self) -> bool:
        return self.truncated_records == 0 and self.truncated_bytes == 0


class Stream(ABC):
    """Abstract append-only record stream."""

    @abstractmethod
    def append(self, record: bytes) -> int:
        """Append ``record``; return its offset (0-based, dense)."""

    def append_many(self, records: list[bytes]) -> list[int]:
        """Append several records; return their offsets, in order.

        The base implementation loops over :meth:`append`.  Backends with
        per-append durability costs (flush/fsync) override this to batch
        the I/O — the group-commit half of ``Ledger.append_batch``.
        """
        return [self.append(record) for record in records]

    @abstractmethod
    def read(self, offset: int) -> bytes:
        """Read the record at ``offset``.

        Raises :class:`StreamError` for out-of-range offsets and
        :class:`RecordErasedError` for erased slots.
        """

    @abstractmethod
    def erase(self, offset: int) -> None:
        """Physically erase the record at ``offset`` (idempotent)."""

    @abstractmethod
    def is_erased(self, offset: int) -> bool:
        """True if the slot exists but its payload was erased."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of slots ever appended (erased slots still count)."""

    def iter_records(self, start: int = 0, stop: int | None = None) -> Iterator[tuple[int, bytes]]:
        """Yield ``(offset, record)`` for live records in ``[start, stop)``."""
        end = len(self) if stop is None else min(stop, len(self))
        for offset in range(start, end):
            if not self.is_erased(offset):
                yield offset, self.read(offset)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < len(self):
            raise StreamError(f"offset {offset} out of range [0, {len(self)})")


class MemoryStream(Stream):
    """List-backed stream; erased slots hold ``None``."""

    def __init__(self) -> None:
        self._records: list[bytes | None] = []

    def append(self, record: bytes) -> int:
        self._records.append(bytes(record))
        return len(self._records) - 1

    def read(self, offset: int) -> bytes:
        self._check_offset(offset)
        record = self._records[offset]
        if record is None:
            raise RecordErasedError(offset)
        return record

    def erase(self, offset: int) -> None:
        self._check_offset(offset)
        self._records[offset] = None

    def is_erased(self, offset: int) -> bool:
        self._check_offset(offset)
        return self._records[offset] is None

    def __len__(self) -> int:
        return len(self._records)


# FileStream record layout: [u32 length][u8 flags][u32 pcrc][u32 hcrc][payload].
_HEADER = struct.Struct(">IBII")
_HEADER_PREFIX = struct.Struct(">IBI")  # the hcrc-covered fixed part
_MAGIC = b"LDBSTRM2"
_FLAG_ERASED = 0x01
_FLAG_COMMIT = 0x02
_KNOWN_FLAGS = _FLAG_ERASED | _FLAG_COMMIT


def _pack_record_header(length: int, flags: int, payload: bytes) -> bytes:
    """Serialize a header: payload CRC (zero for erased) + header CRC."""
    pcrc = 0 if flags & _FLAG_ERASED else crc32c(payload)
    hcrc = crc32c(_HEADER_PREFIX.pack(length, flags, pcrc))
    return _HEADER.pack(length, flags, pcrc, hcrc)


def _header_crc_ok(length: int, flags: int, pcrc: int, hcrc: int) -> bool:
    return hcrc == crc32c(_HEADER_PREFIX.pack(length, flags, pcrc))


class FileStream(Stream):
    """Durable, crash-consistent stream of checksummed records in one file.

    Erasure overwrites the payload bytes with zeros and rewrites the record's
    header in place (flags + checksum), so offsets of later records are
    unaffected; the header is rewritten *before* the payload is scrubbed, so
    a crash mid-erase recovers as an erased record whose scrub ``open()``
    completes.

    With ``durable=True`` every append (and erase) is followed by an
    ``fsync``, making commits crash-safe at ~100 us a piece; ``append_many``
    then issues a *single* fsync for the whole batch — the classic WAL
    group-commit amortisation.  The COMMIT flag on the batch's final record
    is the commit epilogue: on reopen, a batch missing it rolls back whole.

    ``file_factory`` lets a test harness interpose on the underlying file
    object (see :class:`repro.storage.faults.FaultyFile`); production code
    never passes it.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        durable: bool = False,
        file_factory=None,
    ) -> None:
        self._path = os.fspath(path)
        self._durable = durable
        # Positions (file offsets) of each record header, rebuilt on open.
        self._positions: list[int] = []
        self._lengths: list[int] = []
        self._erased: list[bool] = []
        mode = "r+b" if os.path.exists(self._path) else "w+b"
        raw: BinaryIO = open(self._path, mode)
        self._file = file_factory(raw) if file_factory is not None else raw
        try:
            with obs.span("storage.open_scan") as sp:
                self.open_report = self._load_index()
                sp.add("records", self.open_report.records)
        except BaseException:
            self._file.close()
            raise

    # ------------------------------------------------------------- open scan

    def _load_index(self) -> OpenReport:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size < len(_MAGIC):
            # A fresh file, or a crash during creation before the superblock
            # was durable: (re)write the superblock from scratch.
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(_MAGIC)
            self._flush()
            return OpenReport()
        self._file.seek(0)
        if self._file.read(len(_MAGIC)) != _MAGIC:
            raise StreamCorruptionError(
                0, "bad superblock magic (not a stream file, or header rot)",
                path=self._path,
            )

        position = len(_MAGIC)
        scrubbed: list[int] = []
        # End position of the last record carrying the COMMIT flag; records
        # beyond it belong to a batch whose epilogue never hit the disk.
        committed_end = position
        committed_count = 0
        torn_reason = ""
        while position < size:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                torn_reason = (
                    f"torn record header at byte {position} "
                    f"({len(header)} of {_HEADER.size} bytes)"
                )
                break
            length, flags, pcrc, hcrc = _HEADER.unpack(header)
            offset = len(self._positions)
            # The header checksum first: with a self-validated header, a
            # corrupted length field can never fake a torn tail, so any
            # truncation below provably discards only uncommitted bytes.
            if not _header_crc_ok(length, flags, pcrc, hcrc):
                raise StreamCorruptionError(
                    offset, "header checksum mismatch", path=self._path
                )
            if flags & ~_KNOWN_FLAGS:
                raise StreamCorruptionError(
                    offset, f"unknown flag bits 0x{flags & ~_KNOWN_FLAGS:02x}",
                    path=self._path,
                )
            end = position + _HEADER.size + length
            if end > size:
                torn_reason = (
                    f"torn record payload at byte {position} "
                    f"(need {length}, have {size - position - _HEADER.size})"
                )
                break
            if flags & _FLAG_ERASED:
                # Complete an interrupted erasure: the header committed the
                # erase, so the payload must end up zeroed (idempotent).
                payload = self._file.read(length)
                if payload.strip(b"\x00"):
                    self._file.seek(position + _HEADER.size)
                    self._file.write(b"\x00" * length)
                    scrubbed.append(offset)
            else:
                payload = self._file.read(length)
                if pcrc != crc32c(payload):
                    raise StreamCorruptionError(
                        offset, "payload checksum mismatch", path=self._path
                    )
            self._positions.append(position)
            self._lengths.append(length)
            self._erased.append(bool(flags & _FLAG_ERASED))
            position = end
            if flags & _FLAG_COMMIT:
                committed_end = end
                committed_count = len(self._positions)

        truncated_records = len(self._positions) - committed_count
        truncated_bytes = size - committed_end
        if truncated_bytes:
            if not torn_reason:
                torn_reason = (
                    f"{truncated_records} intact record(s) past the last "
                    "commit epilogue (uncommitted batch tail)"
                )
            # Roll the file back to the last committed record boundary: the
            # torn/uncommitted tail never happened.
            del self._positions[committed_count:]
            del self._lengths[committed_count:]
            del self._erased[committed_count:]
            self._file.seek(committed_end)
            self._file.truncate(committed_end)
            self._flush()
        if scrubbed and not truncated_bytes:
            self._flush()
        return OpenReport(
            records=len(self._positions),
            truncated_records=truncated_records,
            truncated_bytes=truncated_bytes,
            truncation_reason=torn_reason if truncated_bytes else "",
            scrubbed_records=tuple(scrubbed),
        )

    # ------------------------------------------------------------ durability

    def _flush(self) -> None:
        self._file.flush()
        if self._durable:
            self._fsync()

    def _fsync(self) -> None:
        # A fault-injecting wrapper intercepts fsync as a first-class op;
        # plain files go through os.fsync.
        with obs.span("storage.fsync"):
            fsync = getattr(self._file, "fsync", None)
            if fsync is not None:
                fsync()
            else:
                os.fsync(self._file.fileno())

    # --------------------------------------------------------------- appends

    def append(self, record: bytes) -> int:
        with obs.span("storage.append"):
            self._file.seek(0, os.SEEK_END)
            position = self._file.tell()
            self._file.write(
                _pack_record_header(len(record), _FLAG_COMMIT, record) + record
            )
            self._flush()
            self._positions.append(position)
            self._lengths.append(len(record))
            self._erased.append(False)
            obs.inc("storage.bytes_written", _HEADER.size + len(record))
            return len(self._positions) - 1

    def append_many(self, records: list[bytes]) -> list[int]:
        if not records:
            return []
        with obs.span("storage.append_many") as sp:
            sp.add("records", len(records))
            self._file.seek(0, os.SEEK_END)
            position = self._file.tell()
            chunks: list[bytes] = []
            offsets: list[int] = []
            last = len(records) - 1
            for index, record in enumerate(records):
                # Only the batch's final record carries the commit epilogue: a
                # reopen after a crash anywhere inside this write rolls the
                # whole batch back (all-or-nothing group commit).
                flags = _FLAG_COMMIT if index == last else 0
                chunks.append(_pack_record_header(len(record), flags, record))
                chunks.append(record)
                self._positions.append(position)
                self._lengths.append(len(record))
                self._erased.append(False)
                offsets.append(len(self._positions) - 1)
                position += _HEADER.size + len(record)
            payload = b"".join(chunks)
            self._file.write(payload)
            self._flush()
            obs.inc("storage.bytes_written", len(payload))
            return offsets

    # ----------------------------------------------------------------- reads

    def read(self, offset: int) -> bytes:
        self._check_offset(offset)
        if self._erased[offset]:
            raise RecordErasedError(offset)
        self._file.seek(self._positions[offset])
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise StreamCorruptionError(
                offset, "record header truncated under an open stream",
                path=self._path,
            )
        length, flags, pcrc, hcrc = _HEADER.unpack(header)
        # Verify on every read, not just at open: a flipped bit must never
        # flow into tx-hash recomputation as if it were honest data.
        if not _header_crc_ok(length, flags, pcrc, hcrc):
            raise StreamCorruptionError(
                offset, "header checksum mismatch", path=self._path
            )
        if flags & _FLAG_ERASED:  # stale in-memory index (concurrent erase)
            self._erased[offset] = True
            raise RecordErasedError(offset)
        data = self._file.read(length)
        if len(data) < length:
            raise StreamCorruptionError(
                offset, f"record body truncated (need {length}, got {len(data)})",
                path=self._path,
            )
        if pcrc != crc32c(data):
            raise StreamCorruptionError(
                offset, "payload checksum mismatch", path=self._path
            )
        return data

    # --------------------------------------------------------------- erasure

    def erase(self, offset: int) -> None:
        self._check_offset(offset)
        if self._erased[offset]:
            return
        position = self._positions[offset]
        length = self._lengths[offset]
        # Header first (atomic in-place rewrite of 13 bytes), then scrub.  A
        # crash between the two recovers as an erased record whose payload
        # zeroing open() completes — the erase fully happened or fully didn't.
        # COMMIT is set unconditionally: an erasable record was by definition
        # already committed, and the flag keeps it inside the committed
        # prefix if it happens to be the final record of the file.
        self._file.seek(position)
        self._file.write(_pack_record_header(length, _FLAG_ERASED | _FLAG_COMMIT, b""))
        self._flush()
        self._file.write(b"\x00" * length)
        self._flush()
        self._erased[offset] = True

    def is_erased(self, offset: int) -> bool:
        self._check_offset(offset)
        return self._erased[offset]

    def __len__(self) -> int:
        return len(self._positions)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FileStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
