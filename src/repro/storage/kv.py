"""Ordered key-value node store used by Merkle-Patricia trees and indexes.

MPT / CM-Tree1 nodes are content-addressed blobs; the paper keeps "a
configurable top layers cache in memory ... bottom layers including the leaf
nodes are stored on disk persistently" (§IV-B2).  :class:`CachedKVStore`
models exactly that split and counts backend reads so benchmarks can report
I/O behaviour; :class:`MemoryKVStore` is the plain in-memory backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Iterator

from .. import obs

__all__ = ["KVStore", "MemoryKVStore", "CachedKVStore", "KeyNotFoundError"]


class KeyNotFoundError(KeyError):
    """Raised when a key is absent from the store."""


class KVStore(ABC):
    """Abstract byte-to-byte key-value store."""

    @abstractmethod
    def get(self, key: bytes) -> bytes: ...

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None: ...

    @abstractmethod
    def delete(self, key: bytes) -> None: ...

    @abstractmethod
    def __contains__(self, key: bytes) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def keys(self) -> Iterator[bytes]: ...

    def flush(self) -> int:
        """Persist buffered writes (no-op for unbuffered stores)."""
        return 0

    def close(self) -> None:
        """Release resources (no-op for in-memory stores)."""

    def stats(self) -> dict:
        """Counter snapshot for observability surfaces (empty by default)."""
        return {}


class MemoryKVStore(KVStore):
    """Dict-backed store.  Read/write counters support benchmark accounting."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self.reads = 0
        self.writes = 0

    def get(self, key: bytes) -> bytes:
        self.reads += 1
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def put(self, key: bytes, value: bytes) -> None:
        self.writes += 1
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        try:
            del self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[bytes]:
        return iter(list(self._data))


class CachedKVStore(KVStore):
    """LRU write-through cache in front of a backend store.

    Models the paper's "top layers in memory, bottom layers on disk" node
    placement: hot (upper-trie) nodes stay cached, cold reads hit the backend
    and are counted in ``backend_reads``.
    """

    def __init__(self, backend: KVStore, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._backend = backend
        self._capacity = capacity
        self._cache: OrderedDict[bytes, bytes] = OrderedDict()
        self.cache_hits = 0
        self.backend_reads = 0

    def get(self, key: bytes) -> bytes:
        if key in self._cache:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            obs.inc("kvcache.hit")
            return self._cache[key]
        value = self._backend.get(key)
        self.backend_reads += 1
        obs.inc("kvcache.miss")
        self._insert_cache(key, value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._backend.put(key, value)
        self._insert_cache(key, value)

    def delete(self, key: bytes) -> None:
        self._cache.pop(key, None)
        self._backend.delete(key)

    def _insert_cache(self, key: bytes, value: bytes) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)

    def __contains__(self, key: bytes) -> bool:
        # A containment probe is a read for accounting purposes: a cached key
        # is an LRU hit (and is promoted, like any other touch); a key found
        # only in the backend costs a backend round trip.
        if key in self._cache:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            obs.inc("kvcache.hit")
            return True
        if key in self._backend:
            self.backend_reads += 1
            obs.inc("kvcache.miss")
            return True
        return False

    def __len__(self) -> int:
        return len(self._backend)

    def keys(self) -> Iterator[bytes]:
        return self._backend.keys()

    def flush(self) -> int:
        return self._backend.flush()

    def close(self) -> None:
        self._backend.close()

    def stats(self) -> dict:
        total = self.cache_hits + self.backend_reads
        return {
            "capacity": self._capacity,
            "cached": len(self._cache),
            "cache_hits": self.cache_hits,
            "backend_reads": self.backend_reads,
            "hit_rate": (self.cache_hits / total) if total else 0.0,
        }
