"""Shared payload storage — the content-addressed blob store of Figure 1.

In the LedgerDB deployment, "the ledger proxy sends the transaction payload
to a shared storage, and sends the proof and payload digest to the ledger
server" (§II-C): bulky payloads live in a horizontally-scaled blob store
while the ledger server handles only fixed-size digests.

:class:`SharedStorage` is that store: content-addressed (key = SHA-256 of
the blob), so integrity is verified on every read and deduplication is
free.  Reference-counted deletion supports purge/occult erasure of payloads
whose journals are gone.
"""

from __future__ import annotations

from ..crypto.hashing import Digest, sha256

__all__ = ["SharedStorage", "BlobIntegrityError"]


class BlobIntegrityError(Exception):
    """A stored blob no longer hashes to its address (corruption/tamper)."""


class SharedStorage:
    """Content-addressed blob store with reference counting."""

    def __init__(self) -> None:
        self._blobs: dict[Digest, bytes] = {}
        self._refcounts: dict[Digest, int] = {}
        self.reads = 0
        self.writes = 0

    def put(self, blob: bytes) -> Digest:
        """Store ``blob``; returns its content address.  Idempotent."""
        digest = sha256(blob)
        self.writes += 1
        if digest in self._blobs:
            self._refcounts[digest] += 1
        else:
            self._blobs[digest] = bytes(blob)
            self._refcounts[digest] = 1
        return digest

    def get(self, digest: Digest) -> bytes:
        """Fetch and integrity-check a blob."""
        self.reads += 1
        try:
            blob = self._blobs[digest]
        except KeyError:
            raise KeyError(f"no blob at {digest.hex()[:12]}…") from None
        if sha256(blob) != digest:
            raise BlobIntegrityError(f"blob at {digest.hex()[:12]}… failed its hash check")
        return blob

    def __contains__(self, digest: Digest) -> bool:
        return digest in self._blobs

    def release(self, digest: Digest) -> bool:
        """Drop one reference; physically erase at zero.  Returns True if erased."""
        count = self._refcounts.get(digest)
        if count is None:
            return False
        if count <= 1:
            del self._blobs[digest]
            del self._refcounts[digest]
            return True
        self._refcounts[digest] = count - 1
        return False

    def __len__(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())
