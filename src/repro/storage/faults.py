"""Fault injection for the stream file system — the crash-recovery harness.

Reproducing a power loss in a unit test means answering one question: *which
prefix of the bytes the process issued actually reached the disk?*  The model
here is the standard one for append-mostly logs (and the one LevelDB/RocksDB
test against): a crash persists every byte of every completed I/O operation
before the crash point, plus an arbitrary prefix of the operation in flight;
nothing after.  Bit rot is modelled separately by flipping bits in a closed
file.

Pieces:

* :class:`FaultPlan` — the schedule: which I/O operation (write/flush/fsync,
  counted in issue order) crashes, and for a torn write, how many bytes of
  it survive.  A plan also traces every operation so a dry run can enumerate
  the crash points worth injecting.
* :class:`FaultyFile` — a file wrapper that executes the plan, raising
  :class:`InjectedCrash` at the scheduled boundary.  It derives from
  ``BaseException`` so no ``except Exception`` on the commit path can
  accidentally "handle" a power loss.
* :class:`FaultyStream` — a :class:`~repro.storage.stream.FileStream` wired
  through a :class:`FaultyFile`; what crash-recovery tests instantiate.
* :func:`flip_bit` / :func:`flip_byte` — offline corruption of a closed
  stream file, for checksum-detection tests.

Typical use (see ``tests/test_crash_recovery.py``)::

    plan = FaultPlan()
    stream = FaultyStream(path, plan, durable=True)
    ...build pre-state...
    plan.arm(crash_op=2, partial_bytes=17)
    with pytest.raises(InjectedCrash):
        ledger.append_batch(batch)
    stream.abandon()                  # the dead process's handle
    recovered = FileStream(path)      # the restarted process's open()
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import BinaryIO

__all__ = [
    "InjectedCrash",
    "FaultPlan",
    "FaultyFile",
    "FaultyStream",
    "FaultyPagedStore",
    "CrashPoint",
    "flip_bit",
    "flip_byte",
]

from .pagestore import PagedNodeStore
from .stream import FileStream


class InjectedCrash(BaseException):
    """The simulated power loss.

    Deliberately a ``BaseException``: production code that catches broad
    ``Exception`` around the commit path must not be able to swallow a crash
    and continue as if the write had happened.
    """

    def __init__(self, op_index: int, kind: str, detail: str = "") -> None:
        extra = f" ({detail})" if detail else ""
        super().__init__(f"injected crash at I/O op {op_index} [{kind}]{extra}")
        self.op_index = op_index
        self.kind = kind


@dataclass(frozen=True)
class CrashPoint:
    """One enumerable fault site: ``kind`` op number ``op_index``; for torn
    writes, ``size`` bounds the surviving-prefix choices (0..size)."""

    op_index: int
    kind: str  # "write" | "flush" | "fsync"
    size: int  # bytes issued by a write op; 0 for flush/fsync


@dataclass
class FaultPlan:
    """Schedule and trace of I/O operations for one :class:`FaultyFile`.

    Unarmed, the plan only traces (a dry run).  :meth:`arm` resets the
    operation counter and schedules the crash, so the op indices seen by a
    dry run of the same workload line up exactly.
    """

    crash_op: int | None = None
    partial_bytes: int | None = None  # torn-write survivors; None = 0
    armed: bool = False
    op_index: int = 0
    trace: list[CrashPoint] = field(default_factory=list)

    def arm(self, crash_op: int, partial_bytes: int | None = None) -> None:
        """Schedule a crash at operation ``crash_op`` (0-based) and restart
        the operation counter; for write ops, ``partial_bytes`` of the
        in-flight data survive on disk."""
        self.crash_op = crash_op
        self.partial_bytes = partial_bytes
        self.armed = True
        self.op_index = 0
        self.trace = []

    def reset(self) -> None:
        """Back to dry-run tracing from operation 0."""
        self.armed = False
        self.crash_op = None
        self.partial_bytes = None
        self.op_index = 0
        self.trace = []

    def crash_points(self) -> list[CrashPoint]:
        """The fault sites a traced run exposed (one per I/O operation)."""
        return list(self.trace)

    # Internal: called by FaultyFile for every I/O op, in order.
    def _observe(self, kind: str, size: int = 0) -> bool:
        index = self.op_index
        self.trace.append(CrashPoint(op_index=index, kind=kind, size=size))
        self.op_index += 1
        return self.armed and index == self.crash_op


class FaultyFile:
    """A binary-file proxy that crashes on schedule.

    All data-plane operations (``write``/``flush``/``fsync``) report to the
    :class:`FaultPlan`; control-plane operations (seek/read/tell/truncate)
    pass straight through.  A torn write persists ``plan.partial_bytes`` of
    the issued buffer — flushed, so the bytes genuinely reach the backing
    file before the crash fires — then raises :class:`InjectedCrash`.
    """

    def __init__(self, raw: BinaryIO, plan: FaultPlan) -> None:
        self._raw = raw
        self.plan = plan

    # ------------------------------------------------------------ data plane

    def write(self, data: bytes) -> int:
        if self.plan._observe("write", len(data)):
            survivors = min(self.plan.partial_bytes or 0, len(data))
            if survivors:
                self._raw.write(data[:survivors])
            self._raw.flush()
            raise InjectedCrash(
                self.plan.op_index - 1,
                "write",
                f"{survivors}/{len(data)} bytes persisted",
            )
        return self._raw.write(data)

    def flush(self) -> None:
        if self.plan._observe("flush"):
            # The buffered bytes were already written through to the OS by
            # this in-process model, so a flush-boundary crash persists them
            # all — the "write completed, commit fsync lost" image.
            self._raw.flush()
            raise InjectedCrash(self.plan.op_index - 1, "flush")
        self._raw.flush()

    def fsync(self) -> None:
        if self.plan._observe("fsync"):
            raise InjectedCrash(self.plan.op_index - 1, "fsync")
        self._raw.flush()
        os.fsync(self._raw.fileno())

    # --------------------------------------------------------- control plane

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def read(self, size: int = -1) -> bytes:
        return self._raw.read(size)

    def truncate(self, size: int | None = None) -> int:
        return self._raw.truncate(size)

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        self._raw.close()


class FaultyStream(FileStream):
    """A :class:`FileStream` whose file I/O runs through a fault plan.

    ``durable=True`` by default: crash-recovery tests are about the durable
    configuration — that is the mode whose guarantees matter.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        plan: FaultPlan,
        *,
        durable: bool = True,
    ) -> None:
        self.fault_plan = plan
        super().__init__(
            path,
            durable=durable,
            file_factory=lambda raw: FaultyFile(raw, plan),
        )

    def abandon(self) -> None:
        """Drop the crashed process's handle without flushing anything more.

        After an :class:`InjectedCrash` the in-memory index is ahead of the
        disk; the only valid next step is a fresh ``FileStream(path)`` in
        the "restarted process".
        """
        self._raw_close()

    def _raw_close(self) -> None:
        try:
            self._file.close()
        except ValueError:  # already closed
            pass


class FaultyPagedStore(PagedNodeStore):
    """A :class:`~repro.storage.pagestore.PagedNodeStore` whose page commits
    run through a fault plan.

    Page files are written tmp -> fsync -> rename, so every crash point a
    plan can hit lands *before* the rename: the injected power loss leaves a
    torn ``.tmp`` that the next open sweeps away, and the §9 question becomes
    whether the ledger regenerates the lost nodes from its journal stream.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        plan: FaultPlan,
        **kwargs,
    ) -> None:
        self.fault_plan = plan
        super().__init__(
            directory,
            file_factory=lambda raw: FaultyFile(raw, plan),
            **kwargs,
        )


# --------------------------------------------------------------- corruption


def flip_bit(path: str | os.PathLike[str], bit_index: int) -> None:
    """Flip one bit of a closed file (bit ``bit_index % 8`` of byte
    ``bit_index // 8``) — the unit of silent media corruption."""
    flip_byte(path, bit_index // 8, 1 << (bit_index % 8))


def flip_byte(path: str | os.PathLike[str], byte_index: int, mask: int = 0xFF) -> None:
    """XOR ``mask`` into one byte of a closed file."""
    with open(path, "r+b") as handle:
        handle.seek(byte_index)
        original = handle.read(1)
        if len(original) != 1:
            raise ValueError(f"byte {byte_index} is past EOF of {os.fspath(path)}")
        handle.seek(byte_index)
        handle.write(bytes([original[0] ^ mask]))
