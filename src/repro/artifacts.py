"""The artifact layer: self-describing, carry-away verification objects.

Every serializable piece of evidence the system hands a client — receipts,
fam proofs, signed tree heads, submission acks, equivocation/censorship
evidence, export bundles, rebuild reports, verify results — follows one
convention, captured by the :class:`Artifact` protocol:

* ``to_bytes()`` — canonical encoding over :mod:`repro.encoding`;
* ``from_bytes(data)`` — the symmetric constructor (a classmethod);
* ``verify(...)`` — a check that **never raises**, taking only out-of-band
  trust anchors (a public key, a trusted root), never the — possibly
  hostile — service that produced the artifact.

``verify`` signatures necessarily differ per artifact (a receipt checks one
signature, a proof folds to a root), so the protocol pins the byte-symmetry
pair and documents the verify convention; :func:`is_artifact` is the runtime
structural check.

This module is deliberately **kernel-free**: it imports only
:mod:`repro.crypto`, :mod:`repro.merkle`, :mod:`repro.encoding` and leaf
:mod:`repro.timeauth` modules, so a standalone offline verifier can load it
without pulling in the ledger kernel, the service layer, or the network
stack (see ``repro/export/verifier.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Protocol, runtime_checkable

from .crypto.hashing import Digest
from .encoding import EncodingError, decode, encode
from .merkle.fam import FamProof
from .timeauth.pegging import TimeBound

__all__ = [
    "Artifact",
    "DaseinReport",
    "OpaqueProof",
    "VerifyLevel",
    "VerifyResult",
    "VerifyTarget",
    "is_artifact",
]


@runtime_checkable
class Artifact(Protocol):
    """Structural contract for carry-away evidence objects.

    ``isinstance(obj, Artifact)`` checks that both byte-symmetry methods
    exist.  Implementors additionally expose some ``verify(...)`` surface
    whose arguments are trust anchors only; that part is a documented
    convention rather than a protocol member because the anchor types
    legitimately differ per artifact.
    """

    def to_bytes(self) -> bytes: ...

    @classmethod
    def from_bytes(cls, data: bytes) -> "Artifact": ...


def is_artifact(obj: Any) -> bool:
    """True when ``obj`` satisfies the :class:`Artifact` byte-symmetry pair."""
    return isinstance(obj, Artifact)


class VerifyTarget(Enum):
    """What a Verify call checks: one journal, or a clue lineage."""

    TX = "tx"
    CLUE = "clue"


class VerifyLevel(Enum):
    """Where verification runs (§IV-B): inside the LSP, or client-side."""

    SERVER = "server"
    CLIENT = "client"


@dataclass(frozen=True)
class DaseinReport:
    """Outcome of a full 3w verification for one journal."""

    jsn: int
    what: bool
    when_valid: bool
    when_bound: TimeBound | None
    who: bool

    @property
    def dasein_complete(self) -> bool:
        """All three factors rigorously verified."""
        return self.what and self.when_valid and self.who


@dataclass(frozen=True)
class OpaqueProof:
    """A proof round-tripped through :class:`VerifyResult` byte form.

    Proof objects from layers this module cannot import (shard links,
    clue proofs) survive serialization as ``(kind, data)`` so nothing is
    silently dropped; callers that know the kind can decode ``data`` with
    the matching ``from_bytes``.
    """

    kind: str
    data: bytes

    def to_bytes(self) -> bytes:
        return self.data


def _encode_proof(proof: Any) -> tuple[str, bytes]:
    if proof is None:
        return "", b""
    if isinstance(proof, FamProof):
        return "fam", proof.to_bytes()
    if isinstance(proof, OpaqueProof):
        return proof.kind, proof.data
    to_bytes = getattr(proof, "to_bytes", None)
    if callable(to_bytes):
        return type(proof).__name__, to_bytes()
    return "", b""


def _decode_proof(kind: str, data: bytes) -> Any:
    if not kind:
        return None
    if kind == "fam":
        return FamProof.from_bytes(data)
    return OpaqueProof(kind=kind, data=data)


@dataclass(frozen=True)
class VerifyResult:
    """Structured outcome of a Verify call — evidence, not a trust-me bool.

    Every field beyond ``ok`` is machine-checkable context: which ``target``
    was verified at which ``level``, the per-factor Dasein verdicts where the
    flow produced them (``None`` = that factor was not part of this check),
    the ``proof`` object actually folded, and the ``trusted_root`` it was
    folded against — enough for a distrusting caller to re-run the check or
    archive the evidence.

    Truthy-compatible with the old ``bool`` return: ``bool(result)`` is
    ``result.ok``, so ``assert verify(...)`` keeps working unchanged.

    As an :class:`Artifact`, results round-trip through ``to_bytes`` /
    ``from_bytes`` (a ``fam`` proof comes back as a real :class:`FamProof`;
    other proof kinds as :class:`OpaqueProof`), and ``verify()`` checks the
    result's *internal consistency*: ``ok`` must equal the conjunction of
    whichever Dasein factors are present.
    """

    ok: bool
    target: str  # "tx" | "clue" | "dasein" | "bundle" | "rebuild"
    level: str  # "server" | "client" | "standalone"
    what: bool | None = None
    when: bool | None = None
    who: bool | None = None
    when_bound: TimeBound | None = None
    proof: Any = None
    trusted_root: Digest | None = None
    jsn: int | None = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok

    @classmethod
    def from_dasein(
        cls,
        report: DaseinReport,
        *,
        proof: FamProof | None = None,
        trusted_root: Digest | None = None,
        level: str = "client",
    ) -> "VerifyResult":
        """Lift a :class:`DaseinReport` into the structured verify surface."""
        return cls(
            ok=report.dasein_complete,
            target="dasein",
            level=level,
            what=report.what,
            when=report.when_valid,
            who=report.who,
            when_bound=report.when_bound,
            proof=proof,
            trusted_root=trusted_root,
            jsn=report.jsn,
        )

    def verify(self) -> bool:
        """Internal consistency: ``ok`` agrees with the recorded factors.

        Never raises.  When no per-factor verdicts are present there is
        nothing to cross-check and the result is vacuously consistent.
        """
        factors = [f for f in (self.what, self.when, self.who) if f is not None]
        if not factors:
            return True
        return self.ok == all(factors)

    def to_bytes(self) -> bytes:
        proof_kind, proof_bytes = _encode_proof(self.proof)
        return encode(
            {
                "scheme": "repro.verify_result.v1",
                "ok": self.ok,
                "target": self.target,
                "level": self.level,
                "what": self.what,
                "when": self.when,
                "who": self.who,
                "when_bound": (
                    None
                    if self.when_bound is None
                    else [self.when_bound.lower, self.when_bound.upper]
                ),
                "proof_kind": proof_kind,
                "proof": proof_bytes,
                "trusted_root": self.trusted_root,
                "jsn": self.jsn,
                "detail": self.detail,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "VerifyResult":
        obj = decode(data)
        if not isinstance(obj, dict) or obj.get("scheme") != "repro.verify_result.v1":
            raise EncodingError("not a repro.verify_result.v1 payload")
        bound = obj["when_bound"]
        trusted_root = obj["trusted_root"]
        return cls(
            ok=bool(obj["ok"]),
            target=obj["target"],
            level=obj["level"],
            what=obj["what"],
            when=obj["when"],
            who=obj["who"],
            when_bound=(
                None if bound is None else TimeBound(lower=bound[0], upper=bound[1])
            ),
            proof=_decode_proof(obj["proof_kind"], bytes(obj["proof"])),
            trusted_root=None if trusted_root is None else bytes(trusted_root),
            jsn=obj["jsn"],
            detail=obj["detail"],
        )
