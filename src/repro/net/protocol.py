"""Wire protocol: length-prefixed binary frames over the canonical encoding.

A frame is a 4-byte big-endian unsigned length followed by exactly that many
payload bytes; the payload is one :func:`repro.encoding.encode` value.  The
same canonical TLV that every digest in the system is computed over is thus
also the wire format — there is no second serializer to keep honest.

Every frame carries a *message*: a dict with an integer ``id``.  Requests
additionally carry an ``op`` string (plus op-specific fields); responses
carry ``ok`` (bool) and either ``result`` or ``error``.  Request ids are
chosen by the client and echoed verbatim, which is what allows the server to
answer out of order — a pipelined append can overtake a slow bulk proof
fetch without head-of-line blocking.

Malformed input of any kind — oversized length, zero length, truncated
payload, undecodable bytes, a payload that is not a message-shaped dict —
raises :class:`ProtocolError`, never anything else and never a hang: the
decoder consumes nothing it cannot validate first.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any

from ..core.errors import LedgerError
from ..encoding import EncodingError, decode, encode

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_message",
    "FrameDecoder",
    "read_frame",
    "write_frame",
    "request",
    "response_ok",
    "response_error",
]

#: Bumped on any incompatible change; exchanged in the ``hello`` op.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's payload.  Large enough for a bulk proof
#: fetch over thousands of journals, small enough that a hostile length
#: prefix cannot make the server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(LedgerError):
    """The peer sent bytes that are not a valid protocol frame/message."""


def _check_length(length: int, max_bytes: int) -> None:
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_bytes}-byte cap")


def encode_frame(message: dict[str, Any], *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a dict, got {type(message).__name__}")
    try:
        payload = encode(message)
    except EncodingError as exc:
        raise ProtocolError(f"unencodable message: {exc}") from None
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the {max_bytes}-byte cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_message(payload: bytes) -> dict[str, Any]:
    """Decode and shape-check one frame payload into a message dict."""
    try:
        message = decode(payload)
    except EncodingError as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must decode to a dict, got {type(message).__name__}"
        )
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("message has no integer 'id'")
    is_request = "op" in message
    is_response = "ok" in message
    if is_request == is_response:
        raise ProtocolError("message must carry exactly one of 'op' or 'ok'")
    if is_request and not isinstance(message["op"], str):
        raise ProtocolError("'op' must be a string")
    if is_response and not isinstance(message["ok"], bool):
        raise ProtocolError("'ok' must be a bool")
    return message


class FrameDecoder:
    """Incremental frame decoder for byte streams of any chunking.

    Feed it whatever the transport produced — single bytes, half a length
    prefix, three frames at once — and it yields every complete message, in
    order, holding partial input until the rest arrives.  A protocol
    violation raises :class:`ProtocolError` and poisons the decoder (a
    stream is unrecoverable once framing is lost).
    """

    def __init__(self, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every message completed by it."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier protocol error")
        self._buffer += data
        messages: list[dict[str, Any]] = []
        try:
            while True:
                if len(self._buffer) < _LENGTH.size:
                    return messages
                (length,) = _LENGTH.unpack_from(self._buffer)
                _check_length(length, self.max_bytes)
                end = _LENGTH.size + length
                if len(self._buffer) < end:
                    return messages
                payload = bytes(self._buffer[_LENGTH.size : end])
                del self._buffer[:end]
                messages.append(decode_message(payload))
        except ProtocolError:
            self._poisoned = True
            raise


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any]:
    """Read one complete message from an asyncio stream.

    Raises:
        ProtocolError: malformed length or payload.
        asyncio.IncompleteReadError: the peer closed mid-frame (or cleanly
            between frames, with ``partial`` empty).
    """
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    _check_length(length, max_bytes)
    payload = await reader.readexactly(length)
    return decode_message(payload)


class FrameBatcher:
    """Coalesce frames written in one event-loop tick into one transport write.

    Under pipelining, bursts of small frames (a window of appends going out,
    a group commit's receipts coming back) otherwise cost one ``send``
    syscall — and on loopback one GIL handoff to the peer's thread — *each*.
    ``send`` buffers the encoded frame and schedules a single flush with
    ``call_soon``; everything buffered in the same tick leaves in one write.

    Encoding errors (oversized/unencodable message) still raise synchronously
    from ``send``.  Transport errors surface on the connection's reader side,
    where both peers already treat them as fatal.  Await :meth:`drain` after
    ``send`` to keep the transport's flow-control backpressure.
    """

    def __init__(
        self, writer: asyncio.StreamWriter, *, max_bytes: int = MAX_FRAME_BYTES
    ) -> None:
        self._writer = writer
        self._max_bytes = max_bytes
        self._chunks: list[bytes] = []
        self._scheduled = False

    def send(self, message: dict[str, Any]) -> int:
        """Buffer one message for the next flush; returns the frame size."""
        frame = encode_frame(message, max_bytes=self._max_bytes)
        self._chunks.append(frame)
        if not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self.flush)
        return len(frame)

    def flush(self) -> None:
        """Push any buffered frames to the transport now (close paths)."""
        self._scheduled = False
        chunks, self._chunks = self._chunks, []
        if not chunks:
            return
        try:
            self._writer.write(b"".join(chunks) if len(chunks) > 1 else chunks[0])
        except (ConnectionError, OSError, RuntimeError):
            pass  # connection teardown is reported by the reader side

    async def drain(self) -> None:
        await self._writer.drain()


async def write_frame(
    writer: asyncio.StreamWriter,
    message: dict[str, Any],
    *,
    max_bytes: int = MAX_FRAME_BYTES,
) -> int:
    """Write one message and drain; returns the frame size in bytes."""
    frame = encode_frame(message, max_bytes=max_bytes)
    writer.write(frame)
    await writer.drain()
    return len(frame)


# ------------------------------------------------------------- envelopes


def request(request_id: int, op: str, **fields: Any) -> dict[str, Any]:
    message = {"id": request_id, "op": op}
    message.update(fields)
    return message


def response_ok(request_id: int, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def response_error(request_id: int, error_type: str, detail: str) -> dict[str, Any]:
    return {"id": request_id, "ok": False, "error": {"type": error_type, "message": detail}}
