"""Asyncio ledger server: the network front end over :class:`LedgerService`.

One :class:`LedgerServer` listens on a TCP socket and speaks the frame
protocol of :mod:`repro.net.protocol`.  Its job is purely *transport*: every
append is funneled into the group-commit service (so remote traffic
coalesces with in-process traffic into the same single-fsync batches), and
every read is served straight off the ledger's public read API.  The server
adds no trust — clients are expected to re-verify everything it returns.

Concurrency model::

    connection reader ──▶ per-request asyncio task ──▶ response frame
         (one loop)          (bounded in flight)        (write lock)

* Requests are dispatched to their own task the moment the frame arrives,
  so responses go out in *completion* order, not arrival order — a pipelined
  append stream is never head-of-line blocked behind a bulk proof fetch.
  Clients match responses by request id.
* At most ``max_inflight`` requests per connection run at once; past that
  the reader stops pulling frames and TCP backpressure reaches the client.
  Blocking service calls (``submit`` against a full admission queue) run on
  a small thread pool, so the event loop itself never blocks.
* ``close(drain=True)`` stops accepting connections and new requests,
  answers everything already in flight, then drains the owned service —
  no accepted append is ever dropped without a response.

A hostile or broken peer costs exactly its own connection: malformed frames
poison only that stream (best-effort error frame, then close), and a peer
that trickles bytes one at a time just waits on its own reader.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket as _socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable

from .. import obs
from ..core.errors import AuthorizationError, UsageError
from ..core.journal import ClientRequest
from ..core.ledger import LSP_MEMBER_ID, Ledger
from ..crypto.ca import Role
from ..crypto.keys import PublicKey
from ..encoding import EncodingError
from ..service import (
    LedgerService,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameBatcher,
    ProtocolError,
    read_frame,
    response_error,
    response_ok,
)

__all__ = ["LedgerServer", "ServerThread"]

#: Ops refused while draining (reads stay up until the socket closes).
_MUTATING_OPS = frozenset({"append", "append_batch", "register"})


class _Connection:
    """Per-connection state: streams, write serialisation, in-flight tasks."""

    __slots__ = ("conn_id", "reader", "writer", "batcher", "drain_lock", "inflight", "semaphore")

    def __init__(
        self,
        conn_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_inflight: int,
        max_frame_bytes: int,
    ) -> None:
        self.conn_id = conn_id
        self.reader = reader
        self.writer = writer
        self.batcher = FrameBatcher(writer, max_bytes=max_frame_bytes)
        self.drain_lock = asyncio.Lock()
        self.inflight: set[asyncio.Task] = set()
        self.semaphore = asyncio.Semaphore(max_inflight)


class LedgerServer:
    """Serve one ledger (via its group-commit service) over TCP frames.

    Pass either a :class:`Ledger` (the server creates and owns a
    :class:`LedgerService` over it, closed with the server) or an existing
    :class:`LedgerService` (shared; the caller keeps ownership unless
    ``close_service=True``).

    Member registration is a governance operation (registered members gain
    append access and privileged roles sit in destructive-op signer sets),
    so the ``register`` op is refused unless the operator opts in with
    ``allow_register=True`` — and even then only :attr:`Role.USER` members
    may be minted over the wire; DBA/regulator/LSP registration stays a
    local operator action.

    All coroutine methods must run on one event loop; use
    :class:`ServerThread` to host a server from synchronous code.
    """

    def __init__(
        self,
        target: Ledger | LedgerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        service_config: ServiceConfig | None = None,
        close_service: bool | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_inflight: int = 64,
        submit_timeout_s: float = 30.0,
        workers: int = 8,
        allow_register: bool = False,
        shard_context: tuple[Any, int] | None = None,
    ) -> None:
        if isinstance(target, LedgerService):
            if service_config is not None:
                raise UsageError("service_config only applies when passing a Ledger")
            self.service = target
            self._owns_service = bool(close_service)
        elif isinstance(target, Ledger):
            self.service = LedgerService(target, service_config)
            self._owns_service = True if close_service is None else close_service
        else:
            raise UsageError(
                f"serve a Ledger or a LedgerService, not {type(target).__name__}"
            )
        self.ledger = self.service.ledger
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight = max_inflight
        self.submit_timeout_s = submit_timeout_s
        self.allow_register = allow_register
        #: ``(ShardedLedger, shard_index)`` when this server fronts one shard
        #: of a sharded deployment — enables the ``shard_info`` op to link
        #: the served shard's root into the deployment's composite root.
        self.shard_context = shard_context
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._conn_counter = 0
        self._draining = False
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="ledger-net"
        )
        self._handlers: dict[str, Callable[[dict], Awaitable[dict]]] = {
            "hello": self._op_hello,
            "ping": self._op_ping,
            "append": self._op_append,
            "append_batch": self._op_append_batch,
            "register": self._op_register,
            "get_journal": self._op_get_journal,
            "list_tx": self._op_list_tx,
            "get_proof": self._op_get_proof,
            "get_proofs": self._op_get_proofs,
            "prove_clue": self._op_prove_clue,
            "get_root": self._op_get_root,
            "receipt_for": self._op_receipt_for,
            "fam_info": self._op_fam_info,
            "epoch_anchor": self._op_epoch_anchor,
            "epoch_link": self._op_epoch_link,
            "epoch_leaves": self._op_epoch_leaves,
            "live_consistency": self._op_live_consistency,
            "epoch_consistency": self._op_epoch_consistency,
            "verify_journal": self._op_verify_journal,
            "shard_info": self._op_shard_info,
            "get_sth": self._op_get_sth,
            "get_sth_range": self._op_get_sth_range,
            "get_consistency": self._op_get_consistency,
            "export": self._op_export,
            "stats": self._op_stats,
        }

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)`` bound."""
        if self._server is not None:
            raise UsageError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def close(self, *, drain: bool = True) -> None:
        """Shut down: stop listening, settle in-flight work, close transports.

        ``drain=True`` answers every request already dispatched (and drains
        the owned service's admission queue) before closing; ``drain=False``
        cancels in-flight work and fails queued appends fast.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            if drain:
                if conn.inflight:
                    await asyncio.gather(*conn.inflight, return_exceptions=True)
            else:
                for task in list(conn.inflight):
                    task.cancel()
            conn.batcher.flush()
            conn.writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await conn.writer.wait_closed()
        if self._owns_service and not self.service.closed:
            # The service's writer thread blocks; keep it off the event loop.
            await asyncio.get_running_loop().run_in_executor(
                self._pool, lambda: self.service.close(drain=drain)
            )
        self._pool.shutdown(wait=False)
        obs.set_gauge("net.connections.open", 0)

    # ---------------------------------------------------------- connections

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_counter += 1
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Frames are small and latency-sensitive; batching is the
            # group-commit service's job, not the kernel's.
            with contextlib.suppress(OSError):
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        conn = _Connection(
            self._conn_counter, reader, writer, self.max_inflight, self.max_frame_bytes
        )
        self._connections.add(conn)
        obs.inc("net.connections.accepted")
        obs.set_gauge("net.connections.open", len(self._connections))
        try:
            while not self._closed:
                try:
                    message = await read_frame(reader, max_bytes=self.max_frame_bytes)
                except asyncio.IncompleteReadError:
                    break  # peer closed (cleanly or mid-frame)
                except (ConnectionError, OSError):
                    break
                except ProtocolError as exc:
                    # Framing is lost: best-effort error frame, then hang up.
                    # Only this peer pays; every other connection is unharmed.
                    obs.inc("net.errors.protocol")
                    with contextlib.suppress(Exception):
                        await self._send(conn, response_error(0, "ProtocolError", str(exc)))
                    break
                obs.inc("net.frames.in")
                await conn.semaphore.acquire()
                task = asyncio.create_task(self._dispatch(conn, message))
                conn.inflight.add(task)
                task.add_done_callback(
                    lambda done, c=conn: (c.inflight.discard(done), c.semaphore.release())
                )
        finally:
            if conn.inflight:
                # Answer pipelined requests already accepted from this peer.
                await asyncio.gather(*conn.inflight, return_exceptions=True)
            conn.batcher.flush()
            conn.writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await conn.writer.wait_closed()
            self._connections.discard(conn)
            obs.set_gauge("net.connections.open", len(self._connections))

    async def _dispatch(self, conn: _Connection, message: dict[str, Any]) -> None:
        request_id = message["id"]
        op = message.get("op")
        started = time.perf_counter()
        try:
            handler = self._handlers.get(op) if isinstance(op, str) else None
            if handler is None:
                raise ProtocolError(f"unknown op: {op!r}")
            if self._draining and op in _MUTATING_OPS:
                raise ServiceClosedError("server is draining; no new appends")
            result = await handler(message)
            reply = response_ok(request_id, result)
        except asyncio.CancelledError:
            with contextlib.suppress(Exception):
                await self._send(
                    conn,
                    response_error(request_id, "ServiceClosedError", "server shut down"),
                )
            raise
        except BaseException as exc:  # typed error travels; connection survives
            obs.inc("net.errors.request")
            reply = response_error(request_id, type(exc).__name__, str(exc))
        obs.observe("net.request.latency_us", (time.perf_counter() - started) * 1e6)
        if isinstance(op, str):
            obs.inc(f"net.op.{op}")
        try:
            await self._send(conn, reply)
        except (ConnectionError, OSError):
            pass
        except ProtocolError as exc:
            # The *response* was undeliverable (exceeds the frame cap /
            # unencodable).  The request id must still be settled — a
            # pipelined client otherwise awaits this future forever — so
            # downgrade to a small typed error frame.
            obs.inc("net.errors.protocol")
            with contextlib.suppress(ConnectionError, OSError, ProtocolError):
                await self._send(
                    conn,
                    response_error(
                        request_id, "ProtocolError", f"response undeliverable: {exc}"
                    ),
                )

    async def _send(self, conn: _Connection, message: dict[str, Any]) -> None:
        # Responses completing in one loop tick (a group-committed window of
        # receipts) leave in one socket write; the drain (behind a lock —
        # concurrent StreamWriter.drain is not portable) keeps backpressure.
        size = conn.batcher.send(message)
        obs.inc("net.frames.out")
        obs.observe("net.frame.out_bytes", size)
        async with conn.drain_lock:
            await conn.batcher.drain()

    async def _run(self, fn: Callable, *args: Any) -> Any:
        """Run a blocking ledger/service call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(self._pool, fn, *args)

    # ------------------------------------------------------------------ ops

    async def _op_hello(self, message: dict) -> dict:
        protocol = message.get("protocol")
        if protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: server speaks {PROTOCOL_VERSION}, "
                f"client sent {protocol!r}"
            )
        ledger = self.ledger
        return {
            "protocol": PROTOCOL_VERSION,
            "ledger_uri": ledger.config.uri,
            "size": ledger.size,
            "fractal_height": ledger.config.fractal_height,
            "lsp_public_key": ledger.registry.public_key(LSP_MEMBER_ID).to_bytes(),
            "ca_public_key": ledger.registry.ca_public_key.to_bytes(),
        }

    async def _op_ping(self, message: dict) -> dict:
        return {"size": self.ledger.size}

    @staticmethod
    def _decode_request(blob: Any) -> ClientRequest:
        try:
            return ClientRequest.from_bytes(_require_bytes(blob, "request"))
        except (EncodingError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"undecodable client request: {exc}") from None

    def _submit(self, request: ClientRequest) -> "asyncio.Future":
        """Admit one request into the service without blocking the loop.

        Fast path: ``submit(timeout=0)`` inline — admission is a lock'd
        deque append when the queue has room, far cheaper than two thread
        hops.  Only when the queue is full (real backpressure) does the
        blocking wait move to the pool, where it stalls a worker instead of
        the event loop.
        """

        async def admit() -> Any:
            try:
                return self.service.submit(request, timeout=0)
            except ServiceOverloadedError:
                return await self._run(
                    lambda: self.service.submit(request, timeout=self.submit_timeout_s)
                )

        return admit()

    async def _op_append(self, message: dict) -> dict:
        request = self._decode_request(message.get("request"))
        ack = None
        if message.get("want_ack"):
            # The ack must pin the tree coordinates *at admission* — issue it
            # before the submit so a censoring server cannot dodge the
            # deadline by acking late.
            deadline = message.get("ack_deadline")
            if deadline is None:
                ack = await self._run(self.ledger.issue_ack, request)
            else:
                deadline = _require_int(deadline, "ack_deadline")
                ack = await self._run(
                    lambda: self.ledger.issue_ack(request, deadline_epochs=deadline)
                )
        future = await self._submit(request)
        receipt = await asyncio.wrap_future(future)
        response = {"receipt": receipt.to_bytes()}
        if ack is not None:
            response["ack"] = ack.to_bytes()
        return response

    async def _op_append_batch(self, message: dict) -> dict:
        blobs = message.get("requests")
        if not isinstance(blobs, list) or not blobs:
            raise ProtocolError("append_batch needs a non-empty 'requests' list")
        requests = [self._decode_request(blob) for blob in blobs]
        try:
            # All-or-nothing admission, so overload here leaves nothing
            # queued and the blocking retry on the pool cannot double-append.
            futures = self.service.submit_many(requests, timeout=0)
        except ServiceOverloadedError:
            futures = await self._run(
                lambda: self.service.submit_many(
                    requests, timeout=self.submit_timeout_s
                )
            )
        receipts = await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
        return {"receipts": [receipt.to_bytes() for receipt in receipts]}

    async def _op_register(self, message: dict) -> dict:
        # A certified member gains append access and a permanent member id,
        # and privileged roles enter the occult/purge required-signer sets —
        # an open network surface here would let any peer corrupt
        # destructive-op governance.  Refuse unless the operator opted in,
        # and never mint anything beyond a plain user over the wire.
        if not self.allow_register:
            raise AuthorizationError(
                "member registration is disabled on this server; start it "
                "with allow_register=True (serve --allow-register) or "
                "register members locally"
            )
        member_id = _require_str(message.get("member_id"), "member_id")
        try:
            role = Role(_require_str(message.get("role"), "role"))
        except ValueError:
            raise ProtocolError(f"unknown role: {message.get('role')!r}") from None
        if role is not Role.USER:
            raise AuthorizationError(
                f"remote registration is limited to role {Role.USER.value!r}; "
                f"{role.value!r} members must be registered locally by the "
                "operator"
            )
        try:
            public_key = PublicKey.from_bytes(
                _require_bytes(message.get("public_key"), "public_key")
            )
        except (ValueError, IndexError) as exc:
            raise ProtocolError(f"undecodable public key: {exc}") from None
        await self._run(lambda: self.ledger.registry.register(member_id, role, public_key))
        return {"member_id": member_id, "role": role.value}

    async def _op_get_journal(self, message: dict) -> dict:
        jsn = _require_int(message.get("jsn"), "jsn")
        journal = await self._run(self.ledger.get_journal, jsn)
        return {"journal": journal.to_bytes()}

    async def _op_list_tx(self, message: dict) -> dict:
        clue = _require_str(message.get("clue"), "clue")
        return {"jsns": list(await self._run(self.ledger.list_tx, clue))}

    async def _op_get_proof(self, message: dict) -> dict:
        jsn = _require_int(message.get("jsn"), "jsn")
        anchored = bool(message.get("anchored", True))
        proof = await self._run(lambda: self.ledger.get_proof(jsn, anchored=anchored))
        return {"proof": proof.to_bytes()}

    async def _op_get_proofs(self, message: dict) -> dict:
        jsns = message.get("jsns")
        if not isinstance(jsns, list):
            raise ProtocolError("get_proofs needs a 'jsns' list")
        jsns = [_require_int(jsn, "jsn") for jsn in jsns]
        anchored = bool(message.get("anchored", True))
        proofs = await self._run(lambda: self.ledger.get_proofs(jsns, anchored=anchored))
        return {"proofs": [proof.to_bytes() for proof in proofs]}

    async def _op_prove_clue(self, message: dict) -> dict:
        clue = _require_str(message.get("clue"), "clue")
        proof = await self._run(self.ledger.prove_clue, clue)
        return {"proof": proof.to_bytes(), "state_root": self.ledger.state_root()}

    async def _op_get_root(self, message: dict) -> dict:
        ledger = self.ledger
        latest = ledger.latest_receipt
        return {
            "root": ledger.current_root(),
            "state_root": ledger.state_root(),
            "size": ledger.size,
            "latest_receipt": latest.to_bytes() if latest is not None else b"",
        }

    async def _op_receipt_for(self, message: dict) -> dict:
        jsn = _require_int(message.get("jsn"), "jsn")
        receipt = await self._run(self.ledger.receipt_for, jsn)
        return {"receipt": receipt.to_bytes() if receipt is not None else b""}

    async def _op_fam_info(self, message: dict) -> dict:
        fam = self.ledger._fam  # the public read path of a real deployment
        _roots, live_size, _peaks = fam.snapshot()
        return {
            "size": fam.size,
            "num_epochs": fam.num_epochs,
            "epoch_capacity": fam.epoch_capacity,
            "fractal_height": fam.fractal_height,
            "live_size": live_size,
            "live_root": fam.current_root(),
        }

    async def _op_epoch_anchor(self, message: dict) -> dict:
        epoch = _require_int(message.get("epoch"), "epoch")
        return {"root": await self._run(self.ledger._fam.epoch_root, epoch)}

    async def _op_epoch_link(self, message: dict) -> dict:
        epoch = _require_int(message.get("epoch"), "epoch")
        proof = await self._run(self.ledger._fam.prove_epoch_link, epoch)
        return {"proof": proof.to_bytes()}

    async def _op_epoch_leaves(self, message: dict) -> dict:
        fam = self.ledger._fam
        epoch = _require_int(message.get("epoch"), "epoch")
        if epoch != 0:
            raise UsageError("only epoch 0 is bootstrapped from raw leaves")

        def leaves():
            return [fam.leaf_digest(jsn) for jsn in range(fam.epoch_capacity)]

        return {"digests": await self._run(leaves)}

    async def _op_live_consistency(self, message: dict) -> dict:
        old_size = _require_int(message.get("old_size"), "old_size")
        proof = await self._run(self.ledger._fam.prove_live_consistency, old_size)
        return {"proof": proof.to_bytes()}

    async def _op_epoch_consistency(self, message: dict) -> dict:
        epoch = _require_int(message.get("epoch"), "epoch")
        old_size = _require_int(message.get("old_size"), "old_size")
        proof = await self._run(
            lambda: self.ledger._fam.prove_epoch_consistency(epoch, old_size)
        )
        return {"proof": proof.to_bytes()}

    async def _op_verify_journal(self, message: dict) -> dict:
        from ..core.journal import Journal

        try:
            journal = Journal.from_bytes(_require_bytes(message.get("journal"), "journal"))
        except (EncodingError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"undecodable journal: {exc}") from None
        return {"ok": bool(await self._run(self.ledger.verify_journal, journal))}

    async def _op_shard_info(self, message: dict) -> dict:
        """This shard's place in its deployment (DESIGN.md §15).

        Returns the shard→root inclusion link against a composite root built
        from one atomic snapshot of all shard roots, so the triple
        (shard_root, composite_root, link) is internally consistent even
        while other shards keep committing.  An unsharded server reports a
        one-leaf shard map, so clients handle both cases uniformly.
        """
        if self.shard_context is None:

            def solo():
                from ..merkle.shrubs import ShrubsAccumulator

                accumulator = ShrubsAccumulator()
                root = self.ledger.current_root()
                accumulator.append_leaf(root)
                return {
                    "shard_index": 0,
                    "num_shards": 1,
                    "shard_root": root,
                    "composite_root": accumulator.root(),
                    "link": accumulator.prove(0).to_bytes(),
                }

            return await self._run(solo)
        sharded, shard_index = self.shard_context

        def build():
            roots = sharded.shard_roots()
            link = sharded.shard_link(shard_index, roots)
            return {
                "shard_index": shard_index,
                "num_shards": sharded.num_shards,
                "shard_root": roots[shard_index],
                "composite_root": link.computed_root(roots[shard_index]),
                "link": link.to_bytes(),
            }

        return await self._run(build)

    async def _op_get_sth(self, message: dict) -> dict:
        """The current signed tree head (DESIGN.md §16).

        ``composite=True`` asks the sharded deployment behind this server
        for its composite head (per-shard heads folded through the shard
        map); it is refused on a server that fronts no sharded deployment
        rather than silently downgraded to a shard-local head.
        """
        if message.get("composite"):
            if self.shard_context is None:
                raise UsageError(
                    "composite tree heads need a sharded deployment behind "
                    "this server; this server fronts a solo ledger"
                )
            sharded, _shard_index = self.shard_context
            head = await self._run(sharded.get_sth)
        else:
            head = await self._run(self.ledger.get_sth)
        return {"sth": head.to_bytes()}

    async def _op_get_sth_range(self, message: dict) -> dict:
        start = _require_int(message.get("start"), "start")
        end = _require_int(message.get("end"), "end")
        heads = await self._run(lambda: self.ledger.get_sth_range(start, end))
        return {"sths": [head.to_bytes() for head in heads]}

    async def _op_get_consistency(self, message: dict) -> dict:
        from ..transparency.sth import SignedTreeHead

        def decode(field: str) -> SignedTreeHead:
            try:
                return SignedTreeHead.from_bytes(
                    _require_bytes(message.get(field), field)
                )
            except (EncodingError, KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"undecodable tree head '{field}': {exc}") from None

        old, new = decode("old"), decode("new")
        bundle, assertion = await self._run(
            lambda: self.ledger.get_consistency(old, new)
        )
        return {
            "bundle": bundle.to_bytes() if bundle is not None else b"",
            "assertion": assertion.to_bytes(),
        }

    async def _op_export(self, message: dict) -> dict:
        """Build an offline export bundle and ship its canonical bytes.

        A server fronting one shard of a sharded deployment exports the
        *whole* deployment (all shards under the composite head) — a bundle
        restricted to one shard could never verify the composite root.  The
        response is one frame, so deployments whose bundle exceeds the frame
        cap fail typed here (ProtocolError on send) rather than truncating.
        """
        clues = message.get("clues") or []
        if not isinstance(clues, list):
            raise ProtocolError("'clues' must be a list of strings")
        clues = tuple(_require_str(clue, "clue") for clue in clues)
        from ..export.bundle import export_bundle

        target: Any = self.ledger
        if self.shard_context is not None:
            target = self.shard_context[0]
        bundle = await self._run(lambda: export_bundle(target, clues=clues))
        return {"bundle": bundle.to_bytes()}

    async def _op_stats(self, message: dict) -> dict:
        stats = self.service.stats()
        stats["ledger_size"] = self.ledger.size
        stats["connections"] = len(self._connections)
        return stats


# ------------------------------------------------------- field validation


def _require_bytes(value: Any, field: str) -> bytes:
    if not isinstance(value, (bytes, bytearray)):
        raise ProtocolError(f"'{field}' must be bytes")
    return bytes(value)


def _require_str(value: Any, field: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"'{field}' must be a string")
    return value


def _require_int(value: Any, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"'{field}' must be an integer")
    return value


# -------------------------------------------------------------- threading


class ServerThread:
    """Host a :class:`LedgerServer` on a background event loop.

    The synchronous world's handle on a server: tests, benchmarks, the
    ``stats`` workload, and examples all start one of these, talk to it over
    real sockets, and tear it down with :meth:`close` (graceful drain) or
    :meth:`kill` (simulated crash — transports die mid-flight).
    """

    def __init__(
        self,
        target: Ledger | LedgerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        server_cls: type[LedgerServer] = LedgerServer,
        **kwargs: Any,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.server = server_cls(target, host, port, **kwargs)
        self._thread = threading.Thread(
            target=self._run, name="ledger-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise TimeoutError("server thread failed to start within 30s")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            # Settle whatever close()/kill() left cancelled, then free the loop.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown from any thread; idempotent."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.close(drain=drain), self._loop
            )
            future.result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt shutdown: connections die mid-flight, nothing drains."""
        self.close(drain=False, timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
