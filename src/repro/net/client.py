"""Remote ledger client SDK: asyncio core plus a synchronous wrapper.

The design rule is the paper's threat model: **the server is untrusted**.
Every byte that comes back over the socket is a *claim* until the client has
checked it against something it trusts:

* receipts are accepted only if the LSP signature verifies against the
  public key pinned at connect time AND the receipt echoes the exact
  request hash the client signed (:class:`~repro.core.receipt.Receipt` is
  the pi_s evidence — a receipt for the wrong request convicts nobody);
* existence proofs are folded locally (:class:`~repro.merkle.fam.FamProof`
  against the client's own :class:`~repro.merkle.fam.AnchorStore`, advanced
  exactly like the in-process :class:`~repro.core.client.LedgerClient`:
  epoch 0 bootstrapped from raw leaf digests, later epochs via merged-leaf
  link proofs, the live epoch via consistency proofs);
* clue proofs are verified with the local CM-Tree verifier.

What the client necessarily takes on faith is documented in DESIGN.md §14's
trust-model table (completeness of ``list_tx``, freshness of roots between
syncs — the non-equivocation gap ROADMAP item 4 closes).

:class:`AsyncRemoteLedger` is the asyncio core: one connection, pipelined
request ids, out-of-order completion.  :class:`RemoteLedgerClient` wraps it
for synchronous code by parking the event loop on a background thread; it
is thread-safe and is what ``repro.api.connect("ledger://host:port")``
hands out (as a :class:`RemoteLedgerSession`).
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import socket
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..export.bundle import ExportBundle

from ..core.client import ClientState
from ..core.errors import (
    AuthenticationError,
    AuthorizationError,
    JournalNotFoundError,
    JournalOccultedError,
    JournalPurgedError,
    LedgerError,
    UsageError,
    VerificationFailure,
)
from ..core.journal import ClientRequest, Journal
from ..core.receipt import Receipt
from ..core.verification import VerifyLevel, VerifyResult, VerifyTarget
from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair, PublicKey, verify_batch
from ..merkle.cmtree import ClueProof
from ..merkle.consistency import ConsistencyProof
from ..merkle.fam import AnchorStore, FamProof
from ..merkle.proofs import MembershipProof
from ..merkle.shrubs import FrontierAccumulator
from ..service import ServiceClosedError, ServiceOverloadedError, ServiceTimeout
from ..session import SessionHelpers
from ..transparency.censorship import SubmissionAck
from ..transparency.sth import (
    ConsistencyAssertion,
    ConsistencyBundle,
    SignedTreeHead,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameBatcher,
    ProtocolError,
    read_frame,
    request as make_request,
)

__all__ = [
    "AsyncRemoteLedger",
    "RemoteLedgerClient",
    "RemoteLedgerError",
    "RemoteLedgerSession",
]


class RemoteLedgerError(LedgerError):
    """Transport-level failure: connection lost, server gone, bad handshake."""


#: Server-side exception types that re-raise as their local counterparts.
_ERROR_TYPES: dict[str, type[Exception]] = {
    "AuthenticationError": AuthenticationError,
    "AuthorizationError": AuthorizationError,
    "UsageError": UsageError,
    "VerificationFailure": VerificationFailure,
    "JournalNotFoundError": JournalNotFoundError,
    "JournalOccultedError": JournalOccultedError,
    "JournalPurgedError": JournalPurgedError,
    "ServiceClosedError": ServiceClosedError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "ServiceTimeout": ServiceTimeout,
    "ProtocolError": ProtocolError,
}


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle: frames are small and latency-sensitive; batching is
    the group-commit service's job, not the kernel's."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _raise_remote(error: Any) -> None:
    if not isinstance(error, dict):
        raise RemoteLedgerError(f"malformed error response: {error!r}")
    error_type = error.get("type", "?")
    detail = error.get("message", "")
    exc_class = _ERROR_TYPES.get(error_type, RemoteLedgerError)
    raise exc_class(f"[remote {error_type}] {detail}")


class _ReceiptChecker:
    """Micro-batched LSP receipt verification.

    Receipts whose responses land in the same event-loop burst (the common
    case under pipelining: the server group-commits a window and writes the
    response frames back-to-back) are verified with **one** batched ECDSA
    pass — all receipts carry the same LSP key, so
    :func:`repro.crypto.keys.verify_batch` collapses the group into a single
    randomised aggregate equation plus a shared inversion, the same fast
    path the audit engine uses.  A lone receipt costs exactly one ordinary
    verification; correctness is per-receipt either way (a bad signature in
    a batch is re-checked and attributed individually).
    """

    def __init__(self, remote: "AsyncRemoteLedger") -> None:
        self._remote = remote
        self._pending: list[tuple[Receipt, ClientRequest, asyncio.Future]] = []
        self._scheduled = False

    def check(self, receipt: Receipt, request: ClientRequest) -> asyncio.Future:
        """Future resolving to the receipt once verified (or failing typed)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((receipt, request, future))
        if not self._scheduled:
            self._scheduled = True
            loop.call_soon(self._drain)
        return future

    def _drain(self) -> None:
        self._scheduled = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        key = self._remote.lsp_public_key
        if key is None:
            verdicts = [False] * len(pending)
        else:
            verdicts = verify_batch(
                [
                    (key, sha256(receipt.signing_payload()), receipt.lsp_signature)
                    for receipt, _request, _future in pending
                ]
            )
        for (receipt, request, future), ok in zip(pending, verdicts):
            if future.done():
                continue
            if not ok:
                future.set_exception(
                    VerificationFailure("LSP receipt signature invalid")
                )
            elif receipt.request_hash != request.request_hash():
                future.set_exception(
                    VerificationFailure("receipt does not cover the submitted request")
                )
            else:
                future.set_result(receipt)


class _SubmitCoalescer:
    """Client-side group commit: pipelined :meth:`AsyncRemoteLedger.submit`
    calls landing in the same event-loop tick ride one ``append_batch``
    frame.

    The per-frame costs — request envelope, frame encode, send/drain, the
    server's read/dispatch/response cycle — are paid once per group instead
    of once per append, which is what keeps a single-process benchmark
    (client, server, and commit writer all sharing one GIL) honest about
    *protocol* overhead rather than measuring Python thread churn.  Receipts
    come back in request order and each caller's future resolves with its
    own locally-verified receipt; a rejected group fails every member with
    the server's typed error (use :meth:`AsyncRemoteLedger.append` for
    per-request isolation).
    """

    def __init__(self, remote: "AsyncRemoteLedger", max_group: int = 64) -> None:
        self._remote = remote
        self._max_group = max_group
        self._pending: list[tuple[ClientRequest, asyncio.Future]] = []
        self._scheduled = False

    def submit(self, request: ClientRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if not self._scheduled:
            self._scheduled = True
            loop.call_soon(self._launch)
        return future

    def _launch(self) -> None:
        self._scheduled = False
        pending, self._pending = self._pending, []
        while pending:
            group, pending = pending[: self._max_group], pending[self._max_group :]
            asyncio.ensure_future(self._send_group(group))

    async def _send_group(
        self, group: list[tuple[ClientRequest, asyncio.Future]]
    ) -> None:
        requests = [request for request, _future in group]
        try:
            if len(group) == 1:
                receipts = [await self._remote.append(requests[0])]
            else:
                receipts = await self._remote.append_batch(requests)
        except BaseException as exc:
            for _request, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_request, future), receipt in zip(group, receipts):
            if not future.done():
                future.set_result(receipt)


class AsyncRemoteLedger:
    """One pipelined connection to a :class:`~repro.net.server.LedgerServer`.

    Create with :meth:`connect`; every public coroutine may be in flight
    concurrently — responses are matched by request id, so slow bulk
    operations never block fast ones.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._batcher = FrameBatcher(writer, max_bytes=max_frame_bytes)
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._drain_lock = asyncio.Lock()
        self._closed = False
        self._conn_error: BaseException | None = None
        self._reader_task: asyncio.Task | None = None
        self._checker = _ReceiptChecker(self)
        self._coalescer = _SubmitCoalescer(self)
        # Filled by the hello handshake.
        self.ledger_uri: str = ""
        self.lsp_public_key: PublicKey | None = None
        self.ca_public_key: PublicKey | None = None
        self.fractal_height: int = 0

    # ---------------------------------------------------------- lifecycle

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        expected_lsp_key: PublicKey | bytes | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "AsyncRemoteLedger":
        """Open a connection and run the hello handshake.

        ``expected_lsp_key`` is the out-of-band trust root for receipts: a
        :class:`PublicKey` (or its serialized bytes) the server's claimed
        LSP key must equal.  Without it the key is pinned trust-on-first-use
        — fine for tests and demos, documentedly weaker for deployments.
        """
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise RemoteLedgerError(f"cannot reach ledger at {host}:{port}: {exc}") from None
        _set_nodelay(writer)
        remote = cls(reader, writer, max_frame_bytes=max_frame_bytes)
        remote._reader_task = asyncio.ensure_future(remote._reader_loop())
        try:
            hello = await remote._call("hello", protocol=PROTOCOL_VERSION)
        except BaseException:
            await remote.close()
            raise
        remote.ledger_uri = hello["ledger_uri"]
        remote.fractal_height = hello["fractal_height"]
        claimed = bytes(hello["lsp_public_key"])
        if expected_lsp_key is not None:
            expected = (
                expected_lsp_key.to_bytes()
                if isinstance(expected_lsp_key, PublicKey)
                else bytes(expected_lsp_key)
            )
            if claimed != expected:
                await remote.close()
                raise VerificationFailure(
                    "server's claimed LSP key does not match the expected key"
                )
        remote.lsp_public_key = PublicKey.from_bytes(claimed)
        remote.ca_public_key = PublicKey.from_bytes(bytes(hello["ca_public_key"]))
        return remote

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(RemoteLedgerError("connection closed"))
        self._batcher.flush()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    # ----------------------------------------------------------- plumbing

    async def _reader_loop(self) -> None:
        try:
            while True:
                message = await read_frame(self._reader, max_bytes=self._max_frame_bytes)
                future = self._pending.pop(message["id"], None)
                if future is None or future.done():
                    continue  # late response for an abandoned request
                if message["ok"]:
                    future.set_result(message.get("result"))
                else:
                    try:
                        _raise_remote(message.get("error"))
                    except BaseException as exc:
                        future.set_exception(exc)
        except asyncio.CancelledError:
            raise
        except asyncio.IncompleteReadError:
            self._fail_pending(RemoteLedgerError("server closed the connection"))
        except (ConnectionError, OSError) as exc:
            self._fail_pending(RemoteLedgerError(f"connection lost: {exc}"))
        except ProtocolError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, error: BaseException) -> None:
        # Set before draining: a _call racing with this sees the error and
        # fails fast instead of parking a future nobody will ever resolve.
        self._conn_error = error
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _call(self, op: str, **fields: Any) -> dict:
        if self._closed:
            raise RemoteLedgerError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        if self._conn_error is not None:
            self._pending.pop(request_id, None)
            raise self._conn_error
        try:
            # Pipelined requests issued in the same loop tick coalesce into
            # one socket write; the drain (behind a lock — concurrent
            # StreamWriter.drain is not portable) keeps TCP backpressure.
            self._batcher.send(make_request(request_id, op, **fields))
            async with self._drain_lock:
                await self._batcher.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise RemoteLedgerError(f"connection lost: {exc}") from None
        except BaseException:
            # Nothing went on the wire (e.g. ProtocolError: the request
            # exceeds the frame cap) — drop the pending entry or it leaks
            # for the life of the connection.
            self._pending.pop(request_id, None)
            raise
        return await future

    # ------------------------------------------------------------ appends

    async def append(self, request: ClientRequest, *, verify: bool = True) -> Receipt:
        """Submit one pre-signed request; returns the locally-verified receipt."""
        result = await self._call("append", request=request.to_bytes())
        receipt = Receipt.from_bytes(bytes(result["receipt"]))
        return await self._checker.check(receipt, request) if verify else receipt

    async def append_acked(
        self,
        request: ClientRequest,
        *,
        deadline_epochs: int | None = None,
        verify: bool = True,
    ) -> tuple[Receipt, SubmissionAck]:
        """Append with a censorship-accountable admission ack (DESIGN.md §16).

        The server issues the :class:`SubmissionAck` *before* submitting, so
        its tree coordinates pin the state at admission.  Both the receipt
        and the ack are verified locally: LSP signature, exact request-hash
        echo, and ledger-uri match — an ack for somebody else's request
        convicts nobody.
        """
        fields: dict[str, Any] = {"request": request.to_bytes(), "want_ack": True}
        if deadline_epochs is not None:
            fields["ack_deadline"] = int(deadline_epochs)
        result = await self._call("append", **fields)
        receipt = Receipt.from_bytes(bytes(result["receipt"]))
        blob = bytes(result.get("ack") or b"")
        if not blob:
            raise VerificationFailure("server omitted the requested submission ack")
        ack = SubmissionAck.from_bytes(blob)
        if verify:
            receipt = await self._checker.check(receipt, request)
            self._check_ack(ack, request)
        return receipt, ack

    def _check_ack(self, ack: SubmissionAck, request: ClientRequest) -> None:
        if self.lsp_public_key is None or not ack.verify(self.lsp_public_key):
            raise VerificationFailure("submission ack failed LSP signature check")
        if ack.request_hash != request.request_hash():
            raise VerificationFailure("submission ack echoes a different request")
        if ack.ledger_uri != self.ledger_uri:
            raise VerificationFailure("submission ack speaks for a different ledger")

    async def submit(self, request: ClientRequest) -> Receipt:
        """Pipelined append: same-tick submits coalesce into one
        ``append_batch`` frame (see :class:`_SubmitCoalescer`); the receipt
        is verified exactly like :meth:`append`'s."""
        return await self._coalescer.submit(request)

    async def append_batch(
        self, requests: list[ClientRequest], *, verify: bool = True
    ) -> list[Receipt]:
        result = await self._call(
            "append_batch", requests=[request.to_bytes() for request in requests]
        )
        receipts = [Receipt.from_bytes(bytes(blob)) for blob in result["receipts"]]
        if len(receipts) != len(requests):
            raise VerificationFailure(
                f"server returned {len(receipts)} receipts for {len(requests)} requests"
            )
        if verify:
            # Enqueued synchronously, so the whole batch lands in one
            # checker drain — a single aggregated ECDSA pass.
            await asyncio.gather(
                *(
                    self._checker.check(receipt, request)
                    for request, receipt in zip(requests, receipts)
                )
            )
        return receipts

    # -------------------------------------------------------------- reads

    async def get_journal(self, jsn: int) -> Journal:
        result = await self._call("get_journal", jsn=jsn)
        return Journal.from_bytes(bytes(result["journal"]))

    async def list_tx(self, clue: str) -> list[int]:
        return list((await self._call("list_tx", clue=clue))["jsns"])

    async def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        result = await self._call("get_proof", jsn=jsn, anchored=anchored)
        return FamProof.from_bytes(bytes(result["proof"]))

    async def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        result = await self._call("get_proofs", jsns=list(jsns), anchored=anchored)
        return [FamProof.from_bytes(bytes(blob)) for blob in result["proofs"]]

    async def prove_clue(self, clue: str) -> tuple[ClueProof, Digest]:
        """The clue proof plus the server's *claimed* CM-Tree1 root."""
        result = await self._call("prove_clue", clue=clue)
        return ClueProof.from_bytes(bytes(result["proof"])), bytes(result["state_root"])

    async def get_root(self) -> dict:
        """The server's claimed commitments (verify before trusting)."""
        result = await self._call("get_root")
        blob = bytes(result["latest_receipt"])
        return {
            "root": bytes(result["root"]),
            "state_root": bytes(result["state_root"]),
            "size": result["size"],
            "latest_receipt": Receipt.from_bytes(blob) if blob else None,
        }

    async def receipt_for(self, jsn: int) -> Receipt | None:
        blob = bytes((await self._call("receipt_for", jsn=jsn))["receipt"])
        return Receipt.from_bytes(blob) if blob else None

    async def register(self, member_id: str, role: str, public_key: PublicKey) -> None:
        """Ask the server to mint a member.  Refused (AuthorizationError)
        unless the server was started with ``allow_register=True``, and
        only role ``"user"`` is ever accepted over the wire."""
        await self._call(
            "register", member_id=member_id, role=role, public_key=public_key.to_bytes()
        )

    async def verify_journal_remote(self, journal: Journal) -> bool:
        """Ask the *server* to verify (advisory only — it could lie)."""
        return bool((await self._call("verify_journal", journal=journal.to_bytes()))["ok"])

    async def fam_info(self) -> dict:
        return await self._call("fam_info")

    async def epoch_anchor(self, epoch: int) -> Digest:
        return bytes((await self._call("epoch_anchor", epoch=epoch))["root"])

    async def epoch_link(self, epoch: int) -> MembershipProof:
        result = await self._call("epoch_link", epoch=epoch)
        return MembershipProof.from_bytes(bytes(result["proof"]))

    async def epoch_leaves(self, epoch: int = 0) -> list[Digest]:
        result = await self._call("epoch_leaves", epoch=epoch)
        return [bytes(digest) for digest in result["digests"]]

    async def live_consistency(self, old_size: int) -> ConsistencyProof:
        result = await self._call("live_consistency", old_size=old_size)
        return ConsistencyProof.from_bytes(bytes(result["proof"]))

    async def epoch_consistency(self, epoch: int, old_size: int) -> ConsistencyProof:
        result = await self._call("epoch_consistency", epoch=epoch, old_size=old_size)
        return ConsistencyProof.from_bytes(bytes(result["proof"]))

    async def shard_info(self) -> dict:
        """This server's place in its deployment's shard map (DESIGN.md §15).

        Unsharded servers answer with a one-leaf map (``num_shards == 1``).
        """
        result = await self._call("shard_info")
        return {
            "shard_index": int(result["shard_index"]),
            "num_shards": int(result["num_shards"]),
            "shard_root": bytes(result["shard_root"]),
            "composite_root": bytes(result["composite_root"]),
            "link": MembershipProof.from_bytes(bytes(result["link"])),
        }

    # ------------------------------------------------------- transparency

    def _check_sth(self, head: SignedTreeHead) -> SignedTreeHead:
        """Every tree head off the wire is a claim until its LSP signature
        verifies against the pinned key and it speaks for this stream."""
        if self.lsp_public_key is None or not head.verify(self.lsp_public_key):
            raise VerificationFailure("tree head failed LSP signature check")
        if head.ledger_uri != self.ledger_uri:
            raise VerificationFailure("tree head speaks for a different ledger")
        return head

    async def get_sth(self, *, composite: bool = False) -> SignedTreeHead:
        """The server's current signed tree head, signature-checked locally.

        ``composite=True`` asks the sharded deployment behind the server for
        its composite head; refused (UsageError) on solo servers.
        """
        result = await self._call("get_sth", composite=bool(composite))
        return self._check_sth(SignedTreeHead.from_bytes(bytes(result["sth"])))

    async def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        result = await self._call("get_sth_range", start=int(start), end=int(end))
        return [
            self._check_sth(SignedTreeHead.from_bytes(bytes(blob)))
            for blob in result["sths"]
        ]

    async def get_consistency(
        self, old: SignedTreeHead, new: SignedTreeHead
    ) -> tuple[ConsistencyBundle | None, ConsistencyAssertion]:
        """Consistency bundle + signed assertion connecting two tree heads.

        The assertion's LSP signature is checked here; whether its roots
        *agree* with the heads is the witness's judgement call
        (:meth:`repro.transparency.Witness.observe_assertion`) — a
        contradiction is evidence, not a transport error.
        """
        result = await self._call(
            "get_consistency", old=old.to_bytes(), new=new.to_bytes()
        )
        blob = bytes(result["bundle"])
        bundle = ConsistencyBundle.from_bytes(blob) if blob else None
        assertion = ConsistencyAssertion.from_bytes(bytes(result["assertion"]))
        if self.lsp_public_key is None or not assertion.verify(self.lsp_public_key):
            raise VerificationFailure(
                "consistency assertion failed LSP signature check"
            )
        return bundle, assertion

    async def export(self, clues: tuple[str, ...] = ()) -> bytes:
        """Fetch a full offline export bundle (canonical container bytes).

        The bundle is built server-side and travels as one frame, so it is
        subject to the protocol's frame cap — a deployment too large for
        :data:`~repro.net.protocol.MAX_FRAME_BYTES` must be exported at the
        operator's console instead.  The bytes come back *unparsed*; callers
        decode (and thereby CRC-check) with
        :meth:`repro.export.ExportBundle.from_bytes`.
        """
        result = await self._call("export", clues=list(clues))
        return bytes(result["bundle"])

    async def stats(self) -> dict:
        return await self._call("stats")

    async def ping(self) -> int:
        return (await self._call("ping"))["size"]


class RemoteLedgerClient:
    """Synchronous verifying remote client — the over-the-wire twin of
    :class:`~repro.core.client.LedgerClient`.

    Owns a background event loop carrying one :class:`AsyncRemoteLedger`
    connection, a local signing identity, and client-side trust state
    (receipts, epoch anchors).  All methods are thread-safe: any number of
    threads may append/verify through one client, and their requests
    pipeline onto the single connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        member_id: str | None = None,
        keypair: KeyPair | None = None,
        expected_lsp_key: PublicKey | bytes | None = None,
        timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.member_id = member_id
        self.keypair = keypair
        self.timeout = timeout
        self.anchors = AnchorStore()
        self.state = ClientState()
        self._nonce_lock = threading.Lock()
        self._nonce = 0
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="ledger-client", daemon=True
        )
        self._thread.start()
        try:
            self._remote: AsyncRemoteLedger = self._submit(
                AsyncRemoteLedger.connect(
                    host,
                    port,
                    expected_lsp_key=expected_lsp_key,
                    max_frame_bytes=max_frame_bytes,
                )
            ).result(timeout)
        except BaseException:
            self._stop_loop()
            raise

    # ----------------------------------------------------------- plumbing

    def _submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _wait(self, coro, timeout: float | None = None):
        return self._submit(coro).result(self.timeout if timeout is None else timeout)

    def _stop_loop(self) -> None:
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()

    def close(self) -> None:
        """Close the connection and release the background loop.  Idempotent."""
        if not self._loop.is_closed() and self._thread.is_alive():
            try:
                self._submit(self._remote.close()).result(self.timeout)
            except Exception:
                pass
            self._stop_loop()

    def __enter__(self) -> "RemoteLedgerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def ledger_uri(self) -> str:
        return self._remote.ledger_uri

    @property
    def lsp_public_key(self) -> PublicKey | None:
        return self._remote.lsp_public_key

    # ------------------------------------------------------------ appends

    def _build_request(
        self,
        payload: bytes,
        clues: tuple[str, ...],
        *,
        member_id: str | None = None,
        keypair: KeyPair | None = None,
    ) -> ClientRequest:
        member_id = member_id if member_id is not None else self.member_id
        keypair = keypair if keypair is not None else self.keypair
        if member_id is None or keypair is None:
            raise UsageError(
                "no signing identity: construct the client with member_id and "
                "keypair, or pass them per call"
            )
        with self._nonce_lock:
            self._nonce += 1
            nonce = self._nonce
        import time as _time

        return ClientRequest.build(
            self.ledger_uri,
            member_id,
            payload,
            clues=tuple(clues),
            nonce=nonce.to_bytes(8, "big"),
            client_timestamp=_time.time(),
        ).signed_by(keypair)

    def append(
        self,
        payload: bytes | None = None,
        clues: tuple[str, ...] = (),
        *,
        request: ClientRequest | None = None,
        timeout: float | None = None,
        member_id: str | None = None,
        keypair: KeyPair | None = None,
    ) -> Receipt:
        """Sign locally, submit remotely, verify the receipt locally."""
        if (payload is None) == (request is None):
            raise UsageError("append() takes exactly one of payload or request=")
        if request is None:
            request = self._build_request(
                payload, clues, member_id=member_id, keypair=keypair
            )
        receipt = self._wait(self._remote.append(request), timeout)
        self.state.receipts[receipt.jsn] = receipt
        return receipt

    def append_acked(
        self,
        payload: bytes | None = None,
        clues: tuple[str, ...] = (),
        *,
        request: ClientRequest | None = None,
        deadline_epochs: int | None = None,
        timeout: float | None = None,
        member_id: str | None = None,
        keypair: KeyPair | None = None,
    ) -> tuple[Receipt, SubmissionAck]:
        """Append plus a locally-verified admission ack (DESIGN.md §16)."""
        if (payload is None) == (request is None):
            raise UsageError("append_acked() takes exactly one of payload or request=")
        if request is None:
            request = self._build_request(
                payload, clues, member_id=member_id, keypair=keypair
            )
        receipt, ack = self._wait(
            self._remote.append_acked(request, deadline_epochs=deadline_epochs),
            timeout,
        )
        self.state.receipts[receipt.jsn] = receipt
        return receipt, ack

    def append_batch(
        self,
        items: list[tuple[bytes, tuple[str, ...]]] | None = None,
        *,
        requests: list[ClientRequest] | None = None,
        timeout: float | None = None,
        member_id: str | None = None,
        keypair: KeyPair | None = None,
    ) -> list[Receipt]:
        if (items is None) == (requests is None):
            raise UsageError("append_batch() takes exactly one of items or requests=")
        if requests is None:
            requests = [
                self._build_request(
                    payload, clues, member_id=member_id, keypair=keypair
                )
                for payload, clues in items
            ]
        receipts = self._wait(self._remote.append_batch(requests), timeout)
        for receipt in receipts:
            self.state.receipts[receipt.jsn] = receipt
        return receipts

    def submit(self, request: ClientRequest):
        """Fire-and-collect pipelining: returns a concurrent Future[Receipt].

        The receipt is verified (LSP signature + request echo) before the
        future resolves, exactly like :meth:`append`.  Submits in flight
        together coalesce into ``append_batch`` frames on the wire — a
        rejected group fails every member's future with the typed error.
        """

        async def _do() -> Receipt:
            receipt = await self._remote.submit(request)
            self.state.receipts[receipt.jsn] = receipt
            return receipt

        return self._submit(_do())

    def receipt_for(self, jsn: int) -> Receipt | None:
        return self.state.receipts.get(jsn)

    # -------------------------------------------------------------- reads

    def get_journal(self, jsn: int) -> Journal:
        return self._wait(self._remote.get_journal(jsn))

    def list_tx(self, clue: str) -> list[int]:
        return self._wait(self._remote.list_tx(clue))

    def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        return self._wait(self._remote.get_proof(jsn, anchored))

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        return self._wait(self._remote.get_proofs(jsns, anchored))

    def register(self, member_id: str, role: str, public_key: PublicKey) -> None:
        self._wait(self._remote.register(member_id, role, public_key))

    def export(self, clues: tuple[str, ...] = ()) -> bytes:
        """Raw offline export bundle bytes from the server (one frame)."""
        return self._wait(self._remote.export(tuple(clues)))

    def stats(self) -> dict:
        return self._wait(self._remote.stats())

    def ping(self) -> int:
        return self._wait(self._remote.ping())

    # ------------------------------------------------------------- anchors

    def sync_anchors(self) -> int:
        """Advance the trusted-anchor store against the remote fam — the
        over-the-wire :meth:`LedgerClient.sync_anchors`.

        Epoch 0 is bootstrapped by downloading and re-hashing its raw leaf
        digests; each later epoch is anchored via its merged-leaf link proof;
        the live epoch is tracked with consistency proofs so a server that
        rewrites *any* committed journal is caught on the next sync.

        Raises:
            VerificationFailure: any link fails — nothing unverified is
                ever anchored.
        """
        info = self._wait(self._remote.fam_info())
        completed = info["num_epochs"] - 1
        added = 0
        while self.state.anchored_epochs < completed:
            epoch = self.state.anchored_epochs
            claimed_root = self._wait(self._remote.epoch_anchor(epoch))
            if epoch == 0:
                leaves = self._wait(self._remote.epoch_leaves(0))
                frontier = FrontierAccumulator()
                for leaf in leaves:
                    frontier.append_leaf(leaf)
                if frontier.root() != claimed_root:
                    raise VerificationFailure("epoch 0 bootstrap verification failed")
                self.anchors.add(0, claimed_root)
            else:
                link = self._wait(self._remote.epoch_link(epoch))
                if not self.anchors.advance(epoch, claimed_root, link):
                    raise VerificationFailure(
                        f"merged-leaf link for epoch {epoch} failed"
                    )
            self.state.anchored_epochs += 1
            added += 1
        self._sync_live(info)
        return added

    def _sync_live(self, info: dict) -> None:
        current_epoch = info["num_epochs"] - 1
        live_size = info["live_size"]
        live_root = bytes(info["live_root"])
        state = self.state
        if state.live_root is not None and state.live_size > 0:
            if state.live_epoch_index == current_epoch:
                if state.live_size == live_size:
                    if live_root != state.live_root:
                        raise VerificationFailure("live commitment changed without appends")
                elif state.live_size < live_size:
                    proof = self._wait(self._remote.live_consistency(state.live_size))
                    if not proof.verify(state.live_root, live_root):
                        raise VerificationFailure(
                            "live epoch evolved non-append-only (history rewritten?)"
                        )
                else:
                    raise VerificationFailure("live epoch shrank")
            else:
                sealed_epoch = state.live_epoch_index
                sealed_root = self._wait(self._remote.epoch_anchor(sealed_epoch))
                proof = self._wait(
                    self._remote.epoch_consistency(sealed_epoch, state.live_size)
                )
                if not proof.verify(state.live_root, sealed_root):
                    raise VerificationFailure(
                        f"sealed epoch {sealed_epoch} does not extend the state "
                        "this client verified"
                    )
                anchor = self.anchors.get(sealed_epoch)
                if anchor is not None and anchor != sealed_root:
                    raise VerificationFailure(
                        f"sealed epoch {sealed_epoch} root disagrees with anchor"
                    )
        state.live_epoch_index = current_epoch
        state.live_size = live_size
        state.live_root = live_root

    # ----------------------------------------------------------- verifying

    def verify_journal(self, journal: Journal) -> bool:
        """O(delta) existence verification against the client's own anchors."""
        proof = self.get_proof(journal.jsn, anchored=True)
        if proof.epoch_index == proof.num_epochs - 1:
            if self.state.live_root is None:
                return False
            try:
                return (
                    proof.epoch_proof.computed_root(journal.tx_hash())
                    == self.state.live_root
                )
            except (ValueError, IndexError):
                return False
        anchor = self.anchors.get(proof.epoch_index)
        if anchor is None:
            return False
        try:
            return proof.epoch_proof.computed_root(journal.tx_hash()) == anchor
        except (ValueError, IndexError):
            return False

    def shard_info(self) -> dict:
        """Raw shard-map claim from the server; see :meth:`verify_shard_link`."""
        return self._wait(self._remote.shard_info())

    def verify_shard_link(self, *, max_attempts: int = 4) -> dict:
        """Verify this shard's membership in the deployment's composite root.

        Checks that the shard root the server links into the composite root
        is exactly the live fam root this client has verified append-only
        through :meth:`sync_anchors` — so the link inherits the anchor
        store's tamper evidence — and that the inclusion link folds it to
        the claimed composite root at the claimed shard index.  Returns the
        :meth:`shard_info` dict on success.

        The composite root itself is the server's claim: pin it across the
        deployment's listeners (a consistent deployment reports one value
        per shard-map snapshot) or against out-of-band publication if
        non-equivocation matters (DESIGN.md §15 trust model).

        Raises:
            VerificationFailure: link inconsistent, or the shard kept
                advancing past this client for ``max_attempts`` rounds.
        """
        for _ in range(max_attempts):
            info = self.shard_info()
            link: MembershipProof = info["link"]
            if (
                link.leaf_index != info["shard_index"]
                or link.tree_size != info["num_shards"]
                or not link.verify(info["shard_root"], info["composite_root"])
            ):
                raise VerificationFailure(
                    "shard link does not place this shard's root in the "
                    "claimed composite root"
                )
            if info["shard_root"] == self.state.live_root:
                return info
            # The shard committed between our last sync and the snapshot;
            # catch the anchor store up (verified) and re-snapshot.
            self.sync_anchors()
            if info["shard_root"] == self.state.live_root:
                return info
        raise VerificationFailure(
            f"shard root kept advancing past this client for {max_attempts} "
            "rounds; deployment too hot to pin, retry later"
        )

    def verify_clue(self, clue: str) -> bool:
        """Client-side N-lineage verification of an entire clue lineage.

        The CM-Tree1 root the proof folds to is the server's claim — pin it
        against out-of-band state if non-equivocation matters (DESIGN.md
        §14 trust model).
        """
        jsns = self.list_tx(clue)
        if not jsns:
            return False
        try:
            journals = [self.get_journal(jsn) for jsn in jsns]
        except LedgerError:
            return False
        proof, claimed_state_root = self._wait(self._remote.prove_clue(clue))
        digests = {i: journal.tx_hash() for i, journal in enumerate(journals)}
        return proof.verify(digests, claimed_state_root)

    def prove_clue(self, clue: str) -> tuple[ClueProof, Digest]:
        """The clue proof plus the server's *claimed* CM-Tree1 root."""
        return self._wait(self._remote.prove_clue(clue))

    def verify_journal_remote(self, journal: Journal) -> bool:
        """Ask the *server* to verify (advisory only — it could lie)."""
        return self._wait(self._remote.verify_journal_remote(journal))

    # ------------------------------------------------------- transparency

    def get_sth(self, *, composite: bool = False) -> SignedTreeHead:
        """The server's current tree head, LSP-signature-checked locally."""
        return self._wait(self._remote.get_sth(composite=composite))

    def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        return self._wait(self._remote.get_sth_range(start, end))

    def get_consistency(
        self, old: SignedTreeHead, new: SignedTreeHead
    ) -> tuple[ConsistencyBundle | None, ConsistencyAssertion]:
        return self._wait(self._remote.get_consistency(old, new))


def _coerce_enum(enum_cls: type, value: Any):
    """Accept the enum member itself or its string value ("tx", "server")."""
    if isinstance(value, enum_cls):
        return value
    try:
        return enum_cls(value)
    except ValueError:
        raise UsageError(
            f"{enum_cls.__name__} expected one of "
            f"{[member.value for member in enum_cls]}, got {value!r}"
        ) from None


class RemoteLedgerSession(SessionHelpers):
    """The v2-session face of a remote connection.

    ``repro.api.connect("ledger://host:port")`` returns one of these; it
    implements :class:`~repro.session.VerifyingSession` with signatures
    identical to :class:`~repro.api.LedgerSession`, so callers move between
    local and remote backends without code changes.  Kwargs this transport
    cannot honour are rejected with a typed
    :class:`~repro.core.errors.UsageError` naming the transport, never
    silently swallowed.  Verification happens in the underlying
    :class:`RemoteLedgerClient` — receipts, acks, and tree heads arrive
    pre-checked against the pinned LSP key.
    """

    transport = "remote"

    def __init__(
        self,
        host: str,
        port: int,
        *,
        lgid: str | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        expected_lsp_key: PublicKey | bytes | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.client = RemoteLedgerClient(
            host,
            port,
            member_id=client_id,
            keypair=keypair,
            expected_lsp_key=expected_lsp_key,
            timeout=timeout,
        )
        self.lgid = lgid if lgid is not None else self.client.ledger_uri
        self.client_id = client_id
        self.keypair = keypair

    def append(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        request: ClientRequest | None = None,
        timeout: float | None = None,
    ) -> Receipt:
        all_clues = self._normalize_clues(clue, clues)
        return self.client.append(
            payload,
            tuple(all_clues),
            request=request,
            timeout=timeout,
            member_id=client_id,
            keypair=keypair,
        )

    def append_batch(
        self,
        items: list[tuple[bytes, str | None]] | None = None,
        *,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        requests: list[ClientRequest] | None = None,
        max_workers: int | None = None,
        timeout: float | None = None,
    ) -> list[Receipt]:
        self._check_capabilities(max_workers=max_workers)
        pairs = None
        if items is not None:
            pairs = [
                (payload, (clue,) if clue else ()) for payload, clue in items
            ]
        return self.client.append_batch(
            pairs,
            requests=requests,
            timeout=timeout,
            member_id=client_id,
            keypair=keypair,
        )

    def append_acked(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        request: ClientRequest | None = None,
        deadline_epochs: int | None = None,
        timeout: float | None = None,
    ) -> tuple[Receipt, SubmissionAck]:
        """Append plus a locally-verified admission ack (DESIGN.md §16)."""
        all_clues = self._normalize_clues(clue, clues)
        return self.client.append_acked(
            payload,
            tuple(all_clues),
            request=request,
            deadline_epochs=deadline_epochs,
            timeout=timeout,
            member_id=client_id,
            keypair=keypair,
        )

    def list_tx(self, clue: str) -> list[Journal]:
        return [self.client.get_journal(jsn) for jsn in self.client.list_tx(clue)]

    def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        return self.client.get_proof(jsn, anchored)

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        return self.client.get_proofs(jsns, anchored)

    # ------------------------------------------------------------- exporting

    def export(
        self,
        path: Any = None,
        *,
        clues: tuple[str, ...] = (),
    ) -> "ExportBundle":
        """Export the server's ledger as an offline bundle (DESIGN.md §17).

        Same surface as :meth:`LedgerSession.export`: the server builds the
        bundle, the bytes are decoded here — which checks the container's
        magic and CRC, so a corrupted or truncated transfer fails typed —
        and ``path`` writes the canonical bytes to local disk.  Everything
        *inside* the container is still the server's claim until
        :func:`repro.export.verify_bundle` is run against pinned anchors.
        """
        from ..export.bundle import ExportBundle

        bundle = ExportBundle.from_bytes(self.client.export(tuple(clues)))
        if path is not None:
            bundle.write(path)
        return bundle

    # --------------------------------------------------------- transparency

    def get_sth(self) -> SignedTreeHead:
        """The server's current signed tree head, signature-checked locally."""
        return self.client.get_sth()

    def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        """Persisted epoch-close tree heads for epochs ``start..end``."""
        return self.client.get_sth_range(start, end)

    def get_consistency(
        self, old: SignedTreeHead, new: SignedTreeHead
    ) -> tuple[ConsistencyBundle | None, ConsistencyAssertion]:
        """Consistency proof + signed assertion connecting two tree heads."""
        return self.client.get_consistency(old, new)

    # ------------------------------------------------------------ verifying

    def sync_anchors(self) -> int:
        return self.client.sync_anchors()

    def verify(
        self,
        target: VerifyTarget | str,
        *,
        key: str | None = None,
        txdata: list[Journal] | None = None,
        rho: Any = None,
        root: bytes | None = None,
        level: VerifyLevel | str = VerifyLevel.SERVER,
    ) -> VerifyResult:
        """The Verify API over the wire, returning structured evidence.

        Same surface as :meth:`LedgerSession.verify`, remote semantics:

        * ``target=TX, level=SERVER`` — the *server* runs the check
          (advisory: it attests its own ledger);
        * ``target=TX, level=CLIENT`` — anchors are synced and the proof is
          folded locally against this client's own anchor store;
        * ``target=CLUE`` — the lineage proof is folded locally; ``root``
          pins the caller's trusted CM-Tree1 datum, else the server's
          claimed state root is used (and reported in the result).
        """
        target = _coerce_enum(VerifyTarget, target)
        level = _coerce_enum(VerifyLevel, level)
        if target is VerifyTarget.TX:
            return self._verify_tx(txdata, rho, root, level)
        if target is VerifyTarget.CLUE:
            return self._verify_clue(key, txdata, rho, root, level)
        raise UsageError(f"unsupported verification target: {target}")

    def _verify_tx(
        self,
        txdata: list[Journal] | None,
        rho: Any,
        root: bytes | None,
        level: VerifyLevel,
    ) -> VerifyResult:
        if not txdata or len(txdata) != 1:
            raise UsageError("TX verification takes exactly one journal in txdata")
        journal = txdata[0]
        if level is VerifyLevel.SERVER:
            ok = self.client.verify_journal_remote(journal)
            return VerifyResult(
                ok=ok,
                target=VerifyTarget.TX.value,
                level=level.value,
                what=ok,
                jsn=journal.jsn,
                detail="server-side check (advisory: the server attests "
                "its own ledger)",
            )
        self.client.sync_anchors()
        ok = self.client.verify_journal(journal)
        trusted = root if root is not None else self.client.state.live_root
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.TX.value,
            level=level.value,
            what=ok,
            trusted_root=trusted,
            jsn=journal.jsn,
            detail="folded locally against this client's anchor store",
        )

    def _verify_clue(
        self,
        key: str | None,
        txdata: list[Journal] | None,
        rho: Any,
        root: bytes | None,
        level: VerifyLevel,
    ) -> VerifyResult:
        if key is None or txdata is None:
            raise UsageError("CLUE verification needs key and txdata")
        digests = {i: journal.tx_hash() for i, journal in enumerate(txdata)}
        if rho is not None:
            proof, claimed = rho, None
        else:
            proof, claimed = self.client.prove_clue(key)
        trusted = root if root is not None else claimed
        if trusted is None:
            raise UsageError(
                "CLUE verification with a pre-fetched rho needs a trusted root="
            )
        ok = proof.verify(digests, trusted)
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.CLUE.value,
            level=level.value,
            what=ok,
            proof=proof,
            trusted_root=trusted,
            detail=f"clue {key!r} over {len(txdata)} journals",
        )

    def verify_journal(self, journal: Journal) -> VerifyResult:
        """O(delta) existence verification against this client's anchors."""
        ok = self.client.verify_journal(journal)
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.TX.value,
            level=VerifyLevel.CLIENT.value,
            what=ok,
            trusted_root=self.client.state.live_root,
            jsn=journal.jsn,
            detail="anchored fam fold",
        )

    def verify_clue(self, clue: str) -> VerifyResult:
        """Client-side N-lineage verification of an entire clue lineage."""
        ok = self.client.verify_clue(clue)
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.CLUE.value,
            level=VerifyLevel.CLIENT.value,
            what=ok,
            detail=f"clue {clue!r} lineage against the server's claimed root",
        )

    def close(self) -> None:
        self.client.close()

    def __repr__(self) -> str:
        return f"<RemoteLedgerSession {self.lgid} client_id={self.client_id!r}>"
