"""repro.net — the wire boundary (DESIGN.md §14).

Everything built below this package is in-process; this is where the
paper's actual deployment model starts: clients talking to an *untrusted*
centralized ledger over a socket, re-verifying every proof locally.

* :mod:`repro.net.protocol` — length-prefixed binary frames (reusing
  :mod:`repro.encoding`), request/response envelopes, :class:`ProtocolError`;
* :mod:`repro.net.server` — the asyncio front end over
  :class:`~repro.service.LedgerService` (pipelined appends, bulk proofs,
  graceful drain);
* :mod:`repro.net.client` — :class:`AsyncRemoteLedger` (asyncio core) and
  :class:`RemoteLedgerClient` (sync wrapper) which never trust the server:
  receipts, proofs, and epoch anchors are verified with the local Merkle /
  Dasein machinery before anything is accepted.
"""

from .client import (
    AsyncRemoteLedger,
    RemoteLedgerClient,
    RemoteLedgerError,
    RemoteLedgerSession,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from .server import LedgerServer, ServerThread

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "AsyncRemoteLedger",
    "FrameDecoder",
    "LedgerServer",
    "ProtocolError",
    "RemoteLedgerClient",
    "RemoteLedgerError",
    "RemoteLedgerSession",
    "ServerThread",
    "encode_frame",
]
