"""Group commit: coalesce concurrent appends into batched ledger commits.

The :class:`~repro.core.ledger.Ledger` kernel is deliberately single-
threaded — every structure it owns (stream, fam, CM-Tree, receipts) mutates
under the assumption of one writer.  :class:`LedgerService` is the
concurrency layer on top: clients on any thread :meth:`~LedgerService.submit`
signed requests into a bounded admission queue, and one writer thread drains
whatever is waiting — up to ``max_batch`` requests, lingering up to
``max_wait_ms`` for stragglers — into a single
:meth:`~repro.core.ledger.Ledger.append_batch` call.  Batching is what buys
throughput (GlassDB's group commit, DESIGN.md §8's amortisation table): one
stream write/fsync, grouped CM-Tree flushes, and one shared-inversion
signing pass per cycle instead of per request.

Request lifecycle::

    submit() ──▶ [bounded queue] ──▶ writer loop ──▶ append_batch ──▶ future
                  (backpressure)      (coalesce)       (1 fsync)      (per caller)

Failure isolation: ``append_batch`` is atomic — one bad signature rejects
the whole batch with the ledger untouched.  The writer turns that into
per-request outcomes by re-admitting each request individually
(:meth:`~repro.core.ledger.Ledger.admit`), failing only the offenders'
futures, and committing the survivors as one batch again — a poisoned
request never takes its batchmates down with it.

Shutdown: :meth:`LedgerService.close` rejects new submissions, finishes
(or, with ``drain=False``, fails) everything queued, and joins the writer —
no request is ever left with an unresolved future.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass

from .. import obs
from ..core.errors import LedgerError, UsageError
from ..core.journal import ClientRequest
from ..core.ledger import Ledger
from ..core.receipt import Receipt

__all__ = [
    "LedgerService",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceTimeout",
]


class ServiceClosedError(LedgerError):
    """The service is shut down (or shutting down) and accepts no work."""


class ServiceOverloadedError(LedgerError):
    """The admission queue stayed full for the whole submission timeout."""


class ServiceTimeout(LedgerError):
    """A wait on the service (result or shutdown) exceeded its deadline.

    For :meth:`LedgerService.append` this means the *wait* timed out, not
    the request: it is still queued and may well commit later — use the
    future from :meth:`LedgerService.submit` to pick the outcome up.
    """


@dataclass(frozen=True)
class ServiceConfig:
    """Coalescing and admission knobs for a :class:`LedgerService`.

    * ``max_batch`` — most requests one group commit may carry;
    * ``max_wait_ms`` — how long the writer lingers for stragglers once it
      holds at least one request (0 commits whatever is instantly there);
    * ``max_queue`` — bound of the admission queue; when full, ``submit``
      blocks (backpressure) up to ``submit_timeout_s``;
    * ``submit_timeout_s`` — default block-on-full budget for ``submit``
      (``None`` blocks indefinitely).
    """

    max_batch: int = 128
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    submit_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise UsageError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise UsageError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_wait_ms < 0:
            raise UsageError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


class _Pending:
    """One queued request: the caller's future plus its enqueue time."""

    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: ClientRequest) -> None:
        self.request = request
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class LedgerService:
    """Thread-safe group-commit front end over one :class:`Ledger`.

    All public methods may be called from any thread.  The wrapped ledger
    itself is mutated only by the service's writer thread; once a service
    owns a ledger, do not call ``append``/``append_batch`` on it directly
    (reads — proofs, queries, verification — remain fine).

    Usable as a context manager: ``with LedgerService(ledger) as svc: ...``
    drains and closes on exit.

    ``name`` labels this instance's metrics: a named service emits
    ``service.queue.depth{name=<name>}`` (and likewise for every other
    ``service.*`` family) so N concurrent services — e.g. one writer loop
    per ledger shard — never clobber each other's gauges and histograms in
    the process-wide registry.  An unnamed service keeps the bare family
    names for backward compatibility.
    """

    def __init__(
        self,
        ledger: Ledger,
        config: ServiceConfig | None = None,
        *,
        name: str | None = None,
    ) -> None:
        self.ledger = ledger
        self.config = config or ServiceConfig()
        self.name = name
        label = "" if name is None else f"{{name={name}}}"
        self._metric = {
            base: f"service.{base}{label}"
            for base in (
                "queue.depth",
                "overloaded",
                "batch.wait_us",
                "batch.size",
                "commit",
                "batch.salvage",
                "rejected",
                "append.wait_timeout",
            )
        }
        self._queue: deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._has_room = threading.Condition(self._lock)
        self._closed = False
        # Lifetime stats (under self._lock; exposed via stats()).
        self._submitted = 0
        self._committed = 0
        self._rejected = 0
        self._batches = 0
        self._salvaged_batches = 0
        self._writer = threading.Thread(
            target=self._writer_loop,
            name=f"ledger-service:{ledger.config.uri}"
            + (f"#{name}" if name is not None else ""),
            daemon=True,
        )
        self._writer.start()

    # ------------------------------------------------------------ admission

    def submit(self, request: ClientRequest, *, timeout: float | None | object = ...) -> Future:
        """Queue one signed request; returns the future of its receipt.

        Blocks while the admission queue is full (backpressure), up to
        ``timeout`` seconds (default: the config's ``submit_timeout_s``).
        The future resolves to the :class:`Receipt` once the request's group
        commit lands, or raises the request's own rejection.

        Raises:
            UsageError: ``request`` is not a :class:`ClientRequest`.
            ServiceClosedError: the service is shut down.
            ServiceOverloadedError: the queue stayed full past the timeout.
        """
        if not isinstance(request, ClientRequest):
            raise UsageError(
                f"submit() takes a signed ClientRequest, got {type(request).__name__}"
            )
        if timeout is ...:
            timeout = self.config.submit_timeout_s
        pending = _Pending(request)
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise ServiceClosedError("service is closed; no new appends")
                if len(self._queue) < self.config.max_queue:
                    break
                if deadline is None:
                    self._has_room.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._has_room.wait(remaining):
                        obs.inc(self._metric["overloaded"])
                        raise ServiceOverloadedError(
                            f"admission queue full ({self.config.max_queue}) "
                            f"for {timeout}s"
                        )
            self._queue.append(pending)
            self._submitted += 1
            obs.set_gauge(self._metric["queue.depth"], len(self._queue))
            self._has_work.notify()
        return pending.future

    def submit_many(
        self,
        requests: list[ClientRequest],
        *,
        timeout: float | None | object = ...,
    ) -> list[Future]:
        """Admit a whole batch under one lock acquisition, all-or-nothing.

        Semantics match calling :meth:`submit` per request in order (same
        backpressure wait, same typed rejections), but a pipelined batch —
        the network server's ``append_batch`` — pays the admission lock and
        the writer wake-up once instead of once per request.  Nothing is
        admitted unless everything is: a timeout or a batch larger than the
        admission queue raises :class:`ServiceOverloadedError` with zero
        requests queued, so the caller may safely retry the whole batch.
        """
        for request in requests:
            if not isinstance(request, ClientRequest):
                raise UsageError(
                    f"submit_many() takes signed ClientRequests, "
                    f"got {type(request).__name__}"
                )
        if len(requests) > self.config.max_queue:
            raise ServiceOverloadedError(
                f"batch of {len(requests)} exceeds the admission queue "
                f"({self.config.max_queue}); split it"
            )
        if timeout is ...:
            timeout = self.config.submit_timeout_s
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise ServiceClosedError("service is closed; no new appends")
                if len(self._queue) + len(requests) <= self.config.max_queue:
                    break
                if deadline is None:
                    self._has_room.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._has_room.wait(remaining):
                        obs.inc(self._metric["overloaded"])
                        raise ServiceOverloadedError(
                            f"no room for a batch of {len(requests)} "
                            f"(queue limit {self.config.max_queue}) within {timeout}s"
                        )
            pendings = [_Pending(request) for request in requests]
            self._queue.extend(pendings)
            self._submitted += len(pendings)
            obs.set_gauge(self._metric["queue.depth"], len(self._queue))
            self._has_work.notify()
        return [pending.future for pending in pendings]

    def append(self, request: ClientRequest, *, timeout: float | None = None) -> Receipt:
        """Submit and wait: the blocking single-call form of :meth:`submit`.

        Raises:
            ServiceTimeout: the receipt did not arrive within ``timeout``
                seconds — the request itself stays queued and may still
                commit (the timeout abandons the wait, not the work).
            ServiceClosedError / ServiceOverloadedError: from admission.
            AuthenticationError: the ledger rejected this request.
        """
        future = self.submit(request)
        try:
            return future.result(timeout)
        except _FutureTimeout:
            obs.inc(self._metric["append.wait_timeout"])
            raise ServiceTimeout(f"no receipt within {timeout}s (request may still commit)") from None

    # ---------------------------------------------------------- writer loop

    def _writer_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._commit(batch)

    def _next_batch(self) -> list[_Pending] | None:
        """Drain one coalesced batch; None when closed and fully drained."""
        config = self.config
        with self._lock:
            while not self._queue:
                if self._closed:
                    return None
                self._has_work.wait()
            batch = [self._queue.popleft()]
            # Coalescing window: linger for stragglers up to max_wait_ms,
            # but never once the batch is full or the service is closing.
            deadline = (
                time.perf_counter() + config.max_wait_ms / 1000.0
                if config.max_wait_ms > 0
                else None
            )
            while len(batch) < config.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                if deadline is None or self._closed:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._has_work.wait(remaining)
            obs.set_gauge(self._metric["queue.depth"], len(self._queue))
            self._has_room.notify(len(batch))
        return batch

    def _commit(self, batch: list[_Pending]) -> None:
        if obs.is_enabled():
            now = time.perf_counter()
            for pending in batch:
                obs.observe(self._metric["batch.wait_us"], (now - pending.enqueued_at) * 1e6)
            obs.observe(self._metric["batch.size"], len(batch))
        try:
            with obs.span(self._metric["commit"]) as span:
                span.add("journals", len(batch))
                receipts = self.ledger.append_batch([p.request for p in batch])
        except LedgerError:
            self._commit_salvage(batch)
            return
        except BaseException as exc:  # the writer thread must never die
            self._resolve(batch, [], exc)
            return
        self._resolve(batch, receipts, None)

    def _commit_salvage(self, batch: list[_Pending]) -> None:
        """Atomic batch rejected: fail the offenders, commit the rest.

        ``append_batch`` admission is all-or-nothing, so one bad request
        poisons its whole cycle.  Re-admit each request individually to pin
        the offenders (their futures get their own AuthenticationError) and
        re-run the survivors as one batch — still amortised, minus the bad
        apples.
        """
        obs.inc(self._metric["batch.salvage"])
        with self._lock:
            self._salvaged_batches += 1
        survivors: list[_Pending] = []
        for pending in batch:
            try:
                self.ledger.admit(pending.request)
            except LedgerError as exc:
                obs.inc(self._metric["rejected"])
                with self._lock:
                    self._rejected += 1
                pending.future.set_exception(exc)
            else:
                survivors.append(pending)
        if not survivors:
            return
        try:
            with obs.span(self._metric["commit"]) as span:
                span.add("journals", len(survivors))
                receipts = self.ledger.append_batch([p.request for p in survivors])
        except BaseException as exc:
            # Individually admissible yet rejected as a batch: a commit-phase
            # failure (e.g. IntegrityError). Nothing more to salvage.
            self._resolve(survivors, [], exc)
            return
        self._resolve(survivors, receipts, None)

    def _resolve(
        self,
        batch: list[_Pending],
        receipts: list[Receipt],
        error: BaseException | None,
    ) -> None:
        if error is not None:
            for pending in batch:
                pending.future.set_exception(error)
            with self._lock:
                self._rejected += len(batch)
            return
        for pending, receipt in zip(batch, receipts):
            pending.future.set_result(receipt)
        with self._lock:
            self._committed += len(batch)
            self._batches += 1

    # ------------------------------------------------------------- shutdown

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and shut the writer down.

        ``drain=True`` (default) commits everything already queued before
        the writer exits; ``drain=False`` fails every queued future with
        :class:`ServiceClosedError` immediately.  Either way no future is
        left unresolved.  Idempotent.

        Raises:
            ServiceTimeout: the writer did not finish within ``timeout``
                seconds (the service stays closed; queued work continues).
        """
        with self._lock:
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    pending.future.set_exception(
                        ServiceClosedError("service closed before this request committed")
                    )
            obs.set_gauge(self._metric["queue.depth"], len(self._queue))
            self._has_work.notify_all()
            self._has_room.notify_all()
        self._writer.join(timeout)
        if self._writer.is_alive():
            raise ServiceTimeout(f"writer still draining after {timeout}s")

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "LedgerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Lifetime admission/commit counters (cheap; always available)."""
        with self._lock:
            queued = len(self._queue)
            return {
                "submitted": self._submitted,
                "committed": self._committed,
                "rejected": self._rejected,
                "batches": self._batches,
                "salvaged_batches": self._salvaged_batches,
                "queued": queued,
                "mean_batch_size": self._committed / self._batches if self._batches else 0.0,
            }

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<LedgerService {self.ledger.config.uri} {state} {self.stats()!r}>"
