"""repro.service — the concurrent group-commit front end (DESIGN.md §11).

A :class:`LedgerService` sits between many concurrent clients and one
:class:`~repro.core.ledger.Ledger`.  Callers submit signed requests from any
thread; a single writer loop coalesces whatever is waiting into one
:meth:`~repro.core.ledger.Ledger.append_batch` call per cycle, amortising
the stream fsync, CM-Tree flush, and receipt signing across the batch while
every caller still gets its own :class:`~repro.core.receipt.Receipt` (or its
own exception) back through a future.
"""

from .group_commit import (
    LedgerService,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    ServiceTimeout,
)

__all__ = [
    "LedgerService",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceTimeout",
]
