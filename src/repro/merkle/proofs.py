"""Typed proof containers shared by all Merkle models.

A proof never carries enough information to *reconstruct* payloads — only
digests — so proofs are safe to hand to untrusted auditors.  All containers
serialize via :mod:`repro.encoding` so client-side verifiers can receive them
over a wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import Digest, node_hash
from ..encoding import decode, encode

__all__ = [
    "PathStep",
    "MembershipProof",
    "BatchProof",
    "fold_path",
    "bag_peaks",
    "peak_positions",
]


def peak_positions(size: int) -> list[tuple[int, int]]:
    """Frontier node positions for an accumulator holding ``size`` leaves.

    One peak per set bit of ``size``, highest level first (left to right).
    """
    peaks: list[tuple[int, int]] = []
    consumed = 0
    for level in range(size.bit_length() - 1, -1, -1):
        if size & (1 << level):
            peaks.append((level, consumed >> level))
            consumed += 1 << level
    return peaks


@dataclass(frozen=True)
class PathStep:
    """One sibling on a Merkle path.

    ``sibling_on_left`` states which side the *sibling* digest combines on:
    ``True`` means ``parent = H(sibling, current)``.
    """

    digest: Digest
    sibling_on_left: bool

    def to_obj(self) -> list:
        return [self.digest, self.sibling_on_left]

    @classmethod
    def from_obj(cls, obj: list) -> "PathStep":
        return cls(bytes(obj[0]), bool(obj[1]))


def fold_path(leaf_digest: Digest, path: list[PathStep]) -> Digest:
    """Fold a leaf digest up a Merkle path, returning the subtree root."""
    current = leaf_digest
    for step in path:
        if step.sibling_on_left:
            current = node_hash(step.digest, current)
        else:
            current = node_hash(current, step.digest)
    return current


def bag_peaks(peaks: list[Digest]) -> Digest:
    """Combine an accumulator frontier into one commitment digest.

    Right-to-left fold, as in Merkle Mountain Range "bagging": with peaks
    ``[p0, p1, p2]`` the root is ``H(p0, H(p1, p2))``.  An empty frontier has
    no commitment — callers must special-case it.
    """
    if not peaks:
        raise ValueError("cannot bag an empty frontier")
    acc = peaks[-1]
    for peak in reversed(peaks[:-1]):
        acc = node_hash(peak, acc)
    return acc


@dataclass(frozen=True)
class MembershipProof:
    """Proof that one leaf is committed by an accumulator of ``tree_size`` leaves.

    * ``path`` climbs from the leaf to its covering peak;
    * ``peaks_left`` / ``peaks_right`` are the other frontier peaks, in order,
      so the verifier can re-bag the full commitment.

    Size-binding caveat: a bagged frontier root does not itself commit the
    leaf count (two sizes with the same peak *digests* bag identically), so
    ``tree_size`` is advisory relative to the root alone.  Every layer of
    this system where the count carries meaning binds it explicitly
    alongside the commitment: CM-Tree1 values encode ``(size, frontier)``
    (lineage completeness), T-Ledger evidence checks ``tree_size`` against
    the finalization's ``covered_size``, and consistency proofs re-derive
    peak structure from their stated sizes.
    """

    leaf_index: int
    tree_size: int
    path: list[PathStep]
    peaks_left: list[Digest] = field(default_factory=list)
    peaks_right: list[Digest] = field(default_factory=list)

    def computed_peak(self, leaf_digest: Digest) -> Digest:
        return fold_path(leaf_digest, self.path)

    def computed_root(self, leaf_digest: Digest) -> Digest:
        """Recompute the bagged commitment implied by this proof."""
        peak = self.computed_peak(leaf_digest)
        return bag_peaks(list(self.peaks_left) + [peak] + list(self.peaks_right))

    def implied_leaf_index(self) -> int | None:
        """The leaf index this proof's *structure* actually addresses.

        Path directions encode the leaf's offset within its covering peak's
        subtree, and the flank sizes identify which peak that is — so a
        proof whose claimed ``leaf_index`` disagrees with its structure is
        forged.  Returns None when the structure is inconsistent.
        """
        positions = peak_positions(self.tree_size)
        if len(self.peaks_left) + len(self.peaks_right) + 1 != len(positions):
            return None
        level, index = positions[len(self.peaks_left)]
        if len(self.path) != level:
            return None
        offset = 0
        for bit, step in enumerate(self.path):
            if step.sibling_on_left:
                offset |= 1 << bit
        return (index << level) + offset

    def verify(self, leaf_digest: Digest, expected_root: Digest) -> bool:
        """Check the proof against a trusted commitment.  Never raises.

        Binds the claimed ``leaf_index`` to the path structure as well as
        folding the hashes, so position-forged proofs fail.
        """
        if not 0 <= self.leaf_index < self.tree_size:
            return False
        if self.implied_leaf_index() != self.leaf_index:
            return False
        try:
            return self.computed_root(leaf_digest) == expected_root
        except (ValueError, TypeError):
            return False

    def verify_against_frontier(self, leaf_digest: Digest, frontier: list[Digest]) -> bool:
        """Node-set verification (§III-A1): the folded peak must be a frontier node."""
        try:
            return self.computed_peak(leaf_digest) in frontier
        except (ValueError, TypeError):
            return False

    def to_bytes(self) -> bytes:
        return encode(
            {
                "leaf_index": self.leaf_index,
                "tree_size": self.tree_size,
                "path": [step.to_obj() for step in self.path],
                "peaks_left": list(self.peaks_left),
                "peaks_right": list(self.peaks_right),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MembershipProof":
        obj = decode(data)
        return cls(
            leaf_index=obj["leaf_index"],
            tree_size=obj["tree_size"],
            path=[PathStep.from_obj(step) for step in obj["path"]],
            peaks_left=[bytes(d) for d in obj["peaks_left"]],
            peaks_right=[bytes(d) for d in obj["peaks_right"]],
        )


@dataclass(frozen=True)
class BatchProof:
    """Proof for a *set* of leaves against one accumulator commitment.

    ``nodes`` maps (level, index) positions to digests for exactly the helper
    nodes a verifier cannot derive from the proven leaves themselves — the
    paper's step-3 set N = N2 - (N2 ∩ N3) (§IV-C), plus the other frontier
    peaks.  Verification recomputes every covering peak bottom-up.
    """

    leaf_indices: list[int]
    tree_size: int
    nodes: dict[tuple[int, int], Digest]
    peaks_left: list[Digest] = field(default_factory=list)
    peaks_right: list[Digest] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        return encode(
            {
                "leaf_indices": list(self.leaf_indices),
                "tree_size": self.tree_size,
                "nodes": [
                    [level, index, digest]
                    for (level, index), digest in sorted(self.nodes.items())
                ],
                "peaks_left": list(self.peaks_left),
                "peaks_right": list(self.peaks_right),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BatchProof":
        obj = decode(data)
        return cls(
            leaf_indices=list(obj["leaf_indices"]),
            tree_size=obj["tree_size"],
            nodes={(level, index): bytes(digest) for level, index, digest in obj["nodes"]},
            peaks_left=[bytes(d) for d in obj["peaks_left"]],
            peaks_right=[bytes(d) for d in obj["peaks_right"]],
        )
