"""Merkle Patricia Trie (MPT) with 16-way branching and content-addressed nodes.

CM-Tree1 "holds 16 branches" per non-leaf node, keeps hot top layers in a
memory cache and cold bottom layers on persistent storage (§IV-B2).  This
module implements that substrate as a *persistent* (copy-path-on-write) MPT:

* nodes are content-addressed — a node's id is the SHA-256 of its canonical
  serialization, so the 32-byte root digest commits the entire key-value map;
* updates write new nodes along the touched path only and return a new root,
  leaving historical roots fully queryable (the "historical and current
  status" CM-Tree1 records per block version);
* Merkle path proofs (`prove` / `verify_proof`) support both membership and
  non-membership.

Keys are arbitrary byte strings (CM-Tree1 uses 32-byte SHA-3 scattered clue
keys); internally they travel as nibble (4-bit) sequences.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .. import obs
from ..crypto.hashing import EMPTY_DIGEST, Digest, sha256
from ..encoding import EncodingError, decode, encode
from ..storage.kv import KeyNotFoundError, KVStore, MemoryKVStore

__all__ = ["MPT", "MPTProof", "key_to_nibbles", "nibbles_to_key"]


def key_to_nibbles(key: bytes) -> bytes:
    """Split a byte key into its 4-bit nibble sequence (one nibble per byte)."""
    out = bytearray()
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return bytes(out)


def nibbles_to_key(nibbles: bytes) -> bytes:
    """Inverse of :func:`key_to_nibbles` (requires even length)."""
    if len(nibbles) & 1:
        raise ValueError("nibble sequence has odd length")
    out = bytearray()
    for i in range(0, len(nibbles), 2):
        out.append((nibbles[i] << 4) | nibbles[i + 1])
    return bytes(out)


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


# Node model (decoded form):
#   ("leaf", suffix_nibbles: bytes, value: bytes)
#   ("ext",  shared_nibbles: bytes, child: Digest)
#   ("branch", children: list[Digest | None] * 16, value: bytes | None)

_LEAF, _EXT, _BRANCH = "L", "E", "B"


def _serialize(node: tuple) -> bytes:
    kind = node[0]
    if kind == "leaf":
        return encode([_LEAF, node[1], node[2]])
    if kind == "ext":
        return encode([_EXT, node[1], node[2]])
    if kind == "branch":
        children = [child if child is not None else b"" for child in node[1]]
        value = node[2] if node[2] is not None else b""
        has_value = node[2] is not None
        return encode([_BRANCH, children, value, has_value])
    raise ValueError(f"unknown node kind: {kind}")


def _deserialize(data: bytes) -> tuple:
    obj = decode(data)
    tag = obj[0]
    if tag == _LEAF:
        return ("leaf", bytes(obj[1]), bytes(obj[2]))
    if tag == _EXT:
        return ("ext", bytes(obj[1]), bytes(obj[2]))
    if tag == _BRANCH:
        children = [bytes(c) if c else None for c in obj[1]]
        value = bytes(obj[2]) if obj[3] else None
        return ("branch", children, value)
    raise ValueError(f"unknown node tag: {tag!r}")


@dataclass(frozen=True)
class MPTProof:
    """Merkle path proof: the serialized nodes from the root toward ``key``.

    For membership the path reaches the key's value; for non-membership it
    ends at the node proving divergence.  ``verify`` recomputes every node
    hash top-down, so a forged path cannot verify.
    """

    key: bytes
    value: bytes | None  # None asserts non-membership
    nodes: list[bytes]

    def verify(self, root: Digest) -> bool:
        """Check this proof against a trusted root digest.  Never raises."""
        try:
            return self._verify(root)
        except (EncodingError, ValueError, TypeError, IndexError, KeyError):
            # Malformed proof nodes from an untrusted prover decode to
            # garbage in bounded ways; genuine bugs should still surface.
            return False

    def _verify(self, root: Digest) -> bool:
        remaining = key_to_nibbles(self.key)
        if root == EMPTY_DIGEST:
            return self.value is None and not self.nodes
        expected = root
        index = 0
        while True:
            if index >= len(self.nodes):
                return False
            data = self.nodes[index]
            if sha256(data) != expected:
                return False
            node = _deserialize(data)
            index += 1
            kind = node[0]
            if kind == "leaf":
                if node[1] == remaining:
                    return self.value == node[2] and index == len(self.nodes)
                return self.value is None and index == len(self.nodes)
            if kind == "ext":
                if remaining[: len(node[1])] == node[1]:
                    remaining = remaining[len(node[1]) :]
                    expected = node[2]
                    continue
                return self.value is None and index == len(self.nodes)
            # branch
            if not remaining:
                return self.value == node[2] and index == len(self.nodes)
            child = node[1][remaining[0]]
            if child is None:
                return self.value is None and index == len(self.nodes)
            remaining = remaining[1:]
            expected = child


class MPT:
    """Persistent Merkle Patricia Trie over a pluggable node store.

    ``node_cache`` bounds a decode memo keyed by node identity (the content
    digest): nodes are immutable once written, so a decoded tuple can be
    reused forever without invalidation.  On a paged disk store this skips
    both the page read *and* the deserialization for hot upper-trie nodes —
    the paper's "top layers cache in memory" (§IV-B2) at the node level.
    Set ``node_cache=0`` to disable (every load hits the store).
    """

    def __init__(
        self,
        store: KVStore | None = None,
        root: Digest = EMPTY_DIGEST,
        node_cache: int = 4096,
    ) -> None:
        self._store = store if store is not None else MemoryKVStore()
        self.root = root
        self._node_cache: OrderedDict[Digest, tuple] = OrderedDict()
        self._node_cache_limit = node_cache

    # -------------------------------------------------------------- node I/O

    def _load(self, digest: Digest) -> tuple:
        cache = self._node_cache
        node = cache.get(digest)
        if node is not None:
            cache.move_to_end(digest)
            obs.inc("mpt.node_cache.hit")
            return node
        node = _deserialize(self._store.get(digest))
        obs.inc("mpt.node_cache.miss")
        self._memo(digest, node)
        return node

    def _save(self, node: tuple) -> Digest:
        data = _serialize(node)
        digest = sha256(data)
        self._store.put(digest, data)
        self._memo(digest, node)
        return digest

    def _memo(self, digest: Digest, node: tuple) -> None:
        # Cached tuples are shared: every mutator copies children lists
        # before modifying them, so a memoized node is never written to.
        if self._node_cache_limit <= 0:
            return
        cache = self._node_cache
        cache[digest] = node
        cache.move_to_end(digest)
        while len(cache) > self._node_cache_limit:
            cache.popitem(last=False)

    # ------------------------------------------------------------------- get

    def get(self, key: bytes) -> bytes:
        """Value for ``key`` at the current root; raises KeyNotFoundError."""
        value = self.get_at(self.root, key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def get_default(self, key: bytes, default: bytes | None = None) -> bytes | None:
        value = self.get_at(self.root, key)
        return default if value is None else value

    def get_at(self, root: Digest, key: bytes) -> bytes | None:
        """Value for ``key`` at a historical ``root`` (None if absent)."""
        remaining = key_to_nibbles(key)
        digest = root
        while True:
            if digest == EMPTY_DIGEST or digest is None:
                return None
            node = self._load(digest)
            kind = node[0]
            if kind == "leaf":
                return node[2] if node[1] == remaining else None
            if kind == "ext":
                if remaining[: len(node[1])] != node[1]:
                    return None
                remaining = remaining[len(node[1]) :]
                digest = node[2]
                continue
            if not remaining:
                return node[2]
            digest = node[1][remaining[0]]
            remaining = remaining[1:]

    def __contains__(self, key: bytes) -> bool:
        return self.get_at(self.root, key) is not None

    # ------------------------------------------------------------------- put

    def put(self, key: bytes, value: bytes) -> Digest:
        """Insert/update ``key``; advances and returns the new root."""
        self.root = self.put_at(self.root, key, value)
        return self.root

    def put_at(self, root: Digest, key: bytes, value: bytes) -> Digest:
        """Functional insert against an arbitrary root (old root stays valid)."""
        return self._put(root if root != EMPTY_DIGEST else None, key_to_nibbles(key), value)

    def _put(self, digest: Digest | None, nibbles: bytes, value: bytes) -> Digest:
        if digest is None:
            return self._save(("leaf", nibbles, value))
        node = self._load(digest)
        kind = node[0]
        if kind == "leaf":
            return self._put_into_leaf(node, nibbles, value)
        if kind == "ext":
            return self._put_into_ext(node, nibbles, value)
        return self._put_into_branch(node, nibbles, value)

    def _put_into_leaf(self, node: tuple, nibbles: bytes, value: bytes) -> Digest:
        existing_path, existing_value = node[1], node[2]
        if existing_path == nibbles:
            return self._save(("leaf", nibbles, value))
        split = _common_prefix_len(existing_path, nibbles)
        children: list[Digest | None] = [None] * 16
        branch_value: bytes | None = None
        old_rest = existing_path[split:]
        new_rest = nibbles[split:]
        if old_rest:
            children[old_rest[0]] = self._save(("leaf", old_rest[1:], existing_value))
        else:
            branch_value = existing_value
        if new_rest:
            children[new_rest[0]] = self._save(("leaf", new_rest[1:], value))
        else:
            branch_value = value
        branch = self._save(("branch", children, branch_value))
        if split:
            return self._save(("ext", nibbles[:split], branch))
        return branch

    def _put_into_ext(self, node: tuple, nibbles: bytes, value: bytes) -> Digest:
        shared, child = node[1], node[2]
        split = _common_prefix_len(shared, nibbles)
        if split == len(shared):
            new_child = self._put(child, nibbles[split:], value)
            return self._save(("ext", shared, new_child))
        children: list[Digest | None] = [None] * 16
        branch_value: bytes | None = None
        ext_rest = shared[split:]
        if len(ext_rest) == 1:
            children[ext_rest[0]] = child
        else:
            children[ext_rest[0]] = self._save(("ext", ext_rest[1:], child))
        new_rest = nibbles[split:]
        if new_rest:
            children[new_rest[0]] = self._save(("leaf", new_rest[1:], value))
        else:
            branch_value = value
        branch = self._save(("branch", children, branch_value))
        if split:
            return self._save(("ext", nibbles[:split], branch))
        return branch

    def _put_into_branch(self, node: tuple, nibbles: bytes, value: bytes) -> Digest:
        children = list(node[1])
        branch_value = node[2]
        if not nibbles:
            return self._save(("branch", children, value))
        children[nibbles[0]] = self._put(children[nibbles[0]], nibbles[1:], value)
        return self._save(("branch", children, branch_value))

    # ---------------------------------------------------------------- delete

    def delete(self, key: bytes) -> Digest:
        """Remove ``key``; advances and returns the new root.

        Raises :class:`KeyNotFoundError` if absent.
        """
        new_root = self._delete(
            self.root if self.root != EMPTY_DIGEST else None, key_to_nibbles(key)
        )
        self.root = new_root if new_root is not None else EMPTY_DIGEST
        return self.root

    def _delete(self, digest: Digest | None, nibbles: bytes) -> Digest | None:
        if digest is None:
            raise KeyNotFoundError(
                nibbles_to_key(nibbles) if len(nibbles) % 2 == 0 else bytes(nibbles)
            )
        node = self._load(digest)
        kind = node[0]
        if kind == "leaf":
            if node[1] == nibbles:
                return None
            raise KeyNotFoundError(b"")
        if kind == "ext":
            shared, child = node[1], node[2]
            if nibbles[: len(shared)] != shared:
                raise KeyNotFoundError(b"")
            new_child = self._delete(child, nibbles[len(shared) :])
            if new_child is None:
                return None
            return self._normalize_ext(shared, new_child)
        children = list(node[1])
        branch_value = node[2]
        if not nibbles:
            if branch_value is None:
                raise KeyNotFoundError(b"")
            branch_value = None
        else:
            slot = nibbles[0]
            if children[slot] is None:
                raise KeyNotFoundError(b"")
            children[slot] = self._delete(children[slot], nibbles[1:])
        return self._normalize_branch(children, branch_value)

    def _normalize_ext(self, shared: bytes, child_digest: Digest) -> Digest:
        """Merge an extension with a leaf/ext child to keep the trie canonical."""
        child = self._load(child_digest)
        if child[0] == "leaf":
            return self._save(("leaf", shared + child[1], child[2]))
        if child[0] == "ext":
            return self._save(("ext", shared + child[1], child[2]))
        return self._save(("ext", shared, child_digest))

    def _normalize_branch(
        self, children: list[Digest | None], value: bytes | None
    ) -> Digest | None:
        live = [(i, d) for i, d in enumerate(children) if d is not None]
        if not live and value is None:
            return None
        if not live:
            return self._save(("leaf", b"", value))
        if len(live) == 1 and value is None:
            slot, child_digest = live[0]
            return self._normalize_ext(bytes([slot]), child_digest)
        return self._save(("branch", children, value))

    # --------------------------------------------------------------- proving

    def prove(self, key: bytes, root: Digest | None = None) -> MPTProof:
        """Merkle path proof of membership or non-membership of ``key``."""
        at_root = self.root if root is None else root
        nodes: list[bytes] = []
        remaining = key_to_nibbles(key)
        digest = at_root
        value: bytes | None = None
        while digest is not None and digest != EMPTY_DIGEST:
            data = self._store.get(digest)
            nodes.append(data)
            node = _deserialize(data)
            kind = node[0]
            if kind == "leaf":
                value = node[2] if node[1] == remaining else None
                break
            if kind == "ext":
                if remaining[: len(node[1])] != node[1]:
                    break
                remaining = remaining[len(node[1]) :]
                digest = node[2]
                continue
            if not remaining:
                value = node[2]
                break
            digest = node[1][remaining[0]]
            remaining = remaining[1:]
        return MPTProof(key=key, value=value, nodes=nodes)

    # ------------------------------------------------------------- utilities

    def reachable(self, root: Digest | None = None) -> set[Digest]:
        """Digests of every node reachable from ``root``.

        The live set for store compaction: nodes outside it belong to
        superseded historical trie versions and can be dropped once history
        queries against old roots are no longer needed.
        """
        at_root = self.root if root is None else root
        live: set[Digest] = set()
        if at_root == EMPTY_DIGEST:
            return live
        stack: list[Digest] = [at_root]
        while stack:
            digest = stack.pop()
            if digest in live:
                continue
            live.add(digest)
            node = self._load(digest)
            kind = node[0]
            if kind == "ext":
                stack.append(node[2])
            elif kind == "branch":
                stack.extend(child for child in node[1] if child is not None)
        return live

    def export_nodes(self, root: Digest | None = None) -> list[tuple[Digest, bytes]]:
        """Serialized (digest, bytes) for every node reachable from ``root``.

        Snapshot material for stores that are not themselves persistent —
        an on-disk node store instead persists pages and needs only the root.
        """
        return [
            (digest, self._store.get(digest)) for digest in sorted(self.reachable(root))
        ]

    def import_nodes(self, nodes) -> None:
        """Load ``(digest, bytes)`` pairs (from :meth:`export_nodes`) into the
        backing store; content-addressed, so repeats are harmless."""
        for digest, data in nodes:
            self._store.put(bytes(digest), bytes(data))

    def items(self, root: Digest | None = None) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs under ``root`` (test oracle; O(n))."""
        at_root = self.root if root is None else root
        out: list[tuple[bytes, bytes]] = []
        if at_root == EMPTY_DIGEST:
            return out
        stack: list[tuple[Digest, bytes]] = [(at_root, b"")]
        while stack:
            digest, prefix = stack.pop()
            node = self._load(digest)
            kind = node[0]
            if kind == "leaf":
                out.append((nibbles_to_key(prefix + node[1]), node[2]))
            elif kind == "ext":
                stack.append((node[2], prefix + node[1]))
            else:
                if node[2] is not None:
                    out.append((nibbles_to_key(prefix), node[2]))
                for slot, child in enumerate(node[1]):
                    if child is not None:
                        stack.append((child, prefix + bytes([slot])))
        return sorted(out)
