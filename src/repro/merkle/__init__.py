"""Merkle tree family: Shrubs, fam, tim, bim, MPT, ccMPT, and CM-Tree."""

from .bamt import BamtAccumulator, BamtProof
from .bim import (
    BimLedger,
    BlockHeader,
    LightClient,
    SPVProof,
    merkle_path_padded,
    merkle_root_padded,
)
from .ccmpt import CCMPTClueProof, ClueCounterMPT
from .cmtree import ClueProof, ClueVerificationError, CMTree
from .consistency import ConsistencyProof, prove_consistency
from .fam import AnchorStore, FamAccumulator, FamProof
from .mpt import MPT, MPTProof, key_to_nibbles, nibbles_to_key
from .proofs import BatchProof, MembershipProof, PathStep, bag_peaks, fold_path
from .shrubs import FrontierAccumulator, ShrubsAccumulator, peak_positions
from .tim import TimAccumulator, TrustedAnchor

__all__ = [
    "BamtAccumulator",
    "BamtProof",
    "BimLedger",
    "BlockHeader",
    "LightClient",
    "SPVProof",
    "merkle_path_padded",
    "merkle_root_padded",
    "CCMPTClueProof",
    "ClueCounterMPT",
    "ClueProof",
    "ClueVerificationError",
    "CMTree",
    "ConsistencyProof",
    "prove_consistency",
    "AnchorStore",
    "FamAccumulator",
    "FamProof",
    "MPT",
    "MPTProof",
    "key_to_nibbles",
    "nibbles_to_key",
    "BatchProof",
    "MembershipProof",
    "PathStep",
    "bag_peaks",
    "fold_path",
    "ShrubsAccumulator",
    "FrontierAccumulator",
    "peak_positions",
    "TimAccumulator",
    "TrustedAnchor",
]
