"""Consistency proofs for Shrubs accumulators (append-only evolution).

A consistency proof convinces a verifier who trusts the commitment at size
*a* that the commitment at size *b* > *a* extends it **append-only** — no
historical leaf was modified or removed.  This is what lets a client advance
its trusted anchors (§III-A1: "before a new trusted anchor is set, all
earlier ledger data must be cryptographically verified") without
re-downloading and re-verifying the whole prefix.

Construction (frontier model): every peak of the size-*b* frontier covers a
leaf range that splits into (i) old peaks of the size-*a* frontier and
(ii) *complement* subtrees made purely of new leaves.  The proof ships the
old peak set plus the complement subtree roots; the verifier re-tiles each
new peak from them.  Soundness hinges on the tiling rule enforced during
verification: a complement tile may never cover any leaf < *a*, so the old
region can only be reconstructed from the old peaks the verifier already
trusts (via the old root).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, node_hash
from ..encoding import decode, encode
from .proofs import bag_peaks
from .shrubs import ShrubsAccumulator, peak_positions

__all__ = ["ConsistencyProof", "prove_consistency"]


def _aligned_cover(start: int, end: int) -> list[tuple[int, int]]:
    """Decompose [start, end) into maximal aligned subtrees (level, index)."""
    tiles: list[tuple[int, int]] = []
    position = start
    while position < end:
        # Largest aligned subtree starting at `position` that fits.
        level = (position & -position).bit_length() - 1 if position else (end - 1).bit_length()
        while position + (1 << level) > end or position % (1 << level) != 0:
            level -= 1
        tiles.append((level, position >> level))
        position += 1 << level
    return tiles


@dataclass(frozen=True)
class ConsistencyProof:
    """Proof that the commitment at ``new_size`` extends that at ``old_size``."""

    old_size: int
    new_size: int
    old_peaks: list[Digest]
    complement: dict[tuple[int, int], Digest]  # tiles covering leaves >= old_size

    def verify(self, old_root: Digest, new_root: Digest) -> bool:
        """Check both commitments against the shipped structure.  Never raises."""
        try:
            return self._verify(old_root, new_root)
        except (KeyError, ValueError, IndexError, TypeError):
            # Incomplete or ill-typed complement tiles in an untrusted proof.
            return False

    def _verify(self, old_root: Digest, new_root: Digest) -> bool:
        if not 0 < self.old_size <= self.new_size:
            return False
        old_positions = peak_positions(self.old_size)
        if len(self.old_peaks) != len(old_positions):
            return False
        if bag_peaks(self.old_peaks) != old_root:
            return False
        tiles: dict[tuple[int, int], Digest] = dict(
            zip(old_positions, self.old_peaks)
        )
        for (level, index), digest in self.complement.items():
            if (index << level) < self.old_size:
                return False  # complement may not reach into trusted history
            tiles[(level, index)] = digest

        def build(level: int, index: int) -> Digest:
            tile = tiles.get((level, index))
            if tile is not None:
                return tile
            if level == 0:
                raise KeyError((level, index))
            return node_hash(build(level - 1, index << 1), build(level - 1, (index << 1) + 1))

        new_peaks = [build(level, index) for level, index in peak_positions(self.new_size)]
        return bag_peaks(new_peaks) == new_root

    def to_bytes(self) -> bytes:
        return encode(
            {
                "old_size": self.old_size,
                "new_size": self.new_size,
                "old_peaks": list(self.old_peaks),
                "complement": [
                    [level, index, digest]
                    for (level, index), digest in sorted(self.complement.items())
                ],
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ConsistencyProof":
        obj = decode(data)
        return cls(
            old_size=obj["old_size"],
            new_size=obj["new_size"],
            old_peaks=[bytes(d) for d in obj["old_peaks"]],
            complement={
                (level, index): bytes(digest)
                for level, index, digest in obj["complement"]
            },
        )


def prove_consistency(
    accumulator: ShrubsAccumulator, old_size: int, new_size: int | None = None
) -> ConsistencyProof:
    """Build a consistency proof from size ``old_size`` to ``new_size``.

    Requires the accumulator's interior nodes for both sizes — which is
    always the case, since Shrubs nodes are immutable once written.
    """
    size = accumulator.size if new_size is None else new_size
    if not 0 < old_size <= size <= accumulator.size:
        raise ValueError(
            f"need 0 < old_size <= new_size <= {accumulator.size}, "
            f"got ({old_size}, {size})"
        )
    complement: dict[tuple[int, int], Digest] = {}
    for level, index in peak_positions(size):
        start = index << level
        end = start + (1 << level)
        if end <= old_size:
            continue  # fully inside the old frontier: it IS an old peak
        for tile_level, tile_index in _aligned_cover(max(start, old_size), end):
            complement[(tile_level, tile_index)] = accumulator.node(tile_level, tile_index)
    return ConsistencyProof(
        old_size=old_size,
        new_size=size,
        old_peaks=accumulator.peaks(old_size),
        complement=complement,
    )
