"""bAMT — batched accumulated Merkle tree (the VLDB'20 LedgerDB accumulator).

§III-A1 places the Shrubs tree's "prototypical verification cost ... the
same as in tim (e.g., Diem) and bAMT [7]".  The original LedgerDB paper's
bAMT batches transactions: each batch forms a padded Merkle subtree and the
batch roots feed a growing accumulator.  It sits between *bim* (fixed
batches, but no header chain for light clients) and *tim* (a single global
tree): proofs are an in-batch path plus an accumulator path over the batch
roots, so verification still grows as O(log(n / B)) with ledger size — the
growth *fam* eliminates.

Included as a third comparator for the Figure-8 family of experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, leaf_hash
from .bim import merkle_path_padded, merkle_root_padded
from .proofs import MembershipProof, PathStep, fold_path
from .shrubs import ShrubsAccumulator

__all__ = ["BamtAccumulator", "BamtProof"]


@dataclass(frozen=True)
class BamtProof:
    """In-batch Merkle path + accumulator path for the batch root."""

    sequence: int
    batch_index: int
    in_batch_path: list[PathStep]
    batch_proof: MembershipProof  # batch root within the root accumulator
    pending: bool  # transaction still in the open batch (no batch root yet)

    @property
    def path_nodes(self) -> int:
        return len(self.in_batch_path) + len(self.batch_proof.path)


class BamtAccumulator:
    """Batched accumulated Merkle tree."""

    def __init__(self, batch_size: int = 64) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.batch_size = batch_size
        self._batches: list[list[Digest]] = []  # sealed batches (leaf digests)
        self._open: list[Digest] = []
        self._roots = ShrubsAccumulator()  # accumulator over batch roots

    @property
    def size(self) -> int:
        return sum(len(batch) for batch in self._batches) + len(self._open)

    def __len__(self) -> int:
        return self.size

    def append(self, payload: bytes) -> int:
        return self.append_digest(leaf_hash(payload))

    def append_digest(self, digest: Digest) -> int:
        """Accumulate one transaction digest; seals the batch when full."""
        sequence = self.size
        self._open.append(digest)
        if len(self._open) >= self.batch_size:
            self._seal()
        return sequence

    def _seal(self) -> None:
        self._batches.append(self._open)
        self._roots.append_leaf(merkle_root_padded(self._open))
        self._open = []

    def seal_batch(self) -> None:
        """Force-seal the open batch (commit boundary)."""
        if self._open:
            self._seal()

    def root(self) -> Digest:
        """The commitment: accumulator root over sealed batches, entangled
        with the open batch's running root when one exists."""
        if not self._open:
            return self._roots.root()
        from ..crypto.hashing import node_hash

        open_root = merkle_root_padded(self._open)
        if self._roots.size == 0:
            return open_root
        return node_hash(self._roots.root(), open_root)

    def get_proof(self, sequence: int) -> BamtProof:
        """Existence proof for the ``sequence``-th transaction."""
        if not 0 <= sequence < self.size:
            raise IndexError(f"sequence {sequence} out of range")
        batch_index, offset = divmod(sequence, self.batch_size)
        if batch_index < len(self._batches):
            batch = self._batches[batch_index]
            return BamtProof(
                sequence=sequence,
                batch_index=batch_index,
                in_batch_path=merkle_path_padded(batch, offset),
                batch_proof=self._roots.prove(batch_index),
                pending=False,
            )
        # Transaction still in the open batch.
        return BamtProof(
            sequence=sequence,
            batch_index=batch_index,
            in_batch_path=merkle_path_padded(self._open, offset),
            batch_proof=MembershipProof(leaf_index=0, tree_size=0, path=[]),
            pending=True,
        )

    def verify(self, digest: Digest, proof: BamtProof, root: Digest) -> bool:
        """Check a proof against the current commitment.  Never raises."""
        try:
            batch_root = fold_path(digest, proof.in_batch_path)
            if proof.pending:
                from ..crypto.hashing import node_hash

                if self._roots.size == 0:
                    return batch_root == root
                return node_hash(self._roots.root(), batch_root) == root
            sealed_commitment = proof.batch_proof.computed_root(batch_root)
            if not self._open:
                return sealed_commitment == root
            from ..crypto.hashing import node_hash

            return node_hash(sealed_commitment, merkle_root_padded(self._open)) == root
        except (ValueError, IndexError, TypeError):
            # Out-of-range indices or wrong-shaped paths in an untrusted proof.
            return False

    def num_nodes(self) -> int:
        """Stored structure size: batch leaves + accumulator nodes."""
        stored = sum(len(batch) for batch in self._batches) + len(self._open)
        return stored + self._roots.num_nodes()
