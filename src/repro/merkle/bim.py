"""bim — the block-intensive ledger model (baseline).

Bitcoin-style organisation (§II-A): transactions are batched into blocks,
each block carries the Merkle root of its transactions, and block headers are
hash-chained.  A light client stores all headers as block-oriented trusted
anchors (*boa*, O(#blocks) space) and verifies a transaction with an SPV
proof: the in-block Merkle path plus the anchored header.

The in-block tree is the classic padded Merkle tree (odd node duplicated up),
distinct from the Shrubs frontier model, matching Bitcoin's construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import EMPTY_DIGEST, Digest, block_hash, leaf_hash, node_hash
from ..encoding import encode
from .proofs import PathStep, fold_path

__all__ = [
    "BlockHeader",
    "SPVProof",
    "BimLedger",
    "LightClient",
    "merkle_root_padded",
    "merkle_path_padded",
]


def merkle_root_padded(leaves: list[Digest]) -> Digest:
    """Bitcoin-style Merkle root: odd trailing node is paired with itself."""
    if not leaves:
        return EMPTY_DIGEST
    level = list(leaves)
    while len(level) > 1:
        if len(level) & 1:
            level.append(level[-1])
        level = [node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def merkle_path_padded(leaves: list[Digest], index: int) -> list[PathStep]:
    """Merkle path of ``leaves[index]`` in the padded in-block tree."""
    if not 0 <= index < len(leaves):
        raise IndexError(f"index {index} out of range")
    path: list[PathStep] = []
    level = list(leaves)
    j = index
    while len(level) > 1:
        if len(level) & 1:
            level.append(level[-1])
        sibling = j ^ 1
        path.append(PathStep(level[sibling], sibling_on_left=bool(j & 1)))
        level = [node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        j >>= 1
    return path


@dataclass(frozen=True)
class BlockHeader:
    """A chained block header (the light client's unit of storage)."""

    height: int
    previous_hash: Digest
    merkle_root: Digest
    timestamp: float
    tx_count: int

    def header_hash(self) -> Digest:
        return block_hash(
            encode(
                {
                    "height": self.height,
                    "previous_hash": self.previous_hash,
                    "merkle_root": self.merkle_root,
                    "timestamp": self.timestamp,
                    "tx_count": self.tx_count,
                }
            )
        )


@dataclass(frozen=True)
class SPVProof:
    """Simplified-payment-verification proof: block height + in-block path."""

    block_height: int
    tx_index: int
    path: list[PathStep]


@dataclass
class _Block:
    header: BlockHeader
    tx_digests: list[Digest] = field(default_factory=list)


class BimLedger:
    """A full node holding complete blocks."""

    def __init__(self, block_capacity: int = 128, genesis_timestamp: float = 0.0) -> None:
        if block_capacity < 1:
            raise ValueError("block capacity must be >= 1")
        self.block_capacity = block_capacity
        self._blocks: list[_Block] = []
        self._pending: list[Digest] = []
        self._pending_timestamp = genesis_timestamp

    @property
    def height(self) -> int:
        """Number of committed blocks."""
        return len(self._blocks)

    @property
    def size(self) -> int:
        """Total committed transactions."""
        return sum(block.header.tx_count for block in self._blocks)

    def append(self, payload: bytes, timestamp: float = 0.0) -> tuple[int, int]:
        """Add a transaction; returns (block_height, tx_index) once committed.

        Blocks auto-commit when they reach capacity — like Bitcoin's "large
        number of blocks each containing a small number of transactions"
        (§III-A1), the capacity bounds commit latency.
        """
        self._pending.append(leaf_hash(payload))
        self._pending_timestamp = timestamp
        position = (len(self._blocks), len(self._pending) - 1)
        if len(self._pending) >= self.block_capacity:
            self.commit_block()
        return position

    def commit_block(self) -> BlockHeader | None:
        """Seal the pending transactions into a block."""
        if not self._pending:
            return None
        previous = (
            self._blocks[-1].header.header_hash() if self._blocks else EMPTY_DIGEST
        )
        header = BlockHeader(
            height=len(self._blocks),
            previous_hash=previous,
            merkle_root=merkle_root_padded(self._pending),
            timestamp=self._pending_timestamp,
            tx_count=len(self._pending),
        )
        self._blocks.append(_Block(header=header, tx_digests=self._pending))
        self._pending = []
        return header

    def header(self, height: int) -> BlockHeader:
        return self._blocks[height].header

    def headers(self) -> list[BlockHeader]:
        return [block.header for block in self._blocks]

    def get_proof(self, block_height: int, tx_index: int) -> SPVProof:
        """SPV proof for a committed transaction."""
        block = self._blocks[block_height]
        return SPVProof(
            block_height=block_height,
            tx_index=tx_index,
            path=merkle_path_padded(block.tx_digests, tx_index),
        )

    def tx_digest(self, block_height: int, tx_index: int) -> Digest:
        return self._blocks[block_height].tx_digests[tx_index]


class LightClient:
    """A *boa* light client: stores validated headers, verifies via SPV.

    Header space grows O(n) with block count — the storage cost the paper
    charges against *bim* (§III-A1).
    """

    def __init__(self) -> None:
        self._headers: list[BlockHeader] = []

    @property
    def anchored_height(self) -> int:
        return len(self._headers)

    def sync_headers(self, headers: list[BlockHeader]) -> None:
        """Download and chain-validate new headers (the one-time block check)."""
        for header in headers:
            if header.height != len(self._headers):
                raise ValueError(
                    f"expected header at height {len(self._headers)}, got {header.height}"
                )
            expected_previous = (
                self._headers[-1].header_hash() if self._headers else EMPTY_DIGEST
            )
            if header.previous_hash != expected_previous:
                raise ValueError(f"broken header chain at height {header.height}")
            self._headers.append(header)

    def verify(self, payload: bytes, proof: SPVProof) -> bool:
        """SPV-verify a transaction against the anchored headers."""
        if not 0 <= proof.block_height < len(self._headers):
            return False
        root = fold_path(leaf_hash(payload), proof.path)
        return root == self._headers[proof.block_height].merkle_root

    def storage_bytes(self) -> int:
        """Approximate anchor storage (fixed-size header per block)."""
        return len(self._headers) * 80  # Bitcoin-style 80-byte headers
