"""tim — the transaction-intensive accumulator model (baseline).

Diem and QLDB abandon blocks and entangle every transaction into one global
Merkle accumulator: "each transaction becomes an incremental leaf node, which
generates corresponding Merkle root hash as its fine-grained tamper proof"
(§I).  We reproduce that behaviour exactly:

* every append publishes a fresh global root (so append cost grows with the
  bagging cost, O(log n));
* every proof is a full path against the global root, O(log n) nodes, and the
  verification cost keeps growing as the ledger does — the weakness *fam* is
  designed to fix.

``TimAccumulator`` also implements the accumulator-oriented trusted anchor
(*aoa*) of §III-A1: a client that has verified everything up to size *s* may
record the root-at-*s* as an anchor, but unlike *fam* this does not shorten
later proofs, because new leaves keep deepening the same global tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, leaf_hash
from .proofs import MembershipProof
from .shrubs import ShrubsAccumulator

__all__ = ["TimAccumulator", "TrustedAnchor"]


@dataclass(frozen=True)
class TrustedAnchor:
    """A client-side checkpoint: everything before ``size`` has been verified."""

    size: int
    root: Digest


class TimAccumulator:
    """Global single-tree Merkle accumulator (Diem/QLDB style)."""

    def __init__(self) -> None:
        self._tree = ShrubsAccumulator()
        self._latest_root: Digest | None = None

    @property
    def size(self) -> int:
        return self._tree.size

    def __len__(self) -> int:
        return self._tree.size

    def append(self, payload: bytes) -> int:
        """Append a transaction payload; returns its sequence number.

        Publishes (recomputes) the global root immediately, as *tim* systems
        do for fine-grained per-transaction tamper proofs.
        """
        index = self._tree.append_leaf(leaf_hash(payload))
        self._latest_root = self._tree.root()
        return index

    def append_digest(self, digest: Digest) -> int:
        """Append an already-hashed leaf digest (for digest-only workloads)."""
        index = self._tree.append_leaf(digest)
        self._latest_root = self._tree.root()
        return index

    def root(self, at_size: int | None = None) -> Digest:
        if at_size is None and self._latest_root is not None:
            return self._latest_root
        return self._tree.root(at_size)

    def leaf(self, index: int) -> Digest:
        return self._tree.leaf(index)

    def get_proof(self, index: int, at_size: int | None = None) -> MembershipProof:
        """Full-path membership proof against the global root."""
        return self._tree.prove(index, at_size)

    @staticmethod
    def verify(leaf_digest: Digest, proof: MembershipProof, root: Digest) -> bool:
        return proof.verify(leaf_digest, root)

    def make_anchor(self, at_size: int | None = None) -> TrustedAnchor:
        """Record the verified prefix as an *aoa* trusted anchor."""
        size = self._tree.size if at_size is None else at_size
        return TrustedAnchor(size=size, root=self._tree.root(size))

    def verify_with_anchor(
        self, leaf_digest: Digest, proof: MembershipProof, anchor: TrustedAnchor
    ) -> bool:
        """Verify against an anchor when possible.

        If the proof is against exactly the anchored tree size the anchored
        root substitutes for a fresh root fetch; otherwise the verifier must
        fall back to the current root — the anchor cannot shorten the path
        (contrast with fam-aoa).
        """
        if proof.tree_size == anchor.size:
            return proof.verify(leaf_digest, anchor.root)
        return proof.verify(leaf_digest, self.root(proof.tree_size))

    def num_nodes(self) -> int:
        return self._tree.num_nodes()
