"""CM-Tree — the two-layer clue merged tree for verifiable N-lineage (§IV).

CM-Tree marries an MPT and per-clue Merkle accumulators:

* **CM-Tree1** is an MPT keyed by ``SHA3-256(clue)`` (scattered so user clue
  strings keep the trie balanced).  A clue's value is its CM-Tree2 *root
  proof set* — the (size, frontier) pair of the clue's own accumulator.
* **CM-Tree2** is one Shrubs accumulator per clue holding that clue's journal
  digests in lineage order.

Insertion (§IV-B3) appends to the clue's CM-Tree2 (O(1) amortised, the Shrubs
property that is "the backbone of CM-Tree") and refreshes the clue's value in
CM-Tree1.  Clue-oriented verification (§IV-C) checks the batch proof of the
requested versions against the clue's CM-Tree2 commitment, then the MPT path
from the clue to the trusted CM-Tree1 root — total O(m + log |clues|) versus
ccMPT's O(m·log n).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..crypto.hashing import Digest, clue_key_hash
from ..encoding import EncodingError, decode, encode
from ..storage.kv import KVStore
from .mpt import MPT, MPTProof
from .proofs import BatchProof, bag_peaks
from .shrubs import ShrubsAccumulator

__all__ = ["CMTree", "ClueProof", "ClueVerificationError", "encode_clue_value", "decode_clue_value"]


class ClueVerificationError(Exception):
    """Raised by server-side verification when a clue fails to validate."""


def encode_clue_value(size: int, frontier: list[Digest]) -> bytes:
    """CM-Tree1 leaf value: the clue's CM-Tree2 root proof set (§IV-B2).

    Public because auditors re-derive these values when replaying state-root
    evolution from a pseudo-genesis snapshot.
    """
    return encode({"size": size, "frontier": list(frontier)})


def decode_clue_value(value: bytes) -> tuple[int, list[Digest]]:
    obj = decode(value)
    return obj["size"], [bytes(d) for d in obj["frontier"]]


def _encode_clue_value(accumulator: ShrubsAccumulator) -> bytes:
    return encode_clue_value(accumulator.size, accumulator.peaks())


_decode_clue_value = decode_clue_value


@dataclass(frozen=True)
class ClueProof:
    """The full proof set replied to a client verifier (§IV-C step 5).

    * ``batch`` — CM-Tree2 proof cells for the requested versions (the C_a
      set: the minimal non-derivable nodes N = N2 − (N2 ∩ N3), plus flanking
      peaks);
    * ``clue_value`` / ``mpt_proof`` — the C_s set: the clue's committed
      CM-Tree2 root proof set and its CM-Tree1 path.
    """

    clue: str
    version_start: int
    version_end: int  # exclusive
    entry_count: int
    batch: BatchProof
    clue_value: bytes
    mpt_proof: MPTProof

    def verify(self, journal_digests: dict[int, Digest], cm_tree1_root: Digest) -> bool:
        """Client-side verification (§IV-C step 6).  Never raises.

        ``journal_digests`` maps version number -> journal digest for every
        version in ``[version_start, version_end)``.  A proof is true only
        when both layers prove: any missing version, tampered digest, wrong
        count, or broken path fails the whole verification.
        """
        try:
            size, frontier = _decode_clue_value(self.clue_value)
        except (EncodingError, KeyError, TypeError, ValueError):
            # Malformed clue value from an untrusted prover; anything else
            # (a bug in our own decoder) should surface, not read as "false".
            return False
        if self.entry_count != size or self.batch.tree_size != size:
            return False
        expected_versions = list(range(self.version_start, self.version_end))
        if sorted(journal_digests) != expected_versions:
            return False
        if list(self.batch.leaf_indices) != expected_versions:
            return False
        if not frontier:
            return False
        # Layer 2: the requested versions against the clue's accumulator.
        cm_tree2_root = bag_peaks(frontier)
        if not ShrubsAccumulator.verify_batch(journal_digests, self.batch, cm_tree2_root):
            return False
        # Layer 1: the clue's value against the trusted CM-Tree1 root.
        if self.mpt_proof.key != clue_key_hash(self.clue):
            return False
        if self.mpt_proof.value != self.clue_value:
            return False
        return self.mpt_proof.verify(cm_tree1_root)

    def to_bytes(self) -> bytes:
        return encode(
            {
                "clue": self.clue,
                "version_start": self.version_start,
                "version_end": self.version_end,
                "entry_count": self.entry_count,
                "batch": self.batch.to_bytes(),
                "clue_value": self.clue_value,
                "mpt_key": self.mpt_proof.key,
                "mpt_value": self.mpt_proof.value if self.mpt_proof.value is not None else b"",
                "mpt_has_value": self.mpt_proof.value is not None,
                "mpt_nodes": list(self.mpt_proof.nodes),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClueProof":
        from .mpt import MPTProof
        from .proofs import BatchProof

        obj = decode(data)
        return cls(
            clue=obj["clue"],
            version_start=obj["version_start"],
            version_end=obj["version_end"],
            entry_count=obj["entry_count"],
            batch=BatchProof.from_bytes(bytes(obj["batch"])),
            clue_value=bytes(obj["clue_value"]),
            mpt_proof=MPTProof(
                key=bytes(obj["mpt_key"]),
                value=bytes(obj["mpt_value"]) if obj["mpt_has_value"] else None,
                nodes=[bytes(node) for node in obj["mpt_nodes"]],
            ),
        )


class CMTree:
    """The two-layer clue merged tree."""

    def __init__(self, store: KVStore | None = None) -> None:
        self._mpt = MPT(store)
        self._accumulators: dict[bytes, ShrubsAccumulator] = {}
        self._clue_names: dict[bytes, str] = {}

    @property
    def root(self) -> Digest:
        """CM-Tree1 root — recorded in every block as the verifiable snapshot."""
        return self._mpt.root

    # --------------------------------------------------------------- insert

    def add(self, clue: str, journal_digest: Digest) -> int:
        """CM-Tree insertion (§IV-B3); returns the entry's version number.

        Step 1: locate/create the clue's CM-Tree2 and append at the tail.
        Step 2: recompute the CM-Tree2 root proof set and update the clue's
        value in CM-Tree1, rehashing the MPT path bottom-up.
        """
        key = clue_key_hash(clue)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            accumulator = ShrubsAccumulator()
            self._accumulators[key] = accumulator
            self._clue_names[key] = clue
        version = accumulator.append_leaf(journal_digest)
        with obs.span("cmtree.flush"):
            self._mpt.put(key, _encode_clue_value(accumulator))
        return version

    def add_many(self, clue: str, journal_digests: list[Digest]) -> list[int]:
        """Insert several digests for one clue; returns their versions.

        Equivalent to ``[self.add(clue, d) for d in journal_digests]`` but
        refreshes the clue's CM-Tree1 value **once** after all CM-Tree2
        appends.  The MPT path rehash dominates single-entry insertion cost,
        so grouping per-clue batches amortises the expensive layer — the
        CM-Tree half of the batched append pipeline.  The final MPT state is
        identical because CM-Tree1 only commits the latest (size, frontier).
        """
        if not journal_digests:
            return []
        key = clue_key_hash(clue)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            accumulator = ShrubsAccumulator()
            self._accumulators[key] = accumulator
            self._clue_names[key] = clue
        versions = [accumulator.append_leaf(digest) for digest in journal_digests]
        with obs.span("cmtree.flush") as sp:
            sp.add("amortised_entries", len(journal_digests))
            self._mpt.put(key, _encode_clue_value(accumulator))
        return versions

    # ---------------------------------------------------------------- reads

    def has_clue(self, clue: str) -> bool:
        return clue_key_hash(clue) in self._accumulators

    def entry_count(self, clue: str) -> int:
        accumulator = self._accumulators.get(clue_key_hash(clue))
        return 0 if accumulator is None else accumulator.size

    def entry_digest(self, clue: str, version: int) -> Digest:
        return self._require(clue).leaf(version)

    def clues(self) -> list[str]:
        return sorted(self._clue_names.values())

    def _require(self, clue: str) -> ShrubsAccumulator:
        accumulator = self._accumulators.get(clue_key_hash(clue))
        if accumulator is None:
            raise KeyError(f"unknown clue: {clue!r}")
        return accumulator

    # --------------------------------------------------------------- proving

    def prove_clue(
        self,
        clue: str,
        version_start: int = 0,
        version_end: int | None = None,
    ) -> ClueProof:
        """Build the client proof set for versions ``[start, end)`` (§IV-C 1-5).

        Defaults to the entire clue so far — scenario 1 of §IV-C; a narrower
        range implements scenario 2 (version-bounded verification).
        """
        accumulator = self._require(clue)
        end = accumulator.size if version_end is None else version_end
        if not 0 <= version_start < end <= accumulator.size:
            raise IndexError(
                f"version range [{version_start}, {end}) invalid for clue of "
                f"size {accumulator.size}"
            )
        key = clue_key_hash(clue)
        # Steps 1-4: destination leaves N1, proof paths N2, derivable set N3,
        # and the shipped difference — all inside prove_batch.
        batch = accumulator.prove_batch(list(range(version_start, end)))
        # Step 5: CM-Tree1 proof nodes across layers, bottom-up.
        clue_value = self._mpt.get(key)
        mpt_proof = self._mpt.prove(key)
        return ClueProof(
            clue=clue,
            version_start=version_start,
            version_end=end,
            entry_count=accumulator.size,
            batch=batch,
            clue_value=clue_value,
            mpt_proof=mpt_proof,
        )

    # ------------------------------------------------------------- verifying

    def verify_clue_server(
        self, clue: str, journal_digests: dict[int, Digest]
    ) -> bool:
        """Server-side verification (§IV-C): steps 1-3 plus a local check.

        The server validates the supplied digests directly against its own
        CM-Tree2, skipping proof-set shipment (steps 4-5).
        """
        try:
            accumulator = self._require(clue)
        except KeyError:
            return False
        for version, digest in journal_digests.items():
            if not 0 <= version < accumulator.size:
                return False
            if accumulator.leaf(version) != digest:
                return False
        return True

    # ------------------------------------------------------------- utilities

    def num_nodes(self) -> int:
        """Stored CM-Tree2 node count across all clues (storage accounting)."""
        return sum(acc.num_nodes() for acc in self._accumulators.values())

    def clue_snapshots(self) -> list[tuple[str, int, tuple[Digest, ...]]]:
        """(clue, size, peaks) per clue — pseudo-genesis resume material."""
        out = []
        for key, accumulator in self._accumulators.items():
            out.append(
                (self._clue_names[key], accumulator.size, tuple(accumulator.peaks()))
            )
        return sorted(out)

    def clue_snapshot_at(self, clue: str, at_size: int) -> tuple[str, int, tuple[Digest, ...]]:
        """Historical (clue, size, peaks) as of the clue's first ``at_size`` entries."""
        accumulator = self._require(clue)
        return (clue, at_size, tuple(accumulator.peaks(at_size=at_size)))

    def reachable_nodes(self) -> set[Digest]:
        """Node ids reachable from the current CM-Tree1 root — the live set
        a node-store compaction must keep."""
        return self._mpt.reachable()

    def export_nodes(self) -> list[tuple[Digest, bytes]]:
        """Live MPT nodes for snapshots of non-persistent node stores."""
        return self._mpt.export_nodes()

    def import_nodes(self, nodes) -> None:
        self._mpt.import_nodes(nodes)

    # ----------------------------------------------------------- checkpoints

    def dump_state(self) -> dict:
        """CM-Tree2 state + CM-Tree1 root for a ledger checkpoint.

        MPT *nodes* are not included — they live in the (persistent) node
        store; the root digest is enough to re-attach to them.
        """
        return {
            "root": self.root,
            "clues": [
                {"name": self._clue_names[key], "levels": accumulator.dump_levels()}
                for key, accumulator in sorted(self._accumulators.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict, store: KVStore | None = None) -> "CMTree":
        """Rebuild from :meth:`dump_state`, re-attaching the MPT to ``store``
        (which must already hold the nodes reachable from the saved root)."""
        tree = cls(store)
        tree._mpt.root = bytes(state["root"])
        for entry in state["clues"]:
            name = str(entry["name"])
            key = clue_key_hash(name)
            tree._accumulators[key] = ShrubsAccumulator.from_levels(entry["levels"])
            tree._clue_names[key] = name
        return tree
