"""Shrubs Merkle accumulator — O(1) amortised append, node-set proofs.

The paper bases *fam* and *CM-Tree2* on the Shrubs tree (§III-A1): an
append-only Merkle accumulator that, instead of padding to a power-of-two
root after every insertion, maintains a *frontier* of completed subtree roots
(a node set).  An interior node is computed exactly once — when its right
subtree completes — which makes insertion O(1) amortised, and the published
commitment before the tree is full is the frontier itself ("node-set proof").

Node addressing is ``(level, index)``: leaves are ``(0, i)``; node ``(l, j)``
is the root of leaves ``[j * 2^l, (j+1) * 2^l)`` and exists once leaf
``(j+1) * 2^l - 1`` has been appended.  This matches the arrival-order cell
numbering of Figure 3(a) — e.g. the frontier after 7 leaves is the roots of
subtrees of sizes 4, 2, 1, exactly the paper's {cell7, cell10, cell11}.

A single commitment digest ("bagged root") is derived from the frontier by a
right-to-left fold, so callers that want one hash (block headers, anchors)
can have it, while node-set verification stays available.
"""

from __future__ import annotations

from ..crypto.hashing import EMPTY_DIGEST, Digest, node_hash
from .proofs import (
    BatchProof,
    MembershipProof,
    PathStep,
    bag_peaks,
    peak_positions,
)

__all__ = ["ShrubsAccumulator", "FrontierAccumulator", "peak_positions"]


class ShrubsAccumulator:
    """Append-only Merkle accumulator with frontier (node-set) commitments."""

    def __init__(self) -> None:
        # _levels[l][j] is the digest of node (l, j), or None once erased
        # by erase_prefix.  Nodes within a level are only ever appended in
        # index order, so flat lists suffice.
        self._levels: list[list[Digest | None]] = [[]]

    # ------------------------------------------------------------------ state

    @property
    def size(self) -> int:
        """Number of leaves appended so far."""
        return len(self._levels[0])

    def __len__(self) -> int:
        return self.size

    def node(self, level: int, index: int) -> Digest:
        """Digest of node ``(level, index)``.

        Raises :class:`IndexError` if never computed, :class:`KeyError` if
        dropped by :meth:`erase_prefix`.
        """
        if level >= len(self._levels) or index >= len(self._levels[level]):
            raise IndexError(f"node ({level}, {index}) does not exist")
        digest = self._levels[level][index]
        if digest is None:
            raise KeyError(f"node ({level}, {index}) was erased")
        return digest

    def has_node(self, level: int, index: int) -> bool:
        return level < len(self._levels) and index < len(self._levels[level])

    def leaf(self, index: int) -> Digest:
        """Digest of leaf ``index``."""
        return self.node(0, index)

    # ---------------------------------------------------------------- append

    def append_leaf(self, digest: Digest) -> int:
        """Append a 32-byte leaf digest; returns its leaf index.

        Computes exactly the interior nodes that complete, so the amortised
        cost is O(1) hashes per append.
        """
        if len(digest) != len(EMPTY_DIGEST):
            raise ValueError("leaf digest must be 32 bytes")
        index = len(self._levels[0])
        self._levels[0].append(digest)
        level, j = 0, index
        # While the freshly completed node is a right child, its parent is
        # now computable.
        while j & 1:
            left = self._levels[level][j - 1]
            right = self._levels[level][j]
            if level + 1 >= len(self._levels):
                self._levels.append([])
            self._levels[level + 1].append(node_hash(left, right))
            level += 1
            j >>= 1
        return index

    def extend(self, digests: list[Digest]) -> None:
        """Append many leaf digests."""
        for digest in digests:
            self.append_leaf(digest)

    # ------------------------------------------------------------ commitment

    def peaks(self, at_size: int | None = None) -> list[Digest]:
        """The frontier (node-set commitment) at ``at_size`` (default: now)."""
        size = self._resolve_size(at_size)
        return [self.node(level, index) for level, index in peak_positions(size)]

    def root(self, at_size: int | None = None) -> Digest:
        """Single bagged commitment digest; ``EMPTY_DIGEST`` when empty."""
        size = self._resolve_size(at_size)
        if size == 0:
            return EMPTY_DIGEST
        return bag_peaks(self.peaks(size))

    def _resolve_size(self, at_size: int | None) -> int:
        if at_size is None:
            return self.size
        if not 0 <= at_size <= self.size:
            raise ValueError(f"at_size {at_size} out of range [0, {self.size}]")
        return at_size

    # --------------------------------------------------------------- proving

    def prove(self, leaf_index: int, at_size: int | None = None) -> MembershipProof:
        """Membership proof for one leaf against the commitment at ``at_size``.

        Historical commitments are supported because interior nodes are
        immutable once written: proving against an earlier, smaller tree just
        stops climbing earlier.
        """
        size = self._resolve_size(at_size)
        if not 0 <= leaf_index < size:
            raise IndexError(f"leaf {leaf_index} not in tree of size {size}")
        path: list[PathStep] = []
        level, j = 0, leaf_index
        # Ascend while the parent node exists at this tree size.
        while ((j >> 1) + 1) << (level + 1) <= size:
            sibling = j ^ 1
            path.append(
                PathStep(self.node(level, sibling), sibling_on_left=bool(j & 1))
            )
            level += 1
            j >>= 1
        peaks = peak_positions(size)
        our_position = peaks.index((level, j))
        return MembershipProof(
            leaf_index=leaf_index,
            tree_size=size,
            path=path,
            peaks_left=[self.node(pl, pi) for pl, pi in peaks[:our_position]],
            peaks_right=[self.node(pl, pi) for pl, pi in peaks[our_position + 1 :]],
        )

    def prove_batch(self, leaf_indices: list[int], at_size: int | None = None) -> BatchProof:
        """Minimal joint proof for a set of leaves (§IV-C steps 2–3).

        Helper nodes that the verifier can derive from the proven leaves
        themselves (the paper's N2 ∩ N3) are omitted; only the set difference
        is shipped.
        """
        size = self._resolve_size(at_size)
        targets = sorted(set(leaf_indices))
        if not targets:
            raise ValueError("need at least one leaf index")
        if targets[0] < 0 or targets[-1] >= size:
            raise IndexError(f"leaf indices out of range for tree of size {size}")
        provided: dict[tuple[int, int], Digest] = {}
        covered_peaks: set[tuple[int, int]] = set()
        current = set(targets)
        level = 0
        while current:
            next_level: set[int] = set()
            for j in current:
                if ((j >> 1) + 1) << (level + 1) <= size:
                    sibling = j ^ 1
                    if sibling not in current:
                        provided[(level, sibling)] = self.node(level, sibling)
                    next_level.add(j >> 1)
                else:
                    covered_peaks.add((level, j))
            current = next_level
            level += 1
        peaks = peak_positions(size)
        peaks_sorted_by_order = peaks  # already left-to-right
        first_covered = min(peaks_sorted_by_order.index(p) for p in covered_peaks)
        last_covered = max(peaks_sorted_by_order.index(p) for p in covered_peaks)
        # Peaks strictly between covered ones must also be shipped: include
        # them in `provided` keyed by position so the verifier can re-bag.
        for position in peaks_sorted_by_order[first_covered : last_covered + 1]:
            if position not in covered_peaks:
                provided[position] = self.node(position[0], position[1])
        return BatchProof(
            leaf_indices=targets,
            tree_size=size,
            nodes=provided,
            peaks_left=[self.node(pl, pi) for pl, pi in peaks[:first_covered]],
            peaks_right=[self.node(pl, pi) for pl, pi in peaks[last_covered + 1 :]],
        )

    # ------------------------------------------------------------- verifying

    @staticmethod
    def verify_batch(
        leaf_digests: dict[int, Digest], proof: BatchProof, expected_root: Digest
    ) -> bool:
        """Verify a :class:`BatchProof` against a trusted commitment.

        ``leaf_digests`` maps each proven leaf index to its digest; the set of
        keys must equal the proof's ``leaf_indices`` (the count check is what
        enforces lineage *completeness* — no record can be omitted).
        """
        if sorted(leaf_digests) != list(proof.leaf_indices):
            return False
        size = proof.tree_size
        if size <= 0 or any(not 0 <= i < size for i in proof.leaf_indices):
            return False
        known: dict[tuple[int, int], Digest] = dict(proof.nodes)
        for index, digest in leaf_digests.items():
            position = (0, index)
            if position in known and known[position] != digest:
                return False
            known[position] = digest
        peaks = peak_positions(size)
        max_level = peaks[0][0]
        for level in range(max_level + 1):
            indices = sorted(j for (l, j) in known if l == level)
            for j in indices:
                parent = (level + 1, j >> 1)
                if ((j >> 1) + 1) << (level + 1) > size or parent in known:
                    continue
                sibling = (level, j ^ 1)
                if sibling not in known:
                    return False
                left = known[(level, j & ~1)]
                right = known[(level, (j & ~1) + 1)]
                known[parent] = node_hash(left, right)
        try:
            middle = [known[position] for position in peaks if position in known]
            # Reconstruct full frontier: left flank + recomputed middle + right flank.
            covered = [position for position in peaks if position in known]
            first = peaks.index(covered[0])
            last = peaks.index(covered[-1])
            if len(covered) != last - first + 1:
                return False
            if len(proof.peaks_left) != first:
                return False
            if len(proof.peaks_right) != len(peaks) - last - 1:
                return False
            frontier = list(proof.peaks_left) + middle + list(proof.peaks_right)
            return bag_peaks(frontier) == expected_root
        except (KeyError, ValueError, IndexError):
            return False

    # ------------------------------------------------------------- utilities

    def num_nodes(self) -> int:
        """Total stored node count (storage-overhead accounting).

        Erased slots (see :meth:`erase_prefix`) do not count.
        """
        return sum(
            sum(1 for node in level if node is not None) for level in self._levels
        )

    def erase_prefix(self, leaf_count: int) -> int:
        """Erase nodes covering leaves ``[0, leaf_count)`` except the spine.

        Implements the paper's fine-grained purge erasure (§III-A2): "the
        nodes to be retained are all latter nodes of the next node of the
        purging node's Merkle path, meaning that all left nodes on this path
        can be erased."  Concretely: every node whose leaf range lies wholly
        before ``leaf_count`` is erased **except** the left-siblings on the
        path climbing from leaf ``leaf_count`` — those are exactly the nodes
        future proofs (for leaves >= leaf_count) still reference.

        Returns the number of nodes erased.  Proofs for erased leaves become
        impossible (that is purge's contract); proofs for every retained
        leaf keep working, and the root is unchanged.
        """
        if not 0 <= leaf_count <= self.size:
            raise ValueError(f"leaf_count {leaf_count} out of range [0, {self.size}]")
        if leaf_count == 0:
            return 0
        # The spine: at each level, the left-sibling (if our path node is a
        # right child) must survive; everything else under the prefix goes.
        keep: set[tuple[int, int]] = set()
        level, j = 0, leaf_count
        while level < len(self._levels):
            if j & 1 and j - 1 < len(self._levels[level]):
                keep.add((level, j - 1))
            j >>= 1
            level += 1
        erased = 0
        for level, nodes in enumerate(self._levels):
            # Nodes fully inside the prefix have index < ceil(leaf_count/2^l)
            # and end <= leaf_count.
            limit = leaf_count >> level
            for index in range(min(limit, len(nodes))):
                if (level, index) in keep or nodes[index] is None:
                    continue
                nodes[index] = None
                erased += 1
        return erased

    def is_erased(self, level: int, index: int) -> bool:
        """True if node ``(level, index)`` was dropped by :meth:`erase_prefix`."""
        return (
            level < len(self._levels)
            and index < len(self._levels[level])
            and self._levels[level][index] is None
        )

    def recompute_root_from_scratch(self) -> Digest:
        """Rebuild the commitment from leaves only (test oracle, O(n))."""
        fresh = ShrubsAccumulator()
        for digest in self._levels[0]:
            if digest is None:
                raise KeyError("cannot recompute: erased leaves present")
            fresh.append_leaf(digest)
        return fresh.root()

    def frontier_snapshot(self) -> tuple[int, list[Digest]]:
        """(size, peaks) — enough state to *resume* accumulation elsewhere."""
        return self.size, self.peaks()

    def dump_levels(self) -> list[list[Digest | None]]:
        """Full node table (``None`` for erased slots) — checkpoint material.

        Unlike :meth:`frontier_snapshot` this preserves *proving* power: an
        accumulator rebuilt by :meth:`from_levels` serves the same membership
        and batch proofs, not just the same roots.
        """
        return [list(level) for level in self._levels]

    @classmethod
    def from_levels(cls, levels: list[list[Digest | None]]) -> "ShrubsAccumulator":
        """Rebuild an accumulator from :meth:`dump_levels` output."""
        fresh = cls()
        restored = [
            [None if digest is None else bytes(digest) for digest in level]
            for level in levels
        ]
        fresh._levels = restored if restored else [[]]
        return fresh


class FrontierAccumulator:
    """Peaks-only Shrubs accumulator: O(#peaks) state, O(1) amortised append.

    Holds just the frontier, so it can neither store leaves nor produce
    membership proofs — but it computes exactly the same roots as
    :class:`ShrubsAccumulator`, and crucially it can be **resumed from a
    snapshot** ``(size, peaks)``.  Auditors use this to replay commitment
    evolution from a pseudo-genesis snapshot after a purge, and light
    verifiers use it to track a growing ledger with constant memory.
    """

    def __init__(self, size: int = 0, peaks: list[Digest] | None = None) -> None:
        peaks = list(peaks or [])
        if len(peaks) != bin(size).count("1"):
            raise ValueError(
                f"size {size} requires {bin(size).count('1')} peaks, got {len(peaks)}"
            )
        self.size = size
        # One peak per set bit of size, highest level first; peak i has level
        # equal to the i-th highest set bit.
        self._peaks: list[tuple[int, Digest]] = [
            (level, digest)
            for (level, _index), digest in zip(peak_positions(size), peaks)
        ]

    @classmethod
    def from_accumulator(cls, accumulator: ShrubsAccumulator) -> "FrontierAccumulator":
        size, peaks = accumulator.frontier_snapshot()
        return cls(size, peaks)

    def append_leaf(self, digest: Digest) -> int:
        """Append a leaf digest; merges completed subtrees right-to-left."""
        if len(digest) != len(EMPTY_DIGEST):
            raise ValueError("leaf digest must be 32 bytes")
        index = self.size
        level, current = 0, digest
        while self._peaks and self._peaks[-1][0] == level:
            left_level, left = self._peaks.pop()
            current = node_hash(left, current)
            level = left_level + 1
        self._peaks.append((level, current))
        self.size += 1
        return index

    def peaks(self) -> list[Digest]:
        return [digest for _level, digest in self._peaks]

    def root(self) -> Digest:
        if self.size == 0:
            return EMPTY_DIGEST
        return bag_peaks(self.peaks())

    def __len__(self) -> int:
        return self.size
