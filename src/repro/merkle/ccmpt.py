"""ccMPT — the clue-counter MPT baseline (from the VLDB'20 LedgerDB paper).

The earlier LedgerDB design kept, per clue, only a *counter* m in an MPT
(write-intensive friendly: appending a journal just bumps one MPT value).
Clue verification must then (§IV-B1):

1. verify the integrity of the clue's counter m via an MPT path proof, and
2. verify the existence of **all m journals individually** against the global
   ledger accumulator — O(m x log n) total, the linear expansion CM-Tree
   eliminates.

This module is the faithful baseline for the Figure 9 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, clue_key_hash
from ..encoding import decode, encode
from ..storage.kv import KVStore
from .mpt import MPT, MPTProof
from .proofs import MembershipProof
from .tim import TimAccumulator

__all__ = ["ClueCounterMPT", "CCMPTClueProof"]


@dataclass(frozen=True)
class CCMPTClueProof:
    """Everything a client needs to verify a clue under ccMPT.

    ``existence_proofs`` holds one full global-accumulator proof per journal —
    the m-fold cost that makes ccMPT verification linear in the clue length.
    """

    clue: str
    counter: int
    counter_proof: MPTProof
    jsns: list[int]
    existence_proofs: list[MembershipProof]


class ClueCounterMPT:
    """Clue world-state as (clue -> counter) MPT over a global accumulator."""

    def __init__(self, ledger_accumulator: TimAccumulator, store: KVStore | None = None) -> None:
        self._ledger = ledger_accumulator
        self._mpt = MPT(store)
        # Non-verified retrieval index (the cSL's role): clue -> jsn list.
        self._index: dict[str, list[int]] = {}

    @property
    def root(self) -> Digest:
        return self._mpt.root

    def add(self, clue: str, jsn: int) -> int:
        """Record that journal ``jsn`` carries ``clue``; returns the new counter."""
        jsns = self._index.setdefault(clue, [])
        jsns.append(jsn)
        counter = len(jsns)
        self._mpt.put(clue_key_hash(clue), encode(counter))
        return counter

    def count(self, clue: str) -> int:
        value = self._mpt.get_default(clue_key_hash(clue))
        return 0 if value is None else decode(value)

    def jsns(self, clue: str) -> list[int]:
        return list(self._index.get(clue, []))

    # --------------------------------------------------------------- proving

    def prove_clue(self, clue: str) -> CCMPTClueProof:
        """Build the full clue proof: counter path + m existence proofs."""
        jsns = self._index.get(clue)
        if not jsns:
            raise KeyError(f"unknown clue: {clue!r}")
        counter_proof = self._mpt.prove(clue_key_hash(clue))
        existence_proofs = [self._ledger.get_proof(jsn) for jsn in jsns]
        return CCMPTClueProof(
            clue=clue,
            counter=len(jsns),
            counter_proof=counter_proof,
            jsns=list(jsns),
            existence_proofs=existence_proofs,
        )

    # ------------------------------------------------------------- verifying

    @staticmethod
    def verify_clue(
        proof: CCMPTClueProof,
        journal_digests: list[Digest],
        mpt_root: Digest,
        ledger_root: Digest,
    ) -> bool:
        """Client-side ccMPT clue verification (the O(m log n) procedure).

        ``journal_digests[i]`` must be the leaf digest of ``proof.jsns[i]``.
        Fails if the counter mismatches, any MPT path step is wrong, or any of
        the m accumulator proofs fails.
        """
        if len(journal_digests) != proof.counter or len(proof.jsns) != proof.counter:
            return False
        if len(proof.existence_proofs) != proof.counter:
            return False
        if proof.counter_proof.key != clue_key_hash(proof.clue):
            return False
        if proof.counter_proof.value is None or decode(proof.counter_proof.value) != proof.counter:
            return False
        if not proof.counter_proof.verify(mpt_root):
            return False
        for digest, jsn, membership in zip(journal_digests, proof.jsns, proof.existence_proofs):
            if membership.leaf_index != jsn:
                return False
            if not membership.verify(digest, ledger_root):
                return False
        return True
