"""fam — the fractal accumulating model (§III-A1), LedgerDB's *what* engine.

*fam* layers blockchain-style linked entanglement over Shrubs accumulators,
but fractally instead of linearly (Rule 1): when the current tree of size
``2^delta`` fills up, its root becomes the **first leaf of a new tree** (a
*merged leaf*), opening the next accumulation epoch.  The epoch chain

    epoch 0 root -> leaf 0 of epoch 1 -> ... -> live epoch frontier

means the live commitment transitively commits the entire ledger, while any
single verification only ever touches trees of height <= delta.

Trusted anchors (*fam-aoa*): every completed epoch root is a natural anchor
point.  A verifier that has validated epoch *k* stores its root; existence
proofs for journals in anchored epochs then cost O(delta) — fixed, regardless
of total ledger size — versus the O(log n) ever-growing cost of *tim*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import Digest
from .proofs import MembershipProof
from .shrubs import FrontierAccumulator, ShrubsAccumulator

__all__ = ["FamAccumulator", "FamProof", "FamReplayer", "AnchorStore"]


@dataclass(frozen=True)
class FamProof:
    """Existence proof for one journal digest in a fam tree.

    ``epoch_proof`` covers the journal inside its own epoch tree.  For a
    journal in a completed epoch and a verifier *without* an anchor for that
    epoch, ``link_proofs`` carries the merged-leaf chain: one proof per later
    epoch showing epoch *k*'s root sits at leaf 0 of epoch *k+1*, up to the
    live epoch.  Anchored verifiers ignore ``link_proofs`` entirely.
    """

    jsn: int
    epoch_index: int
    num_epochs: int
    epoch_proof: MembershipProof
    link_proofs: list[MembershipProof] = field(default_factory=list)

    @property
    def anchored_cost(self) -> int:
        """Hash-path length when verified against an epoch anchor."""
        return len(self.epoch_proof.path)

    @property
    def full_cost(self) -> int:
        """Hash-path length when chained all the way to the live commitment."""
        return len(self.epoch_proof.path) + sum(len(p.path) for p in self.link_proofs)

    def to_bytes(self) -> bytes:
        from ..encoding import encode

        return encode(
            {
                "jsn": self.jsn,
                "epoch_index": self.epoch_index,
                "num_epochs": self.num_epochs,
                "epoch_proof": self.epoch_proof.to_bytes(),
                "link_proofs": [proof.to_bytes() for proof in self.link_proofs],
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FamProof":
        from ..encoding import decode

        obj = decode(data)
        return cls(
            jsn=obj["jsn"],
            epoch_index=obj["epoch_index"],
            num_epochs=obj["num_epochs"],
            epoch_proof=MembershipProof.from_bytes(bytes(obj["epoch_proof"])),
            link_proofs=[
                MembershipProof.from_bytes(bytes(blob)) for blob in obj["link_proofs"]
            ],
        )


class AnchorStore:
    """Client-side store of verified epoch roots (the *aoa* trusted anchors).

    Recording an anchor asserts "all data up to and including this epoch has
    been cryptographically verified" — callers must only add roots they have
    actually validated (e.g. via :meth:`FamAccumulator.verify_full`).
    """

    def __init__(self) -> None:
        self._roots: dict[int, Digest] = {}

    def add(self, epoch_index: int, root: Digest) -> None:
        existing = self._roots.get(epoch_index)
        if existing is not None and existing != root:
            raise ValueError(f"conflicting anchor for epoch {epoch_index}")
        self._roots[epoch_index] = root

    def get(self, epoch_index: int) -> Digest | None:
        return self._roots.get(epoch_index)

    def items(self) -> list[tuple[int, Digest]]:
        """Sorted ``(epoch_index, root)`` pairs — the exportable anchor set."""
        return sorted(self._roots.items())

    def advance(
        self,
        epoch_index: int,
        claimed_root: Digest,
        link_proof: MembershipProof,
    ) -> bool:
        """Anchor epoch ``epoch_index`` from the anchor for ``epoch_index-1``.

        Verifies the Rule-1 merged-leaf link: the previous anchor must sit at
        leaf 0 of the new epoch and fold to ``claimed_root``.  O(delta) work
        per epoch — this is how a light verifier keeps its anchors current
        without replaying history.  Returns False (and stores nothing) if the
        link does not verify or the previous anchor is missing.
        """
        previous = self._roots.get(epoch_index - 1)
        if previous is None:
            return False
        if link_proof.leaf_index != 0:
            return False
        try:
            if link_proof.computed_root(previous) != claimed_root:
                return False
        except (ValueError, IndexError):
            return False
        self.add(epoch_index, claimed_root)
        return True

    def __contains__(self, epoch_index: int) -> bool:
        return epoch_index in self._roots

    def __len__(self) -> int:
        return len(self._roots)


class FamAccumulator:
    """Fractal accumulating model with fixed fractal height ``delta``.

    Epoch 0 holds ``2^delta`` journal leaves; every later epoch holds
    ``2^delta - 1`` journals plus the merged leaf (slot 0) carrying the
    previous epoch's root.
    """

    def __init__(self, fractal_height: int) -> None:
        if fractal_height < 1:
            raise ValueError("fractal height must be >= 1")
        self.fractal_height = fractal_height
        self.epoch_capacity = 1 << fractal_height
        self._epochs: list[ShrubsAccumulator] = [ShrubsAccumulator()]
        self._epoch_roots: list[Digest] = []  # roots of completed epochs
        self._erased_epochs: set[int] = set()  # trees dropped by purge
        self._size = 0  # journal digests appended (merged leaves excluded)

    # ------------------------------------------------------------------ state

    @property
    def size(self) -> int:
        """Number of journal digests accumulated (jsn of the next append)."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def num_epochs(self) -> int:
        return len(self._epochs)

    def epoch_root(self, epoch_index: int) -> Digest:
        """Root of a *completed* epoch (an anchor candidate)."""
        return self._epoch_roots[epoch_index]

    def current_root(self) -> Digest:
        """The live global commitment (bagged root of the live epoch)."""
        return self._epochs[-1].root()

    def current_frontier(self) -> list[Digest]:
        """Node-set commitment of the live epoch (Shrubs-style)."""
        return self._epochs[-1].peaks()

    def locate(self, jsn: int) -> tuple[int, int]:
        """Map a journal sequence number to ``(epoch_index, leaf_slot)``."""
        if not 0 <= jsn < self._size:
            raise IndexError(f"jsn {jsn} out of range [0, {self._size})")
        cap = self.epoch_capacity
        if jsn < cap:
            return (0, jsn)
        k = 1 + (jsn - cap) // (cap - 1)
        slot = 1 + (jsn - cap) % (cap - 1)
        return (k, slot)

    def jsn_of(self, epoch_index: int, slot: int) -> int:
        """Inverse of :meth:`locate` (merged slot 0 of epoch >= 1 is invalid)."""
        cap = self.epoch_capacity
        if epoch_index == 0:
            return slot
        if slot == 0:
            raise ValueError("slot 0 of a non-genesis epoch is the merged leaf")
        return cap + (epoch_index - 1) * (cap - 1) + (slot - 1)

    def leaf_digest(self, jsn: int) -> Digest:
        """The accumulated digest of journal ``jsn`` (its retained hash).

        Raises :class:`KeyError` if the containing epoch was erased by purge.
        """
        epoch_index, slot = self.locate(jsn)
        if epoch_index in self._erased_epochs:
            raise KeyError(f"epoch {epoch_index} erased; digest of jsn {jsn} gone")
        return self._epochs[epoch_index].leaf(slot)

    # ---------------------------------------------------------------- append

    def append(self, digest: Digest) -> int:
        """Accumulate one journal digest; returns its jsn.

        Rolls the epoch over per Rule 1 when the live tree fills.
        """
        live = self._epochs[-1]
        live.append_leaf(digest)
        jsn = self._size
        self._size += 1
        if live.size == self.epoch_capacity:
            self._roll_epoch()
        return jsn

    def append_many(self, digests: list[Digest]) -> list[int]:
        """Accumulate several journal digests; returns their jsns, in order.

        Same state evolution as repeated :meth:`append` (Rule-1 rollovers
        included) without the per-call bookkeeping — the fam half of the
        batched append pipeline.
        """
        epochs = self._epochs
        capacity = self.epoch_capacity
        jsns: list[int] = []
        for digest in digests:
            live = epochs[-1]
            live.append_leaf(digest)
            jsns.append(self._size)
            self._size += 1
            if live.size == capacity:
                self._roll_epoch()
        return jsns

    def _roll_epoch(self) -> None:
        completed_root = self._epochs[-1].root()
        self._epoch_roots.append(completed_root)
        fresh = ShrubsAccumulator()
        # Rule 1: the full tree's root becomes the first (merged) leaf of the
        # next tree.  Roots are node-domain digests, so merged leaves cannot
        # be confused with journal leaves.
        fresh.append_leaf(completed_root)
        self._epochs.append(fresh)

    # --------------------------------------------------------------- proving

    def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        """Existence proof for journal ``jsn``.

        With ``anchored=True`` (the fam-aoa fast path) only the within-epoch
        path is produced — O(delta) work.  With ``anchored=False`` the
        merged-leaf link chain to the live epoch is included so a verifier
        holding only the current commitment can check it.
        """
        epoch_index, slot = self.locate(jsn)
        if epoch_index in self._erased_epochs:
            raise KeyError(f"epoch {epoch_index} was erased by purge; jsn {jsn} unprovable")
        epoch = self._epochs[epoch_index]
        epoch_proof = epoch.prove(slot)
        link_proofs: list[MembershipProof] = []
        if not anchored:
            for k in range(epoch_index + 1, len(self._epochs)):
                link_proofs.append(self._epochs[k].prove(0))
        return FamProof(
            jsn=jsn,
            epoch_index=epoch_index,
            num_epochs=len(self._epochs),
            epoch_proof=epoch_proof,
            link_proofs=link_proofs,
        )

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        """Existence proofs for many journals, byte-identical to calling
        :meth:`get_proof` per jsn.

        The bulk win is the un-anchored path: the merged-leaf link chain from
        epoch *k* to the live epoch is the same for every journal in epoch
        *k* (and a suffix of the chain for every earlier epoch), so it is
        computed once per epoch touched instead of once per proof.
        """
        link_cache: dict[int, list[MembershipProof]] = {}
        num_epochs = len(self._epochs)
        proofs: list[FamProof] = []
        for jsn in jsns:
            epoch_index, slot = self.locate(jsn)
            if epoch_index in self._erased_epochs:
                raise KeyError(
                    f"epoch {epoch_index} was erased by purge; jsn {jsn} unprovable"
                )
            epoch_proof = self._epochs[epoch_index].prove(slot)
            if anchored:
                link_proofs: list[MembershipProof] = []
            else:
                link_proofs = list(self._link_chain(epoch_index, link_cache))
            proofs.append(
                FamProof(
                    jsn=jsn,
                    epoch_index=epoch_index,
                    num_epochs=num_epochs,
                    epoch_proof=epoch_proof,
                    link_proofs=link_proofs,
                )
            )
        return proofs

    def _link_chain(
        self, epoch_index: int, cache: dict[int, list[MembershipProof]]
    ) -> list[MembershipProof]:
        """Memoized merged-leaf chain from ``epoch_index`` to the live epoch."""
        last = len(self._epochs) - 1
        if epoch_index >= last:
            return []
        missing = []
        k = epoch_index
        while k < last and k not in cache:
            missing.append(k)
            k += 1
        chain = cache.get(k, [])
        for k in reversed(missing):
            chain = [self._epochs[k + 1].prove(0)] + chain
            cache[k] = chain
        return cache[epoch_index]

    # ------------------------------------------------------------- verifying

    @staticmethod
    def verify_full(leaf_digest: Digest, proof: FamProof, trusted_root: Digest) -> bool:
        """Verify a full-chain proof against the live commitment.

        Folds the journal to its epoch root, then walks each link proof
        (merged leaf 0 = previous root) up to the live epoch, and compares
        with ``trusted_root``.  Never raises.
        """
        return FamAccumulator.fold_full(leaf_digest, proof) == trusted_root

    @staticmethod
    def fold_full(leaf_digest: Digest, proof: FamProof) -> Digest | None:
        """The live commitment a full-chain proof *implies*, or None.

        The fold half of :meth:`verify_full`, exposed so composite proofs
        (e.g. a sharded deployment's shard→root link) can recover the fam
        root this proof speaks for and chain it into a further inclusion
        check.  Returns None on any malformed step; never raises.
        """
        try:
            current = proof.epoch_proof.computed_root(leaf_digest)
        except (ValueError, IndexError):
            return None
        for link in proof.link_proofs:
            if link.leaf_index != 0:
                return None
            try:
                current = link.computed_root(current)
            except (ValueError, IndexError):
                return None
        return current

    def verify_with_anchors(
        self,
        leaf_digest: Digest,
        proof: FamProof,
        anchors: AnchorStore,
    ) -> bool:
        """fam-aoa verification: O(delta) against a stored epoch anchor.

        Journals in the live epoch are checked against the live commitment;
        journals in completed epochs are checked against that epoch's anchor.
        Falls back to ``False`` (not to full-chain verification) when the
        anchor is missing, so callers can distinguish and fetch links.
        """
        if proof.epoch_index == self.num_epochs - 1:
            expected = self.current_root()
        else:
            anchor = anchors.get(proof.epoch_index)
            if anchor is None:
                return False
            expected = anchor
        try:
            return proof.epoch_proof.computed_root(leaf_digest) == expected
        except (ValueError, IndexError):
            return False

    # -------------------------------------------------- anchor advancement

    def prove_epoch_link(self, epoch_index: int) -> MembershipProof:
        """Proof that epoch ``epoch_index - 1``'s root is leaf 0 of the
        *completed* epoch ``epoch_index`` (the Rule-1 merged-leaf link).

        A client holding the anchor for epoch k verifies this against the
        claimed root of epoch k+1 and, on success, may anchor k+1 too —
        advancing its trusted anchors with O(delta) work per epoch instead
        of re-verifying history (see :meth:`AnchorStore.advance`).
        """
        completed = len(self._epoch_roots)  # epochs 0..completed-1 are sealed
        if not 1 <= epoch_index <= completed - 1:
            raise ValueError(
                f"epoch {epoch_index} must be a completed non-genesis epoch "
                f"(valid range: 1..{completed - 1})"
            )
        if epoch_index in self._erased_epochs:
            raise KeyError(f"epoch {epoch_index} was erased by purge")
        return self._epochs[epoch_index].prove(0, at_size=self.epoch_capacity)

    def live_size(self, epoch_index: int | None = None) -> int:
        """Leaf count of one epoch's tree, merged leaf included.

        Defaults to the live epoch.  This is the size the signed-tree-head /
        consistency machinery speaks in — distinct from :attr:`size`, which
        counts journals across all epochs.
        """
        if epoch_index is None:
            epoch_index = len(self._epochs) - 1
        if not 0 <= epoch_index < len(self._epochs):
            raise IndexError(f"epoch {epoch_index} out of range")
        return self._epochs[epoch_index].size

    def head_root(self, epoch_index: int, live_size: int | None = None) -> Digest:
        """Bagged root of epoch ``epoch_index``'s tree at ``live_size`` leaves.

        With ``live_size=None`` this is the epoch's current root (for the
        live epoch, the global commitment).  Historical sizes work because
        Shrubs interior nodes are immutable — this is how the server signs
        consistency assertions about past heads.
        """
        if self.is_epoch_erased(epoch_index):
            raise KeyError(f"epoch {epoch_index} was erased by purge")
        return self._epochs[epoch_index].root(at_size=live_size)

    def prove_head_link(
        self, epoch_index: int, live_size: int | None = None
    ) -> MembershipProof:
        """Merged-leaf proof of leaf 0 against an arbitrary head of an epoch.

        The generalisation of :meth:`prove_epoch_link` that consistency
        bundles need for their final step: epoch ``epoch_index - 1``'s root
        sits at leaf 0 of epoch ``epoch_index``'s tree *as of* ``live_size``
        leaves (default: the tree's current size), which may be any head the
        LSP ever signed — not just the sealed capacity.
        """
        if epoch_index < 1:
            raise ValueError("epoch 0 has no merged leaf")
        if self.is_epoch_erased(epoch_index):
            raise KeyError(f"epoch {epoch_index} was erased by purge")
        return self._epochs[epoch_index].prove(0, at_size=live_size)

    def prove_live_consistency(self, old_live_size: int):
        """Consistency proof for the live epoch from ``old_live_size`` leaves.

        Lets a client that verified the live commitment earlier check that
        subsequent appends were append-only.
        """
        from .consistency import prove_consistency

        return prove_consistency(self._epochs[-1], old_live_size)

    def prove_epoch_consistency(self, epoch_index: int, old_size: int, new_size: int | None = None):
        """Consistency proof *within* one epoch's tree (sealed or live).

        Used when a client's last-seen live state belongs to an epoch that
        has since been sealed: the proof shows the sealed root extends the
        state the client verified.
        """
        from .consistency import prove_consistency

        if self.is_epoch_erased(epoch_index):
            raise KeyError(f"epoch {epoch_index} was erased by purge")
        return prove_consistency(self._epochs[epoch_index], old_size, new_size)

    # ------------------------------------------------------- purge integration

    def erase_up_to(self, jsn: int, within_epoch: bool = True) -> int:
        """Erase fam nodes covering the purged prefix ``[0, jsn)``.

        Epochs wholly before ``jsn``'s epoch lose their trees — only the
        epoch root (needed by merged-leaf links) survives.  With
        ``within_epoch`` (the paper's fine-grained option, §III-A2), the
        partially-purged epoch additionally drops every node left of the
        purge point's Merkle path: "the nodes to be retained are all latter
        nodes of the next node of the purging node's Merkle path".

        Returns the number of nodes/trees erased.  Journals inside erased
        regions become unprovable — exactly purge's contract — while every
        retained journal's proof, the epoch roots, and future appends are
        unaffected.
        """
        if jsn < self._size:
            epoch_index, slot = self.locate(jsn)
        else:
            epoch_index, slot = len(self._epochs) - 1, 0
        erased = 0
        for k in range(epoch_index):
            if k not in self._erased_epochs:
                self._epochs[k] = ShrubsAccumulator()  # free the tree
                self._erased_epochs.add(k)
                erased += 1
        if within_epoch and slot > 0 and epoch_index not in self._erased_epochs:
            erased += self._epochs[epoch_index].erase_prefix(slot)
        return erased

    def is_epoch_erased(self, epoch_index: int) -> bool:
        return epoch_index in self._erased_epochs

    # ------------------------------------------------------------- utilities

    def num_nodes(self) -> int:
        """Total stored Merkle nodes across epochs (storage accounting)."""
        return sum(epoch.num_nodes() for epoch in self._epochs) + len(self._epoch_roots)

    def dump_state(self) -> dict:
        """Complete accumulator state for a ledger checkpoint (DESIGN.md §13).

        Unlike :meth:`snapshot` (frontier-only, for pseudo-genesis replay)
        this keeps every epoch's full node table so the restored accumulator
        can keep *proving* — and is JSON/TLV-encodable as-is.
        """
        return {
            "fractal_height": self.fractal_height,
            "size": self._size,
            "epoch_roots": list(self._epoch_roots),
            "erased_epochs": sorted(self._erased_epochs),
            "epochs": [epoch.dump_levels() for epoch in self._epochs],
        }

    @classmethod
    def from_state(cls, state: dict) -> "FamAccumulator":
        """Rebuild an accumulator from :meth:`dump_state` output."""
        fam = cls(state["fractal_height"])
        epochs = [ShrubsAccumulator.from_levels(levels) for levels in state["epochs"]]
        fam._epochs = epochs if epochs else [ShrubsAccumulator()]
        fam._epoch_roots = [bytes(root) for root in state["epoch_roots"]]
        fam._erased_epochs = set(state["erased_epochs"])
        fam._size = state["size"]
        return fam

    def snapshot(self) -> tuple[tuple[Digest, ...], int, tuple[Digest, ...]]:
        """(completed epoch roots, live epoch size, live epoch peaks).

        Enough state for a :class:`FamReplayer` to resume commitment replay —
        used by pseudo-genesis records.
        """
        live = self._epochs[-1]
        return tuple(self._epoch_roots), live.size, tuple(live.peaks())

    def snapshot_at(self, size: int) -> tuple[tuple[Digest, ...], int, tuple[Digest, ...]]:
        """Historical snapshot as of the first ``size`` journals.

        Works because Shrubs interior nodes are immutable once written:
        completed-epoch roots and historical peaks are all still available.
        """
        if size == 0:
            return (), 0, ()
        if not 0 < size <= self._size:
            raise ValueError(f"size {size} out of range (0, {self._size}]")
        epoch_index, slot = self.locate(size - 1)
        if epoch_index > 0 and self.is_epoch_erased(epoch_index - 1):
            # Peaks inside erased epochs are gone, but completed roots survive.
            pass
        in_epoch_size = slot + 1
        epoch = self._epochs[epoch_index]
        return (
            tuple(self._epoch_roots[:epoch_index]),
            in_epoch_size,
            tuple(epoch.peaks(at_size=in_epoch_size)),
        )

    def root_at(self, size: int) -> Digest:
        """The fam commitment right after the first ``size`` journals."""
        _roots, in_epoch_size, peaks = self.snapshot_at(size)
        if not peaks:
            from ..crypto.hashing import EMPTY_DIGEST

            return EMPTY_DIGEST
        from .proofs import bag_peaks

        return bag_peaks(list(peaks))


class FamReplayer:
    """Frontier-only fam: O(delta) state, exact same roots as the full tree.

    Auditors use this to replay commitment evolution journal-by-journal —
    either from genesis or resumed from a pseudo-genesis snapshot — and
    compare the evolving root against block headers and time-journal anchors.
    """

    def __init__(self, fractal_height: int) -> None:
        if fractal_height < 1:
            raise ValueError("fractal height must be >= 1")
        self.fractal_height = fractal_height
        self.epoch_capacity = 1 << fractal_height
        self._epoch_roots: list[Digest] = []
        self._live = FrontierAccumulator()
        self._size = 0

    @classmethod
    def from_snapshot(
        cls,
        fractal_height: int,
        epoch_roots: tuple[Digest, ...],
        live_size: int,
        live_peaks: tuple[Digest, ...],
        journal_count: int,
    ) -> "FamReplayer":
        """Resume from a pseudo-genesis snapshot.

        ``journal_count`` is the number of *journals* (jsns) the snapshot
        covers — distinct from leaf counts because merged leaves occupy
        slots but are not journals.
        """
        replayer = cls(fractal_height)
        replayer._epoch_roots = list(epoch_roots)
        replayer._live = FrontierAccumulator(live_size, list(live_peaks))
        replayer._size = journal_count
        return replayer

    @property
    def size(self) -> int:
        return self._size

    def append(self, digest: Digest) -> int:
        """Accumulate one journal digest (Rule 1 rollover included)."""
        if self._live.size == self.epoch_capacity:
            self._roll_epoch()
        self._live.append_leaf(digest)
        jsn = self._size
        self._size += 1
        if self._live.size == self.epoch_capacity:
            self._roll_epoch()
        return jsn

    def _roll_epoch(self) -> None:
        root = self._live.root()
        self._epoch_roots.append(root)
        self._live = FrontierAccumulator()
        self._live.append_leaf(root)

    def current_root(self) -> Digest:
        return self._live.root()

    @property
    def epoch_roots(self) -> list[Digest]:
        return list(self._epoch_roots)
