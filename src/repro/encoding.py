"""Canonical, deterministic binary encoding for ledger objects.

Every digest in the system (journal hash, block hash, request hash, MPT node
hash) is computed over a serialized byte string, so serialization must be
*canonical*: one value, one encoding.  We use a small tag-length-value format
(think minimal CBOR) supporting exactly the types ledger objects need.

Supported types: ``None``, ``bool``, ``int`` (signed, arbitrary precision),
``bytes``, ``str``, ``float`` (IEEE-754 big-endian), ``list``/``tuple``
(encoded identically), and ``dict`` with string keys (encoded sorted by key).

The format is self-describing and round-trips: ``decode(encode(x)) == x``
(tuples come back as lists).
"""

from __future__ import annotations

import struct
from typing import Any

__all__ = ["encode", "decode", "EncodingError"]


class EncodingError(Exception):
    """Raised on unsupported types or malformed input."""


_TAG_NONE = b"N"
_TAG_FALSE = b"f"
_TAG_TRUE = b"t"
_TAG_INT_POS = b"i"
_TAG_INT_NEG = b"j"
_TAG_BYTES = b"b"
_TAG_STR = b"s"
_TAG_FLOAT = b"d"
_TAG_LIST = b"l"
_TAG_DICT = b"m"


def _encode_length(value: int) -> bytes:
    """Variable-length big-endian length: one byte count then magnitude."""
    if value == 0:
        return b"\x00"
    magnitude = value.to_bytes((value.bit_length() + 7) // 8, "big")
    if len(magnitude) > 255:
        raise EncodingError("length too large")
    return bytes([len(magnitude)]) + magnitude


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        if value >= 0:
            out += _TAG_INT_POS
            out += _encode_length(value)
        else:
            out += _TAG_INT_NEG
            out += _encode_length(-value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += _TAG_BYTES
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += _TAG_STR
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _encode_length(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value)
        if not all(isinstance(k, str) for k in keys):
            raise EncodingError("dict keys must be strings")
        if len(set(keys)) != len(keys):
            raise EncodingError("duplicate dict keys")
        out += _TAG_DICT
        out += _encode_length(len(keys))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise EncodingError(f"unsupported type: {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` to bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise EncodingError("truncated input")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def _read_length(self) -> int:
        count = self._take(1)[0]
        if count == 0:
            return 0
        return int.from_bytes(self._take(count), "big")

    def read_value(self) -> Any:
        tag = self._take(1)
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_INT_POS:
            return self._read_length()
        if tag == _TAG_INT_NEG:
            return -self._read_length()
        if tag == _TAG_BYTES:
            return self._take(self._read_length())
        if tag == _TAG_STR:
            return self._take(self._read_length()).decode("utf-8")
        if tag == _TAG_FLOAT:
            return struct.unpack(">d", self._take(8))[0]
        if tag == _TAG_LIST:
            return [self.read_value() for _ in range(self._read_length())]
        if tag == _TAG_DICT:
            result = {}
            for _ in range(self._read_length()):
                key = self.read_value()
                if not isinstance(key, str):
                    raise EncodingError("dict key must decode to str")
                result[key] = self.read_value()
            return result
        raise EncodingError(f"unknown tag: {tag!r}")


def decode(data: bytes) -> Any:
    """Decode a canonically encoded byte string; rejects trailing garbage."""
    decoder = _Decoder(data)
    value = decoder.read_value()
    if decoder.pos != len(data):
        raise EncodingError("trailing bytes after value")
    return value
