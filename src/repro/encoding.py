"""Canonical, deterministic binary encoding for ledger objects.

Every digest in the system (journal hash, block hash, request hash, MPT node
hash) is computed over a serialized byte string, so serialization must be
*canonical*: one value, one encoding.  We use a small tag-length-value format
(think minimal CBOR) supporting exactly the types ledger objects need.

Supported types: ``None``, ``bool``, ``int`` (signed, arbitrary precision),
``bytes``, ``str``, ``float`` (IEEE-754 big-endian), ``list``/``tuple``
(encoded identically), and ``dict`` with string keys (encoded sorted by key).

The format is self-describing and round-trips: ``decode(encode(x)) == x``
(tuples come back as lists).
"""

from __future__ import annotations

import struct
from typing import Any

__all__ = ["encode", "decode", "EncodingError"]


class EncodingError(Exception):
    """Raised on unsupported types or malformed input."""


_TAG_NONE = b"N"
_TAG_FALSE = b"f"
_TAG_TRUE = b"t"
_TAG_INT_POS = b"i"
_TAG_INT_NEG = b"j"
_TAG_BYTES = b"b"
_TAG_STR = b"s"
_TAG_FLOAT = b"d"
_TAG_LIST = b"l"
_TAG_DICT = b"m"


def _encode_length(value: int) -> bytes:
    """Variable-length big-endian length: one byte count then magnitude."""
    if value == 0:
        return b"\x00"
    magnitude = value.to_bytes((value.bit_length() + 7) // 8, "big")
    if len(magnitude) > 255:
        raise EncodingError("length too large")
    return bytes([len(magnitude)]) + magnitude


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        if value >= 0:
            out += _TAG_INT_POS
            out += _encode_length(value)
        else:
            out += _TAG_INT_NEG
            out += _encode_length(-value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += _TAG_BYTES
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += _TAG_STR
        out += _encode_length(len(data))
        out += data
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _encode_length(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value)
        if not all(isinstance(k, str) for k in keys):
            raise EncodingError("dict keys must be strings")
        if len(set(keys)) != len(keys):
            raise EncodingError("duplicate dict keys")
        out += _TAG_DICT
        out += _encode_length(len(keys))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise EncodingError(f"unsupported type: {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` to bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


# Integer tag values for the decoder's dispatch: indexing a bytes object
# yields ints, so comparing ints here avoids materialising a one-byte slice
# per value (the decoder is on the audit replay's hot path).
_T_NONE = _TAG_NONE[0]
_T_FALSE = _TAG_FALSE[0]
_T_TRUE = _TAG_TRUE[0]
_T_INT_POS = _TAG_INT_POS[0]
_T_INT_NEG = _TAG_INT_NEG[0]
_T_BYTES = _TAG_BYTES[0]
_T_STR = _TAG_STR[0]
_T_FLOAT = _TAG_FLOAT[0]
_T_LIST = _TAG_LIST[0]
_T_DICT = _TAG_DICT[0]


def _read_scalar(data: bytes, pos: int) -> tuple[int, int]:
    """Read a variable-length big-endian magnitude; returns (value, new_pos)."""
    try:
        count = data[pos]
    except IndexError:
        raise EncodingError("truncated input") from None
    pos += 1
    if count == 0:
        return 0, pos
    end = pos + count
    if end > len(data):
        raise EncodingError("truncated input")
    return int.from_bytes(data[pos:end], "big"), end


def _read_value(data: bytes, pos: int) -> tuple[Any, int]:
    try:
        tag = data[pos]
    except IndexError:
        raise EncodingError("truncated input") from None
    pos += 1
    if tag == _T_BYTES or tag == _T_STR:
        length, pos = _read_scalar(data, pos)
        end = pos + length
        if end > len(data):
            raise EncodingError("truncated input")
        chunk = data[pos:end]
        return (chunk if tag == _T_BYTES else chunk.decode("utf-8")), end
    if tag == _T_INT_POS:
        return _read_scalar(data, pos)
    if tag == _T_INT_NEG:
        value, pos = _read_scalar(data, pos)
        return -value, pos
    if tag == _T_DICT:
        length, pos = _read_scalar(data, pos)
        result = {}
        for _ in range(length):
            key, pos = _read_value(data, pos)
            if type(key) is not str:
                raise EncodingError("dict key must decode to str")
            result[key], pos = _read_value(data, pos)
        return result, pos
    if tag == _T_LIST:
        length, pos = _read_scalar(data, pos)
        items = []
        for _ in range(length):
            item, pos = _read_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(data):
            raise EncodingError("truncated input")
        return struct.unpack(">d", data[pos:end])[0], end
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    raise EncodingError(f"unknown tag: {bytes([tag])!r}")


def decode(data: bytes) -> Any:
    """Decode a canonically encoded byte string; rejects trailing garbage."""
    value, pos = _read_value(bytes(data), 0)
    if pos != len(data):
        raise EncodingError("trailing bytes after value")
    return value
