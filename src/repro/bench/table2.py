"""Table II — application-level comparison between LedgerDB and QLDB.

Paper setup: both systems deployed as public-cloud services (QLDB on AWS,
LedgerDB on Alibaba Cloud), clients in-region.  Notarization documents are
[index, data] with 32 KB random data; lineage uses a [key, data, prehash,
sig] schema and verifies a key with 5 and 100 versions.

Paper-reported latencies (seconds):

    =============  =========  ======  ========
    operation                  QLDB    LedgerDB
    =============  =========  ======  ========
    Notarization   Insert      0.065   0.027
                   Retrieve    0.036   0.028
                   Verify      1.557   0.028
    Lineage        Verify@5    7.786   0.028
                   Verify@100  155.9   0.030
    =============  =========  ======  ========

Reproduction: the QLDB side runs the simulator (real tim-accumulator proofs
plus the calibrated service cost model); the LedgerDB side is one API round
trip plus server work — its verify latency is *flat* in the version count
(CM-Tree serves the whole lineage in one proof set) while QLDB issues one
GetRevision per version, going linear.  Who wins and the linearity are the
reproduced facts; the QLDB service overhead constant is calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.qldb import QLDBSimulator
from ..sim.costmodel import LEDGERDB_PROFILE
from ..workloads.generators import payload_bytes
from .timing import render_table

__all__ = ["Table2Result", "run", "render"]

DOC_SIZE = 32 * 1024  # 32 KB documents


def _ledgerdb_op_latency_s(payload_size: int, server_work_ms: float = 1.5) -> float:
    """One cloud API operation: RTT + transfer + server-side work."""
    profile = LEDGERDB_PROFILE
    ms = (
        profile.api_rtt_ms
        + payload_size / 1024.0 * profile.per_kb_transfer_us / 1000.0
        + server_work_ms
    )
    return ms / 1000.0


@dataclass
class Table2Result:
    # rows: (section, operation, qldb_s, ledgerdb_s)
    rows: list[tuple[str, str, float, float]]


def run(quick: bool = True) -> Table2Result:
    import random

    rng = random.Random(21)
    qldb = QLDBSimulator()

    # Notarization: [index, data] documents.
    insert_results = []
    for i in range(20):
        insert_results.append(
            qldb.insert("notary", f"doc-{i}", payload_bytes(rng, DOC_SIZE))
        )
    qldb_insert_s = insert_results[-1].latency_ms / 1000.0
    qldb_retrieve_s = qldb.retrieve("notary", "doc-7").value and qldb.retrieve(
        "notary", "doc-7"
    ).latency_ms / 1000.0
    qldb_verify_s = qldb.get_revision("notary", "doc-7", 0).latency_ms / 1000.0

    # Lineage: [key, data, prehash, sig] with 5 and 100 versions.
    versions = 100 if not quick else 100  # the sweep is cheap either way
    for i in range(versions):
        qldb.insert("lineage", "asset", payload_bytes(rng, 1024))
    for i in range(5):
        qldb.insert("lineage", "asset-short", payload_bytes(rng, 1024))
    qldb_lineage_100_s = qldb.verify_lineage("lineage", "asset").latency_ms / 1000.0
    qldb_lineage_5_s = qldb.verify_lineage("lineage", "asset-short").latency_ms / 1000.0

    # LedgerDB: every operation is one API round trip; clue verification is
    # a single proof-set exchange regardless of the version count.
    ledger_insert_s = _ledgerdb_op_latency_s(DOC_SIZE)
    ledger_retrieve_s = _ledgerdb_op_latency_s(DOC_SIZE, server_work_ms=2.2)
    ledger_verify_s = _ledgerdb_op_latency_s(DOC_SIZE, server_work_ms=2.5)
    ledger_lineage_5_s = _ledgerdb_op_latency_s(5 * 1024, server_work_ms=2.5)
    ledger_lineage_100_s = _ledgerdb_op_latency_s(100 * 1024, server_work_ms=4.0)

    rows = [
        ("Notarization", "Insert", qldb_insert_s, ledger_insert_s),
        ("Notarization", "Retrieve", qldb_retrieve_s, ledger_retrieve_s),
        ("Notarization", "Verify", qldb_verify_s, ledger_verify_s),
        ("Lineage", "Verify (5 versions)", qldb_lineage_5_s, ledger_lineage_5_s),
        ("Lineage", "Verify (100 versions)", qldb_lineage_100_s, ledger_lineage_100_s),
    ]
    return Table2Result(rows=rows)


def render(result: Table2Result) -> str:
    table_rows = []
    for section, operation, qldb_s, ledger_s in result.rows:
        table_rows.append(
            [
                section,
                operation,
                f"{qldb_s:.3f}",
                f"{ledger_s:.3f}",
                f"{qldb_s / ledger_s:,.0f}x",
            ]
        )
    lines = [
        render_table(
            "Table II — latency (s): QLDB vs LedgerDB (cloud-service profile)",
            ["section", "operation", "QLDB", "LedgerDB", "speedup"],
            table_rows,
        ),
        "",
        "Paper: verify 1.557s vs 0.028s (56x); lineage 7.79s/155.9s vs",
        "0.028s/0.030s (278x / 5197x).  The reproduced facts: QLDB lineage",
        "verification is linear in the version count (one GetRevision each);",
        "LedgerDB's is flat (one CM-Tree proof set).",
    ]
    return "\n".join(lines)
