"""Figure 8 — write and verification performance: fam vs tim.

Paper setup: fam-δ for δ in {5,10,15,20,25} (epoch thresholds 2^δ) against
the tim single-accumulator baseline, over ledger volumes 32 KB … 32 GB.

Scaling substitution: ledger volume becomes *journal count* and the fractal
heights are scaled down (δ in {2,4,6,8,10}, i.e. epoch thresholds 4…1024) so
every fam variant still crosses its epoch threshold within laptop-sized
runs — the paper's observation that "fam models only get stable performance
once accumulated journals reach their own thresholds" reproduces exactly.

* Figure 8(a): Append TPS.  tim publishes a fresh global root per append
  (O(log n) bagging, degrading with size); fam only bags its live epoch
  (bounded by δ).
* Figure 8(b): GetProof TPS on random jsns.  tim builds O(log n) paths;
  fam-aoa builds O(δ) in-epoch paths against trusted anchors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.hashing import leaf_hash
from ..merkle.bamt import BamtAccumulator
from ..merkle.fam import FamAccumulator
from ..merkle.tim import TimAccumulator
from .timing import Timing, measure, render_table

__all__ = ["Fig8Result", "run", "render", "build_fam", "build_tim", "build_bamt"]

QUICK_SIZES = (1 << 8, 1 << 11, 1 << 14)
FULL_SIZES = (1 << 8, 1 << 11, 1 << 14, 1 << 17)
HEIGHTS = (2, 4, 6, 8, 10)  # scaled stand-ins for fam-5 … fam-25
APPEND_BATCH = 1024
PROOF_SAMPLES = 512


def _digests(count: int, seed: int = 0) -> list[bytes]:
    return [leaf_hash(seed.to_bytes(2, "big") + i.to_bytes(8, "big")) for i in range(count)]


def build_fam(height: int, size: int) -> FamAccumulator:
    fam = FamAccumulator(height)
    for digest in _digests(size):
        fam.append(digest)
    return fam


def build_tim(size: int) -> TimAccumulator:
    tim = TimAccumulator()
    for digest in _digests(size):
        tim.append_digest(digest)
    return tim


def build_bamt(size: int, batch_size: int = 64) -> BamtAccumulator:
    bamt = BamtAccumulator(batch_size=batch_size)
    for digest in _digests(size):
        bamt.append_digest(digest)
    return bamt


def append_tps_bamt(bamt: BamtAccumulator, batch: int = APPEND_BATCH) -> Timing:
    extra = _digests(batch, seed=7)

    def work() -> None:
        for digest in extra:
            bamt.append_digest(digest)
            bamt.root()  # per-transaction commitment publication

    return measure(work, operations=batch, repeat=3)


def proof_tps_bamt(bamt: BamtAccumulator, samples: int = PROOF_SAMPLES) -> Timing:
    rng = random.Random(13)
    sequences = [rng.randrange(bamt.size) for _ in range(samples)]
    all_digests = _digests(bamt.size)
    digests = {s: all_digests[s] for s in set(sequences)}
    root = bamt.root()

    def work() -> None:
        for sequence in sequences:
            proof = bamt.get_proof(sequence)
            bamt.verify(digests[sequence], proof, root)

    return measure(work, operations=samples, repeat=2)


def append_tps_fam(fam: FamAccumulator, batch: int = APPEND_BATCH) -> Timing:
    extra = _digests(batch, seed=7)

    def work() -> None:
        for digest in extra:
            fam.append(digest)
            fam.current_root()  # publish the per-journal commitment

    return measure(work, operations=batch, repeat=3)


def append_tps_tim(tim: TimAccumulator, batch: int = APPEND_BATCH) -> Timing:
    extra = _digests(batch, seed=7)

    def work() -> None:
        for digest in extra:
            tim.append_digest(digest)  # publishes the global root internally

    return measure(work, operations=batch, repeat=3)


def proof_tps_fam(fam: FamAccumulator, samples: int = PROOF_SAMPLES) -> Timing:
    rng = random.Random(13)
    jsns = [rng.randrange(fam.size) for _ in range(samples)]

    def work() -> None:
        for jsn in jsns:
            proof = fam.get_proof(jsn, anchored=True)  # fam-aoa fast path
            proof.epoch_proof.computed_root(fam.leaf_digest(jsn))

    return measure(work, operations=samples, repeat=2)


def proof_tps_tim(tim: TimAccumulator, samples: int = PROOF_SAMPLES) -> Timing:
    rng = random.Random(13)
    jsns = [rng.randrange(tim.size) for _ in range(samples)]
    root = tim.root()

    def work() -> None:
        for jsn in jsns:
            proof = tim.get_proof(jsn)
            proof.verify(tim.leaf(jsn), root)

    return measure(work, operations=samples, repeat=2)


@dataclass
class Fig8Result:
    sizes: tuple[int, ...]
    # rows: model name -> {size: tps}
    append_tps: dict[str, dict[int, float]]
    proof_tps: dict[str, dict[int, float]]


def run(quick: bool = True) -> Fig8Result:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    append_tps: dict[str, dict[int, float]] = {}
    proof_tps: dict[str, dict[int, float]] = {}
    for height in HEIGHTS:
        name = f"fam-{height}"
        append_tps[name] = {}
        proof_tps[name] = {}
        for size in sizes:
            fam = build_fam(height, size)
            # Proofs first (non-mutating), then the append batch.
            proof_tps[name][size] = proof_tps_fam(fam).ops_per_s
            append_tps[name][size] = append_tps_fam(fam).ops_per_s
    append_tps["tim"] = {}
    proof_tps["tim"] = {}
    append_tps["bamt"] = {}
    proof_tps["bamt"] = {}
    for size in sizes:
        tim = build_tim(size)
        proof_tps["tim"][size] = proof_tps_tim(tim).ops_per_s
        append_tps["tim"][size] = append_tps_tim(tim).ops_per_s
        bamt = build_bamt(size)
        proof_tps["bamt"][size] = proof_tps_bamt(bamt).ops_per_s
        append_tps["bamt"][size] = append_tps_bamt(bamt).ops_per_s
    return Fig8Result(sizes=tuple(sizes), append_tps=append_tps, proof_tps=proof_tps)


def render(result: Fig8Result) -> str:
    headers = ["model"] + [f"n={size}" for size in result.sizes]

    def table(title: str, series: dict[str, dict[int, float]]) -> str:
        rows = []
        for model in sorted(series, key=lambda m: (m in ("tim", "bamt"), m)):
            rows.append(
                [model] + [f"{series[model][size]:,.0f}" for size in result.sizes]
            )
        return render_table(title, headers, rows)

    parts = [
        table("Figure 8(a) — Append throughput (ops/s)", result.append_tps),
        "",
        table("Figure 8(b) — GetProof throughput (ops/s)", result.proof_tps),
        "",
        "Expected shape: tim degrades as n grows; fam-δ stabilises once its",
        "epoch threshold 2^δ is crossed, and smaller δ verifies faster.",
    ]
    return "\n".join(parts)
