"""Small timing utilities shared by the figure-reproduction benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["Timing", "measure", "render_table"]


@dataclass(frozen=True)
class Timing:
    """Wall-clock measurement of a repeated operation."""

    total_s: float
    operations: int

    @property
    def per_op_ms(self) -> float:
        return self.total_s * 1000.0 / max(self.operations, 1)

    @property
    def ops_per_s(self) -> float:
        if self.total_s <= 0:
            return float("inf")
        return self.operations / self.total_s


def measure(fn: Callable[[], object], operations: int = 1, repeat: int = 3) -> Timing:
    """Run ``fn`` ``repeat`` times; keep the fastest run.

    ``operations`` declares how many logical operations one call performs,
    so TPS numbers come out per-operation.
    """
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return Timing(total_s=best, operations=operations)


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned text table with a title line."""
    all_rows = [headers] + rows
    widths = [max(len(str(row[i])) for row in all_rows) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
