"""Table I — the qualitative six-dimension system comparison.

The matrix itself is data (:mod:`repro.baselines.capabilities`); the tests
in ``tests/test_capabilities.py`` probe the implemented systems' actual
behaviour against their claimed rows.  This module renders the table and a
storage-overhead measurement that backs the "Storage Overhead" column for
the models implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.capabilities import render_table_i
from ..crypto.hashing import leaf_hash
from ..merkle.bim import BimLedger
from ..merkle.fam import FamAccumulator
from ..merkle.tim import TimAccumulator
from .timing import render_table

__all__ = ["Table1Result", "run", "render"]


@dataclass
class Table1Result:
    matrix: str
    # model -> stored commitment-structure entries for the same journal count
    storage_nodes: dict[str, int]
    journal_count: int


def run(quick: bool = True) -> Table1Result:
    count = 4096
    digests = [leaf_hash(i.to_bytes(4, "big")) for i in range(count)]

    fam = FamAccumulator(6)
    for digest in digests:
        fam.append(digest)

    tim = TimAccumulator()
    for digest in digests:
        tim.append_digest(digest)

    bim = BimLedger(block_capacity=32)
    for i in range(count):
        bim.append(b"tx-%d" % i)
    bim.commit_block()

    storage = {
        "fam (LedgerDB)": fam.num_nodes(),
        "tim (QLDB/Diem)": tim.num_nodes(),
        "bim blocks+headers (Bitcoin)": bim.height * 32 + count * 2,  # headers + in-block trees
    }
    # fam after a purge with node erasure: the "Lowest" storage story.
    fam.erase_up_to(count // 2)
    storage["fam after purge (erased epochs)"] = fam.num_nodes()
    return Table1Result(matrix=render_table_i(), storage_nodes=storage, journal_count=count)


def render(result: Table1Result) -> str:
    rows = [[name, f"{nodes:,}"] for name, nodes in result.storage_nodes.items()]
    parts = [
        "Table I — ledger verification mechanisms",
        "",
        result.matrix,
        "",
        render_table(
            f"Storage backing ({result.journal_count:,} journals): commitment nodes kept",
            ["model", "nodes"],
            rows,
        ),
        "",
        "Implemented rows (LedgerDB/QLDB/ProvenDB/Hyperledger) are probed by",
        "tests/test_capabilities.py; SQL Ledger and Factom are literature rows.",
    ]
    return "\n".join(parts)
