"""Paper-figure reproduction harness: one module per table/figure.

``python -m repro.bench`` prints every reproduced table and figure series;
the ``benchmarks/`` directory wraps the same kernels in pytest-benchmark.
"""

from . import ablations, fig5, fig7, fig8, fig9, fig10, table1, table2
from .runner import EXPERIMENTS, main
from .timing import Timing, measure, render_table

__all__ = [
    "ablations",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "table2",
    "EXPERIMENTS",
    "main",
    "Timing",
    "measure",
    "render_table",
]
