"""Figure 9 — clue verification performance: CM-Tree vs ccMPT.

Paper setup: multiple clue keys, 1–100 journals randomly assigned to each
(~1 KB journals); measure clue-oriented verification throughput as the
ledger grows (Fig 9(a)) and latency versus the clue's entry count on a
fixed ledger (Fig 9(b), entries 10 / 100 / 1000 / 10000).

The asymptotics under test: ccMPT must prove each of the clue's m journals
against the *global* accumulator — O(m·log n), growing with ledger size —
while CM-Tree2 is an independent per-clue accumulator, so CM-Tree
verification is O(m + log |clues|) and stays flat as the ledger grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.hashing import leaf_hash
from ..merkle.ccmpt import ClueCounterMPT
from ..merkle.cmtree import CMTree
from ..merkle.tim import TimAccumulator
from .timing import measure, render_table

__all__ = ["Fig9Result", "run", "render", "build_world"]

QUICK_SIZES = (512, 2048, 8192)
FULL_SIZES = (512, 2048, 8192, 32768)
QUICK_ENTRY_COUNTS = (10, 100, 1000)
FULL_ENTRY_COUNTS = (10, 100, 1000, 10000)
VERIFY_ROUNDS = 30


@dataclass
class _World:
    tim: TimAccumulator
    cmtree: CMTree
    ccmpt: ClueCounterMPT
    digests: dict[int, bytes]  # jsn -> digest
    clue_jsns: dict[str, list[int]]
    forced_clues: list[tuple[str, int]]  # (name, entry count)


def build_world(
    total_journals: int, seed: int = 5, forced_clue_sizes: tuple[int, ...] = ()
) -> _World:
    """A ledger of ``total_journals`` whose clues hold 1–100 entries each.

    ``forced_clue_sizes`` additionally creates clues with exactly those
    entry counts, so measurements compare identical clue shapes across
    different ledger sizes (Fig 9(a)) and a controlled entry-count sweep
    (Fig 9(b)).
    """
    rng = random.Random(seed)
    tim = TimAccumulator()
    cmtree = CMTree()
    ccmpt = ClueCounterMPT(tim)
    digests: dict[int, bytes] = {}
    clue_jsns: dict[str, list[int]] = {}
    forced_clues: list[tuple[str, int]] = []

    plan: list[str] = []
    clue_index = 0
    remaining = total_journals
    for index, size in enumerate(forced_clue_sizes):
        name = f"forced-{index}-{size}"
        taken = min(size, remaining)
        forced_clues.append((name, taken))
        plan.extend([name] * taken)
        remaining -= taken
    while remaining > 0:
        name = f"clue-{clue_index:05d}"
        clue_index += 1
        count = min(rng.randint(1, 100), remaining)
        plan.extend([name] * count)
        remaining -= count
    rng.shuffle(plan)

    for jsn, clue in enumerate(plan):
        digest = leaf_hash(b"journal-%d" % jsn)  # stands in for a 1 KB payload
        tim.append_digest(digest)
        cmtree.add(clue, digest)
        ccmpt.add(clue, jsn)
        digests[jsn] = digest
        clue_jsns.setdefault(clue, []).append(jsn)
    return _World(
        tim=tim,
        cmtree=cmtree,
        ccmpt=ccmpt,
        digests=digests,
        clue_jsns=clue_jsns,
        forced_clues=forced_clues,
    )


def verify_cmtree_once(world: _World, clue: str) -> bool:
    proof = world.cmtree.prove_clue(clue)
    jsns = world.clue_jsns[clue]
    leaf_map = {version: world.digests[jsn] for version, jsn in enumerate(jsns)}
    return proof.verify(leaf_map, world.cmtree.root)


def verify_ccmpt_once(world: _World, clue: str) -> bool:
    proof = world.ccmpt.prove_clue(clue)
    leaf_digests = [world.digests[jsn] for jsn in proof.jsns]
    return ClueCounterMPT.verify_clue(
        proof, leaf_digests, world.ccmpt.root, world.tim.root()
    )


def modeled_latency_ms(model: str, ledger_size: int, entries: int) -> float:
    """Modelled verification latency including disk I/O (the paper's regime).

    On the paper's 32 GB ledgers the dominant cost is fetching proof nodes
    from disk.  ccMPT walks the *global* accumulator m times — O(m·log n)
    cold random reads — while CM-Tree2 is a small per-clue accumulator whose
    nodes fit the cache, leaving only the CM-Tree1 path (top layers cached,
    bottom ~2 levels on disk) plus O(m) hashing.
    """
    import math

    from ..sim.costmodel import LEDGERDB_PROFILE

    profile = LEDGERDB_PROFILE
    hash_ms = profile.hash_us / 1000.0
    read_ms = profile.disk_read_us / 1000.0
    cold_fraction = 0.25  # share of proof-node fetches missing the cache
    cached_read_ms = 0.0125  # a page-cache hit
    depth = max(math.log2(max(ledger_size, 2)), 1.0)
    if model == "ccMPT":
        # m global-accumulator path walks (partially cached) + 2 cold MPT reads.
        per_node = cold_fraction * read_ms + hash_ms
        return entries * depth * per_node + 2 * read_ms
    # CM-Tree: m cache-resident CM-Tree2 reads + log2(m) proof cells + 2 cold
    # CM-Tree1 bottom-layer reads (top layers are the in-memory cache, §IV-B2).
    return (
        entries * cached_read_ms
        + max(math.log2(max(entries, 2)), 1.0) * hash_ms
        + 2 * read_ms
    )


@dataclass
class Fig9Result:
    sizes: tuple[int, ...]
    entry_counts: tuple[int, ...]
    throughput: dict[str, dict[int, float]]  # model -> {ledger size: TPS}
    latency_ms: dict[str, dict[int, float]]  # model -> {entry count: ms}


def run(quick: bool = True) -> Fig9Result:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    entry_counts = QUICK_ENTRY_COUNTS if quick else FULL_ENTRY_COUNTS

    # ---- (a) verification throughput vs ledger size ----------------------
    # Verify the same clue *shape* (fixed 50-entry clues) at every ledger
    # size so the measured trend isolates the ledger-size dependence.
    throughput: dict[str, dict[int, float]] = {"CM-Tree": {}, "ccMPT": {}}
    for size in sizes:
        world = build_world(size, forced_clue_sizes=(50,) * 8)
        clues = [name for name, _count in world.forced_clues]

        def run_cmtree() -> None:
            for clue in clues:
                assert verify_cmtree_once(world, clue)

        def run_ccmpt() -> None:
            for clue in clues:
                assert verify_ccmpt_once(world, clue)

        throughput["CM-Tree"][size] = measure(run_cmtree, operations=len(clues), repeat=3).ops_per_s
        throughput["ccMPT"][size] = measure(run_ccmpt, operations=len(clues), repeat=3).ops_per_s

    # ---- (b) verification latency vs clue entry count --------------------
    fixed_size = sizes[-1] * 2  # the paper's "fixed 1 GB ledger accumulator"
    world = build_world(fixed_size, forced_clue_sizes=entry_counts)
    latency: dict[str, dict[int, float]] = {"CM-Tree": {}, "ccMPT": {}}
    for (clue, _taken), count in zip(world.forced_clues, entry_counts):
        latency["CM-Tree"][count] = measure(
            lambda: verify_cmtree_once(world, clue), operations=1, repeat=3
        ).per_op_ms
        latency["ccMPT"][count] = measure(
            lambda: verify_ccmpt_once(world, clue), operations=1, repeat=3
        ).per_op_ms

    return Fig9Result(
        sizes=tuple(sizes),
        entry_counts=tuple(entry_counts),
        throughput=throughput,
        latency_ms=latency,
    )


def render(result: Fig9Result) -> str:
    tps_rows = [
        [model] + [f"{result.throughput[model][size]:,.0f}" for size in result.sizes]
        for model in ("CM-Tree", "ccMPT")
    ]
    speedups = [
        f"{result.throughput['CM-Tree'][size] / result.throughput['ccMPT'][size]:.1f}x"
        for size in result.sizes
    ]
    tps_rows.append(["speedup"] + speedups)
    lat_rows = [
        [model] + [f"{result.latency_ms[model][count]:.2f}" for count in result.entry_counts]
        for model in ("CM-Tree", "ccMPT")
    ]
    lat_rows.append(
        ["speedup"]
        + [
            f"{result.latency_ms['ccMPT'][count] / result.latency_ms['CM-Tree'][count]:.1f}x"
            for count in result.entry_counts
        ]
    )
    # Modelled-I/O projection at the paper's scale (32 KB … 32 GB ledgers,
    # i.e. 2^5 … 2^25 x 1 KB journals), 50-entry clues.
    paper_sizes = (1 << 5, 1 << 12, 1 << 18, 1 << 25)
    model_rows = []
    for model in ("CM-Tree", "ccMPT"):
        model_rows.append(
            [model]
            + [f"{1000.0 / modeled_latency_ms(model, size, 50):,.0f}" for size in paper_sizes]
        )
    model_rows.append(
        ["speedup"]
        + [
            "{:.0f}x".format(
                modeled_latency_ms("ccMPT", size, 50) / modeled_latency_ms("CM-Tree", size, 50)
            )
            for size in paper_sizes
        ]
    )
    parts = [
        render_table(
            "Figure 9(a) — clue verification throughput (ops/s), measured in-memory",
            ["model"] + [f"n={size}" for size in result.sizes],
            tps_rows,
        ),
        "",
        render_table(
            "Figure 9(a') — modelled with disk I/O at paper scale (50-entry clues)",
            ["model"] + [f"n={size}" for size in paper_sizes],
            model_rows,
        ),
        "",
        render_table(
            "Figure 9(b) — clue verification latency (ms) on a fixed ledger",
            ["model"] + [f"m={count}" for count in result.entry_counts],
            lat_rows,
        ),
        "",
        "Expected shape: CM-Tree throughput is flat in ledger size and its",
        "speedup over ccMPT grows with both ledger size and entry count",
        "(paper: 16x -> 33x across sizes; 7.6x -> 24x across entry counts).",
        "The measured tables isolate the CPU-side asymptotics; the modelled",
        "table adds the disk-I/O regime the paper's 32 GB ledgers run in.",
    ]
    return "\n".join(parts)
