"""Figure 5 — timestamp-attack windows: one-way vs two-way pegging.

The paper's Figure 5 is an attack analysis, not a measurement; we turn it
into a measured experiment on the simulated clock: for each adversary
patience level, run the scripted attack and record the achievable malicious
window under

* one-way pegging (ProvenDB-style, Figure 5(a)) — grows without bound;
* two-way pegging (Protocol 3, Figure 5(b)) — capped at 2·Δτ;

plus Protocol 4's freshness check on the T-Ledger, which rejects held-back
submissions outright.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..timeauth.attacks import (
    run_one_way_amplification,
    run_tledger_stale_submission,
    run_two_way_window,
)
from .timing import render_table

__all__ = ["Fig5Result", "run", "render"]

DELAYS = (0.0, 60.0, 3600.0, 86_400.0, 604_800.0)  # up to one week
PEG_INTERVAL = 1.0  # Δτ


@dataclass
class Fig5Result:
    delays: tuple[float, ...]
    one_way_windows: dict[float, float]
    two_way_windows: dict[float, float]
    bound: float
    tledger_acceptance: dict[float, bool]


def run(quick: bool = True) -> Fig5Result:
    one_way = {d: run_one_way_amplification(d).malicious_window for d in DELAYS}
    two_way = {d: run_two_way_window(d, peg_interval=PEG_INTERVAL).malicious_window for d in DELAYS}
    acceptance = {
        hold: run_tledger_stale_submission(hold, admission_tolerance=1.0)
        for hold in (0.2, 0.9, 1.5, 60.0)
    }
    return Fig5Result(
        delays=DELAYS,
        one_way_windows=one_way,
        two_way_windows=two_way,
        bound=2 * PEG_INTERVAL,
        tledger_acceptance=acceptance,
    )


def render(result: Fig5Result) -> str:
    rows = []
    for delay in result.delays:
        rows.append(
            [
                f"{delay:,.0f}",
                f"{result.one_way_windows[delay]:,.1f}",
                f"{result.two_way_windows[delay]:.3f}",
            ]
        )
    acceptance_rows = [
        [f"{hold:.1f}", "accepted" if ok else "REJECTED (stale)"]
        for hold, ok in result.tledger_acceptance.items()
    ]
    parts = [
        render_table(
            f"Figure 5 — achievable malicious time window (s), Δτ={PEG_INTERVAL}s",
            ["adversary delay (s)", "one-way pegging", "two-way pegging"],
            rows,
        ),
        f"two-way bound: 2·Δτ = {result.bound}s — never exceeded; one-way grows unbounded",
        "",
        render_table(
            "Protocol 4 — T-Ledger admission of held-back submissions (τ_Δ=1s)",
            ["hold-back (s)", "outcome"],
            acceptance_rows,
        ),
    ]
    return "\n".join(parts)
