"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Trusted anchors** (fam-aoa vs full-chain fam vs tim vs boa): what does
   each anchor scheme cost per verification, and what client-side storage
   does it require?

2. **Mutation modes**: sync vs async occult on the execution path, and
   purge with vs without fam-node erasure on storage.

3. **T-Ledger anchoring interval** Δτ: evidence window width vs TSA load —
   the trade Protocol 3/4 navigates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.hashing import leaf_hash
from ..merkle.bim import BimLedger, LightClient
from ..merkle.fam import AnchorStore, FamAccumulator
from ..merkle.tim import TimAccumulator
from ..timeauth.clock import SimClock
from ..timeauth.tledger import TimeLedger
from ..timeauth.tsa import TimeStampAuthority
from .timing import measure, render_table

__all__ = ["AblationResult", "run", "render"]

LEDGER_SIZE = 1 << 13
SAMPLES = 400


@dataclass
class AblationResult:
    anchor_rows: list[list[str]]
    mutation_rows: list[list[str]]
    interval_rows: list[list[str]]


def _anchor_ablation() -> list[list[str]]:
    digests = [leaf_hash(i.to_bytes(4, "big")) for i in range(LEDGER_SIZE)]
    rng = random.Random(3)
    jsns = [rng.randrange(LEDGER_SIZE) for _ in range(SAMPLES)]

    fam = FamAccumulator(6)
    for digest in digests:
        fam.append(digest)
    anchors = AnchorStore()
    for epoch in range(fam.num_epochs - 1):
        anchors.add(epoch, fam.epoch_root(epoch))

    def fam_anchored() -> None:
        for jsn in jsns:
            proof = fam.get_proof(jsn, anchored=True)
            fam.verify_with_anchors(digests[jsn], proof, anchors)

    def fam_full() -> None:
        for jsn in jsns:
            proof = fam.get_proof(jsn, anchored=False)
            FamAccumulator.verify_full(digests[jsn], proof, fam.current_root())

    tim = TimAccumulator()
    for digest in digests:
        tim.append_digest(digest)
    tim_root = tim.root()

    def tim_verify() -> None:
        for jsn in jsns:
            tim.get_proof(jsn).verify(digests[jsn], tim_root)

    bim = BimLedger(block_capacity=64)
    positions = [bim.append(b"tx-%d" % i) for i in range(LEDGER_SIZE)]
    bim.commit_block()
    client = LightClient()
    client.sync_headers(bim.headers())

    def bim_verify() -> None:
        for jsn in jsns:
            height, index = positions[jsn]
            client.verify(b"tx-%d" % jsn, bim.get_proof(height, index))

    rows = []
    anchored_t = measure(fam_anchored, operations=SAMPLES, repeat=2)
    full_t = measure(fam_full, operations=SAMPLES, repeat=2)
    tim_t = measure(tim_verify, operations=SAMPLES, repeat=2)
    bim_t = measure(bim_verify, operations=SAMPLES, repeat=2)
    sample_full = fam.get_proof(jsns[0], anchored=False)
    rows.append(
        ["fam-aoa (epoch anchors)", f"{anchored_t.per_op_ms * 1000:.1f}",
         f"{len(anchors)} epoch roots (32 B each)",
         f"{fam.get_proof(jsns[0], anchored=True).anchored_cost}"]
    )
    rows.append(
        ["fam full-chain (no anchors)", f"{full_t.per_op_ms * 1000:.1f}",
         "current root only", f"{sample_full.full_cost}"]
    )
    rows.append(
        ["tim (global accumulator)", f"{tim_t.per_op_ms * 1000:.1f}",
         "current root only", f"{len(tim.get_proof(jsns[0]).path)}"]
    )
    rows.append(
        ["bim boa (light client)", f"{bim_t.per_op_ms * 1000:.1f}",
         f"{client.storage_bytes():,} B of headers",
         f"{len(bim.get_proof(*positions[jsns[0]]).path)}"]
    )
    return rows


def _mutation_ablation() -> list[list[str]]:
    import pytest  # noqa: F401  (parity with test env; not used)

    from ..core import ClientRequest, Ledger, LedgerConfig, OccultMode
    from ..crypto import KeyPair, MultiSignature, Role

    def build() -> tuple:
        ledger = Ledger(LedgerConfig(uri="ledger://ablate", fractal_height=4, block_size=8))
        user = KeyPair.generate(seed="ablate-user")
        dba = KeyPair.generate(seed="ablate-dba")
        regulator = KeyPair.generate(seed="ablate-reg")
        ledger.registry.register("user", Role.USER, user.public)
        ledger.registry.register("dba", Role.DBA, dba.public)
        ledger.registry.register("reg", Role.REGULATOR, regulator.public)
        for i in range(64):
            request = ClientRequest.build(
                "ledger://ablate", "user", b"payload-%03d" % i, nonce=bytes([i])
            ).signed_by(user)
            ledger.append(request)
        ledger.commit_block()
        return ledger, user, dba, regulator

    def occult_with_mode(mode: OccultMode) -> float:
        ledger, _user, dba, regulator = build()
        record = ledger.prepare_occult(5, mode, reason="ablation")
        approvals = MultiSignature(digest=record.approval_digest())
        approvals.add("dba", dba.sign(record.approval_digest()))
        approvals.add("reg", regulator.sign(record.approval_digest()))
        timing = measure(lambda: ledger.execute_occult(record, approvals), repeat=1)
        return timing.per_op_ms

    sync_ms = occult_with_mode(OccultMode.SYNC)
    async_ms = occult_with_mode(OccultMode.ASYNC)

    def purge_storage(erase_fam: bool) -> tuple[int, int]:
        ledger, user, dba, _regulator = build()
        before = ledger._fam.num_nodes()
        boundary = ledger.blocks[1].end_jsn
        pseudo, record = ledger.prepare_purge(boundary, erase_fam_nodes=erase_fam)
        approvals = MultiSignature(digest=record.approval_digest())
        for member in ledger.purge_required_signers(boundary):
            keypair = {"user": user, "dba": dba}.get(member) or ledger._lsp_keypair
            approvals.add(member, keypair.sign(record.approval_digest()))
        ledger.execute_purge(pseudo, record, approvals)
        return before, ledger._fam.num_nodes()

    keep_before, keep_after = purge_storage(erase_fam=False)
    erase_before, erase_after = purge_storage(erase_fam=True)

    return [
        ["occult SYNC (erase inline)", f"{sync_ms:.1f} ms", "payload gone at return"],
        [
            "occult ASYNC (reorganize later)",
            f"{async_ms:.1f} ms",
            "payload gone after reorganize()",
        ],
        [
            "purge, fam retained",
            f"{keep_before:,} -> {keep_after:,} nodes",
            "all digests still provable",
        ],
        [
            "purge, fam erased",
            f"{erase_before:,} -> {erase_after:,} nodes",
            "pre-purge epochs unprovable",
        ],
    ]


def _interval_ablation() -> list[list[str]]:
    rows = []
    for interval in (0.25, 1.0, 5.0):
        clock = SimClock()
        tsa = TimeStampAuthority("tsa", clock)
        tledger = TimeLedger(
            clock, tsa, finalize_interval=interval, admission_tolerance=2 * interval
        )
        # One simulated minute at 10 submissions/second.
        seqs = []
        for i in range(600):
            clock.advance(0.1)
            seqs.append(tledger.submit("ledger", leaf_hash(b"%d" % i), clock.now()).seq)
        clock.advance(interval)
        tledger.tick()
        widths = []
        for seq in seqs[:100]:
            evidence = tledger.get_evidence(seq)
            bound = evidence.time_bound()
            if bound.lower > float("-inf"):
                widths.append(bound.width)
        average_width = sum(widths) / len(widths) if widths else float("nan")
        rows.append(
            [
                f"{interval:.2f}",
                f"{tsa.stamps_issued}",
                f"{average_width:.2f}",
                f"{2 * interval:.2f}",
            ]
        )
    return rows


@dataclass
class _Unused:
    pass


def run(quick: bool = True) -> AblationResult:
    return AblationResult(
        anchor_rows=_anchor_ablation(),
        mutation_rows=_mutation_ablation(),
        interval_rows=_interval_ablation(),
    )


def render(result: AblationResult) -> str:
    parts = [
        render_table(
            "Ablation 1 — anchor schemes: per-verification cost and client storage",
            ["scheme", "verify (µs)", "client-side storage", "path nodes"],
            result.anchor_rows,
        ),
        "",
        render_table(
            "Ablation 2 — mutation modes",
            ["operation", "cost", "effect"],
            result.mutation_rows,
        ),
        "",
        render_table(
            "Ablation 3 — T-Ledger anchoring interval Δτ (60 s @ 10 subs/s)",
            ["Δτ (s)", "TSA stamps", "avg evidence window (s)", "bound 2·Δτ"],
            result.interval_rows,
        ),
    ]
    return "\n".join(parts)
