"""Figure 7 — latency breakdown for Dasein verification (what / when / who).

Paper setup: one audit over 1000 sequential journals, reporting the
per-factor verification latency while varying

* the *when* configuration — direct TSA pegging vs T-Ledger anchoring at
  ledger TPS 1 (TL-1) and TPS 10 (TL-10), anchoring interval Δτ = 1 s;
* the *what* payload size — 256 B vs 256 KB (under TL-1, single-signed);
* the *who* signer count — 1 … 7 signatures per journal (under TL-1).

Reproduction: all signature and hash work is executed for real (ECDSA P-256,
SHA-256); environment costs (TSA round trips for evidence retrieval, bulk
download of public T-Ledger evidence, payload reads) are charged on the
calibrated cost model.  The headline shapes: TL-10 amortises one TSA
signature over ten journals, cutting *when* dramatically versus direct TSA;
*who* scales linearly in the signer count; *what*/*who* grow with payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import leaf_hash, sha256
from ..crypto.keys import KeyPair
from ..merkle.fam import FamAccumulator
from ..sim.costmodel import LEDGERDB_PROFILE, CostMeter
from ..timeauth.clock import SimClock
from ..timeauth.tledger import TimeLedger
from ..timeauth.tsa import TimeStampAuthority
from .timing import measure, render_table

__all__ = ["Fig7Result", "run", "render"]

QUICK_JOURNALS = 200
FULL_JOURNALS = 1000


@dataclass
class Fig7Result:
    journals: int
    # scenario label -> (what_ms, when_ms, who_ms) total over all journals
    when_scenarios: dict[str, tuple[float, float, float]]
    what_scenarios: dict[str, tuple[float, float, float]]
    who_scenarios: dict[str, tuple[float, float, float]]


def _build_journals(count: int, payload_size: int, signers: int) -> tuple[list, FamAccumulator]:
    """Journal stand-ins: (payload, digest, request-digest, signatures, keys)."""
    keys = [KeyPair.generate(seed=f"fig7-signer-{i}") for i in range(signers)]
    journals = []
    fam = FamAccumulator(8)
    for i in range(count):
        payload = bytes([i % 256]) * payload_size
        request_digest = sha256(payload)
        signatures = [kp.sign(request_digest) for kp in keys]
        digest = leaf_hash(payload)
        fam.append(digest)
        journals.append((payload, digest, request_digest, signatures, keys))
    return journals, fam


def _verify_what(journals, fam: FamAccumulator, payload_size: int, meter: CostMeter) -> float:
    """Existence verification for every journal; returns measured+modelled ms."""
    anchors = {e: fam.epoch_root(e) for e in range(fam.num_epochs - 1)}

    def work() -> None:
        for jsn, (payload, digest, _rd, _sigs, _keys) in enumerate(journals):
            assert leaf_hash(payload) == digest  # re-hash the payload
            proof = fam.get_proof(jsn, anchored=True)
            expected = (
                anchors[proof.epoch_index]
                if proof.epoch_index in anchors and proof.epoch_index != fam.num_epochs - 1
                else fam.current_root()
            )
            assert proof.epoch_proof.computed_root(digest) == expected

    timing = measure(work, operations=1, repeat=2)
    # Environment: one payload read + transfer per journal.
    meter.disk_reads(len(journals)).transfer_kb(len(journals) * payload_size / 1024.0)
    return timing.total_s * 1000.0 + meter.elapsed_ms


def _verify_who(journals, payload_size: int, meter: CostMeter) -> float:
    """Signature verification (all signers) for every journal."""

    def work() -> None:
        for payload, _digest, request_digest, signatures, keys in journals:
            assert sha256(payload) == request_digest  # recompute request hash
            for signature, keypair in zip(signatures, keys):
                assert keypair.public.verify(request_digest, signature)

    timing = measure(work, operations=1, repeat=1)
    return timing.total_s * 1000.0 + meter.elapsed_ms


def _verify_when_tsa(count: int) -> float:
    """Direct-TSA pegging: one token per journal, fetched from the authority.

    Real work: one ECDSA verification per token.  Environment: one TSA
    round trip per token retrieval (the "inherently costly" part).
    """
    clock = SimClock()
    tsa = TimeStampAuthority("tsa", clock)
    tokens = []
    for i in range(count):
        clock.advance(1.0)
        tokens.append(tsa.stamp(leaf_hash(b"root-%d" % i)))

    def work() -> None:
        for token in tokens:
            assert token.verify(tsa.public_key)

    timing = measure(work, operations=1, repeat=1)
    meter = CostMeter(LEDGERDB_PROFILE)
    meter.tsa_rtts(count)  # evidence fetched from the external authority
    return timing.total_s * 1000.0 + meter.elapsed_ms


def _verify_when_tledger(count: int, ledger_tps: int) -> float:
    """T-Ledger anchoring at a given ledger TPS, Δτ = 1 s.

    ``ledger_tps`` journals share each finalization, so one TSA signature
    covers that many journals; evidence is bulk-downloaded from the public
    T-Ledger (Prerequisite 4) instead of fetched per-journal from the TSA.
    """
    clock = SimClock()
    tsa = TimeStampAuthority("tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    seqs = []
    for i in range(count):
        clock.advance(1.0 / ledger_tps)
        seqs.append(tledger.submit("ledger", leaf_hash(b"root-%d" % i), clock.now()).seq)
    clock.advance(2.0)
    tledger.tick()
    evidences = [tledger.get_evidence(seq) for seq in seqs]

    def work() -> None:
        verified_tokens: set[tuple[bytes, float]] = set()
        for evidence in evidences:
            token = evidence.finalization.token
            token_id = (token.digest, token.timestamp)
            if token_id not in verified_tokens:  # one TSA sig per finalization
                assert token.verify(tsa.public_key)
                verified_tokens.add(token_id)
            assert evidence.inclusion.verify(
                evidence.entry.leaf_digest(), evidence.finalization.root
            )

    timing = measure(work, operations=1, repeat=1)
    meter = CostMeter(LEDGERDB_PROFILE)
    # Bulk download of the public T-Ledger segment: one API round trip plus
    # per-entry transfer, instead of per-journal TSA round trips.
    meter.api_rtts(1).transfer_kb(count * 0.5)
    return timing.total_s * 1000.0 + meter.elapsed_ms


def run(quick: bool = True) -> Fig7Result:
    count = QUICK_JOURNALS if quick else FULL_JOURNALS

    # --- when scenarios (256 B payloads, single signer) --------------------
    base_journals, base_fam = _build_journals(count, 256, 1)
    base_what = _verify_what(base_journals, base_fam, 256, CostMeter(LEDGERDB_PROFILE))
    base_who = _verify_who(base_journals, 256, CostMeter(LEDGERDB_PROFILE))
    when_scenarios = {
        "TSA": (base_what, _verify_when_tsa(count), base_who),
        "TL-1": (base_what, _verify_when_tledger(count, 1), base_who),
        "TL-10": (base_what, _verify_when_tledger(count, 10), base_who),
    }

    # --- what scenarios: payload sweep under TL-1 --------------------------
    # Both payload sizes use the same (reduced) journal count so the two
    # rows are directly comparable, then scale to the full count.
    tl1_when = when_scenarios["TL-1"][1]
    what_scenarios = {}
    sweep_count = max(count // 4, 50)
    for size, label in ((256, "256B"), (256 * 1024, "256KB")):
        journals, fam = _build_journals(sweep_count, size, 1)
        scale = count / sweep_count
        what_ms = _verify_what(journals, fam, size, CostMeter(LEDGERDB_PROFILE)) * scale
        who_ms = _verify_who(journals, size, CostMeter(LEDGERDB_PROFILE)) * scale
        what_scenarios[label] = (what_ms, tl1_when, who_ms)

    # --- who scenarios: signer sweep under TL-1 -----------------------------
    who_scenarios = {}
    for signers in (1, 3, 5, 7):
        journals, fam = _build_journals(max(count // 2, 50), 256, signers)
        scale = count / len(journals)
        what_ms = _verify_what(journals, fam, 256, CostMeter(LEDGERDB_PROFILE)) * scale
        who_ms = _verify_who(journals, 256, CostMeter(LEDGERDB_PROFILE)) * scale
        who_scenarios[f"Sig-{signers}"] = (what_ms, tl1_when, who_ms)

    return Fig7Result(
        journals=count,
        when_scenarios=when_scenarios,
        what_scenarios=what_scenarios,
        who_scenarios=who_scenarios,
    )


def render(result: Fig7Result) -> str:
    def table(title: str, scenarios: dict[str, tuple[float, float, float]]) -> str:
        rows = []
        for label, (what_ms, when_ms, who_ms) in scenarios.items():
            total = what_ms + when_ms + who_ms
            rows.append(
                [
                    label,
                    f"{what_ms:,.1f}",
                    f"{when_ms:,.1f}",
                    f"{who_ms:,.1f}",
                    f"{total:,.1f}",
                ]
            )
        return render_table(
            title, ["scenario", "what (ms)", "when (ms)", "who (ms)", "total"], rows
        )

    tsa_when = result.when_scenarios["TSA"][1]
    tl10_when = result.when_scenarios["TL-10"][1]
    parts = [
        f"Dasein verification breakdown over {result.journals} sequential journals",
        "",
        table("when scenarios (256B, Sig-1)", result.when_scenarios),
        "",
        table("what scenarios: payload sweep (TL-1, Sig-1)", result.what_scenarios),
        "",
        table("who scenarios: signer sweep (TL-1, 256B)", result.who_scenarios),
        "",
        f"when speedup TL-10 vs TSA: {tsa_when / tl10_when:.0f}x (paper: ~50x)",
        "",
        "Note: pure-Python ECDSA verification (~4 ms/op) is ~40x slower than",
        "the native crypto the paper runs on, so *who* dominates payload",
        "hashing here; with native-speed crypto the paper's payload-driven",
        "who growth (12x at 256KB) re-emerges.  The factor *shapes* — TSA >>",
        "TL-1 > TL-10 for when; linear signer scaling for who; payload-",
        "sensitive what — all reproduce.",
    ]
    return "\n".join(parts)
