"""Figure 10 — application-level comparison: LedgerDB vs Hyperledger Fabric.

Paper setup (§VI-D): data notarization (256 B payloads for TPS, 4 KB for
latency) and data lineage (entire-clue verification, varying entry count),
on an in-house two-node cluster.

Reproduction strategy (repro band: "throughput benchmarks unrepresentative"):

* Fabric numbers come from the behavioural simulator — real ECDSA
  endorsements plus the calibrated ordering/batching cost model;
* LedgerDB *latencies* combine the cost model's intra-cluster environment
  (0.25 ms RTT, ESSD-class random reads) with per-operation work counts;
* LedgerDB *throughput* is modelled from per-append operation counts at
  native crypto speeds with a documented server concurrency factor, because
  pure-Python ECDSA (~4 ms/op vs ~0.08 ms native) would otherwise invert
  the comparison; the honest in-process Python append rate is reported
  alongside.

Calibration constants (documented in EXPERIMENTS.md):
``_SERVER_CONCURRENCY`` = 6 parallel commit lanes,
``_COMMIT_OVERHEAD_MS`` = 2.2 ms server-side commit path,
``_LINEAGE_IOPS`` = 30_000 random-read budget for lineage verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..baselines.fabric import FabricNetwork
from ..core import ClientRequest, Ledger, LedgerConfig
from ..crypto.keys import KeyPair
from ..crypto.ca import Role
from ..sim.costmodel import LEDGERDB_PROFILE
from .timing import measure, render_table

__all__ = ["Fig10Result", "run", "render"]

VOLUMES = tuple(1 << e for e in (5, 10, 15, 20, 25, 30))  # bytes, as in the paper
ENTRY_COUNTS = (1, 5, 10, 25, 50, 100)

_SERVER_CONCURRENCY = 6
_COMMIT_OVERHEAD_MS = 2.2
_LINEAGE_IOPS = 30_000.0


# --------------------------------------------------------------------------
# LedgerDB application models.
# --------------------------------------------------------------------------


def ledgerdb_write_tps(volume_bytes: int, payload_size: int = 256) -> float:
    """Modelled sustained append throughput at native crypto speeds.

    Per-append critical path: one receipt signature + journal hashing +
    one appending write; fam bagging is O(delta) and amortised.  Volume
    growth erodes throughput slightly (paper: 52K -> 50K over 2^5..2^30 B).
    """
    profile = LEDGERDB_PROFILE
    per_append_ms = (
        profile.sign_us / 1000.0
        + profile.hash_us / 1000.0 * 3  # leaf + request + receipt digests
        + profile.disk_write_us / 1000.0
        + payload_size / 1024.0 * profile.per_kb_transfer_us / 1000.0
    )
    base = _SERVER_CONCURRENCY / (per_append_ms / 1000.0)
    doublings = max(math.log2(max(volume_bytes / 32, 1)), 0.0)
    return base * (1.0 - 0.0016 * doublings)


def ledgerdb_write_latency_ms(payload_size: int = 4096) -> float:
    """End-to-end append latency inside the cluster (paper: ~2.5 ms)."""
    profile = LEDGERDB_PROFILE
    return (
        profile.net_rtt_ms
        + _COMMIT_OVERHEAD_MS
        + payload_size / 1024.0 * profile.per_kb_transfer_us / 1000.0
        + profile.disk_write_us / 1000.0
    )


def ledgerdb_lineage_latency_ms(entries: int) -> float:
    """Entire-clue verification latency: one random I/O per entry (§VI-D)."""
    profile = LEDGERDB_PROFILE
    return (
        profile.net_rtt_ms
        + 1.5  # proof assembly + CM-Tree1 path
        + entries * profile.disk_read_us / 1000.0
        + entries * profile.hash_us / 1000.0 * 2
    )


def ledgerdb_lineage_tps(entries: int) -> float:
    """Lineage verification throughput, bounded by the random-read budget."""
    io_bound = _LINEAGE_IOPS / max(entries, 1)
    latency_bound = _SERVER_CONCURRENCY / (ledgerdb_lineage_latency_ms(entries) / 1000.0)
    return min(io_bound, latency_bound)


def fabric_lineage_latency_ms(fabric: FabricNetwork, entries: int) -> float:
    """Fabric lineage verification routed through a chaincode transaction.

    The paper implements verification "within a smart contract using
    GetState", whose results are gathered through the consensus workflow —
    so the commit path's batching delay applies, plus near-flat per-entry
    streaming."""
    return (
        fabric.profile.consensus_batch_ms
        + fabric.profile.service_overhead_ms
        + fabric.profile.disk_read_us / 1000.0
        + entries * 0.012  # streaming + hashing per entry
    )


def fabric_lineage_tps(fabric: FabricNetwork, entries: int) -> float:
    """Fabric lineage throughput: single-I/O reads, capped by chaincode eval."""
    per_read_ms = (
        fabric.profile.service_overhead_ms / 10.0  # pipelined chaincode eval
        + fabric.endorser_count * fabric.profile.verify_sig_us / 1000.0
        + fabric.profile.disk_read_us / 1000.0
        + entries * 0.004
    )
    return 4.0 / (per_read_ms / 1000.0)


# --------------------------------------------------------------------------


def measured_python_append_tps(count: int = 60) -> float:
    """Honest in-process rate of real appends (pure-Python ECDSA)."""
    ledger = Ledger(LedgerConfig(uri="ledger://fig10", fractal_height=8, block_size=64))
    user = KeyPair.generate(seed="fig10-user")
    ledger.registry.register("u", Role.USER, user.public)
    requests = [
        ClientRequest.build(
            "ledger://fig10", "u", b"x" * 256, nonce=i.to_bytes(4, "big")
        ).signed_by(user)
        for i in range(count)
    ]

    def work() -> None:
        for request in requests:
            ledger.append(request)

    timing = measure(work, operations=count, repeat=1)
    return timing.ops_per_s


@dataclass
class Fig10Result:
    volumes: tuple[int, ...]
    entry_counts: tuple[int, ...]
    notarization_tps: dict[str, dict[int, float]]
    notarization_latency_ms: dict[str, float]
    lineage_tps: dict[str, dict[int, float]]
    lineage_latency_ms: dict[str, dict[int, float]]
    measured_python_tps: float
    fabric_invoke_measured_ms: float


def run(quick: bool = True) -> Fig10Result:
    fabric = FabricNetwork()
    notarization_tps = {
        "LedgerDB": {v: ledgerdb_write_tps(v) for v in VOLUMES},
        "Fabric": {v: fabric.estimate_write_tps(v) for v in VOLUMES},
    }
    fabric_invoke = fabric.invoke("bench-key", b"x" * 4096)
    notarization_latency = {
        "LedgerDB": ledgerdb_write_latency_ms(4096),
        "Fabric": fabric_invoke.latency_ms,
    }
    lineage_tps = {
        "LedgerDB": {m: ledgerdb_lineage_tps(m) for m in ENTRY_COUNTS},
        "Fabric": {m: fabric_lineage_tps(fabric, m) for m in ENTRY_COUNTS},
    }
    lineage_latency = {
        "LedgerDB": {m: ledgerdb_lineage_latency_ms(m) for m in ENTRY_COUNTS},
        "Fabric": {m: fabric_lineage_latency_ms(fabric, m) for m in ENTRY_COUNTS},
    }
    return Fig10Result(
        volumes=VOLUMES,
        entry_counts=ENTRY_COUNTS,
        notarization_tps=notarization_tps,
        notarization_latency_ms=notarization_latency,
        lineage_tps=lineage_tps,
        lineage_latency_ms=lineage_latency,
        measured_python_tps=measured_python_append_tps(20 if quick else 60),
        fabric_invoke_measured_ms=fabric_invoke.latency_ms,
    )


def render(result: Fig10Result) -> str:
    def volume_label(volume: int) -> str:
        return f"2^{volume.bit_length() - 1}B"

    tps_rows = [
        [system] + [f"{result.notarization_tps[system][v]:,.0f}" for v in result.volumes]
        for system in ("LedgerDB", "Fabric")
    ]
    tps_rows.append(
        ["ratio"]
        + [
            f"{result.notarization_tps['LedgerDB'][v] / result.notarization_tps['Fabric'][v]:.0f}x"
            for v in result.volumes
        ]
    )
    lat_rows = [
        ["LedgerDB", f"{result.notarization_latency_ms['LedgerDB']:.2f}"],
        ["Fabric", f"{result.notarization_latency_ms['Fabric']:.1f}"],
        [
            "ratio",
            "{:.0f}x".format(
                result.notarization_latency_ms["Fabric"]
                / result.notarization_latency_ms["LedgerDB"]
            ),
        ],
    ]
    lineage_tps_rows = [
        [system] + [f"{result.lineage_tps[system][m]:,.0f}" for m in result.entry_counts]
        for system in ("LedgerDB", "Fabric")
    ]
    lineage_lat_rows = [
        [system] + [f"{result.lineage_latency_ms[system][m]:,.1f}" for m in result.entry_counts]
        for system in ("LedgerDB", "Fabric")
    ]
    ratios = [
        result.lineage_latency_ms["Fabric"][m] / result.lineage_latency_ms["LedgerDB"][m]
        for m in result.entry_counts
    ]
    lineage_lat_rows.append(["ratio"] + [f"{r:.0f}x" for r in ratios])
    crossover = next(
        (
            m
            for m in result.entry_counts
            if result.lineage_tps["LedgerDB"][m] <= result.lineage_tps["Fabric"][m] * 1.2
        ),
        None,
    )
    parts = [
        render_table(
            "Figure 10(a) — notarization throughput (TPS), 256 B payloads",
            ["system"] + [volume_label(v) for v in result.volumes],
            tps_rows,
        ),
        "",
        render_table(
            "Figure 10(b) — notarization latency (ms), 4 KB payloads",
            ["system", "latency"],
            lat_rows,
        ),
        "",
        render_table(
            "Figure 10(c) — lineage verification throughput (TPS)",
            ["system"] + [f"m={m}" for m in result.entry_counts],
            lineage_tps_rows,
        ),
        "",
        render_table(
            "Figure 10(d) — lineage verification latency (ms)",
            ["system"] + [f"m={m}" for m in result.entry_counts],
            lineage_lat_rows,
        ),
        "",
        f"lineage TPS crossover near m={crossover} (paper: ~50);"
        f" average lineage latency ratio {sum(ratios) / len(ratios):.0f}x (paper: ~300x)",
        f"measured in-process Python append rate: {result.measured_python_tps:,.0f} TPS "
        "(pure-Python ECDSA; see module docstring)",
    ]
    return "\n".join(parts)
