"""Run every table/figure reproduction and print the paper-style report.

Usage::

    python -m repro.bench            # quick mode (laptop-friendly sizes)
    python -m repro.bench --full     # full sweep
    python -m repro.bench fig8 fig9  # selected experiments only
"""

from __future__ import annotations

import sys
import time

from . import ablations, fig5, fig7, fig8, fig9, fig10, table1, table2

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig5": fig5,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "ablations": ablations,
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = True
    if "--full" in args:
        quick = False
        args.remove("--full")
    selected = args or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}")
        return 2
    mode = "quick" if quick else "full"
    print(f"# LedgerDB verification reproduction — {mode} mode\n")
    for name in selected:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        result = module.run(quick=quick)
        elapsed = time.perf_counter() - start
        print(f"## {name}  ({elapsed:.1f}s)\n")
        print(module.render(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
