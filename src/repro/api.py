"""repro.api — the v2 session-handle API (DESIGN.md §11).

The v1 facade (:mod:`repro.core.api`) mirrors the paper's procedural surface:
free functions keyed by an ``lgid`` string, re-resolved on every call, with
``verify`` collapsing a three-factor Dasein audit into a bare bool.  This
module replaces it with **session handles**:

* :func:`create` / :func:`drop_ledger` manage a process-wide, thread-safe
  registry of ledgers by ``lgid`` — symmetric by default (duplicate
  ``create`` and unknown ``drop_ledger`` both raise :class:`UsageError`),
  with ``exist_ok`` / ``missing_ok`` escape hatches and a
  :func:`scoped_ledger` context manager for test hygiene;
* :func:`connect` returns a :class:`LedgerSession` bound to one ledger (and
  optionally one :class:`~repro.service.LedgerService`, so appends ride the
  group-commit path), with ``append / append_batch / list_tx / get_proof /
  verify`` methods that never re-look anything up;
* every verification returns a structured
  :class:`~repro.core.verification.VerifyResult` — per-factor verdicts, the
  proof object used, and the trusted root — truthy-compatible with the old
  bool.

Exception contract: argument and registry misuse raises
:class:`~repro.core.errors.UsageError`; rejected requests raise
:class:`~repro.core.errors.AuthenticationError`; failed proofs *return* a
falsy :class:`VerifyResult` (verification outcomes are data, not errors).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from .artifacts import Artifact
from .audit import AuditReport, CheckpointStore
from .core.errors import UsageError
from .core.journal import ClientRequest, Journal
from .core.ledger import Ledger, LedgerConfig
from .core.receipt import Receipt
from .core.verification import (
    DaseinVerifier,
    VerifyLevel,
    VerifyResult,
    VerifyTarget,
)
from .crypto.keys import KeyPair, PublicKey
from .export.bundle import ExportBundle, export_bundle
from .export.rebuild import RebuildReport
from .merkle.fam import FamAccumulator, FamProof
from .service import LedgerService
from .session import (
    CAPABILITIES,
    SessionHelpers,
    VerifyingSession,
    check_transport_kwargs,
)
from .transparency.censorship import SubmissionAck
from .transparency.sth import (
    ConsistencyAssertion,
    ConsistencyBundle,
    SignedTreeHead,
)

__all__ = [
    "Artifact",
    "AuditReport",
    "ExportBundle",
    "RebuildReport",
    "VerifyLevel",
    "VerifyTarget",
    "VerifyResult",
    "VerifyingSession",
    "LedgerSession",
    "connect",
    "create",
    "drop_ledger",
    "get_ledger",
    "list_ledgers",
    "scoped_ledger",
]

# Values are Ledger or repro.shard.ShardedLedger (same read/append surface).
_REGISTRY: dict[str, Any] = {}
_REGISTRY_LOCK = threading.Lock()


# ------------------------------------------------------------------ registry


def create(lgid: str, *, exist_ok: bool = False, **kwargs: Any) -> Ledger:
    """The Create API: register a new ledger under ``lgid``.

    ``kwargs`` pass through to :class:`Ledger` (``config``, ``clock``,
    ``registry``, ``lsp_keypair``, ``journal_stream``).  A config with
    ``shards > 1`` builds a :class:`~repro.shard.ShardedLedger` instead —
    same registry entry, same session surface.  With
    ``exist_ok=True`` an already-registered ``lgid`` returns the existing
    ledger instead of raising (``kwargs`` must then be empty — silently
    ignoring a different config would be a worse footgun than the error).

    Raises:
        UsageError: ``lgid`` is already registered (and not ``exist_ok``),
            or ``exist_ok`` hit an existing ledger with ``kwargs`` supplied.
    """
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(lgid)
        if existing is not None:
            if not exist_ok:
                raise UsageError(f"ledger {lgid!r} already exists")
            if kwargs:
                raise UsageError(
                    f"ledger {lgid!r} already exists; exist_ok=True cannot "
                    f"re-apply constructor arguments {sorted(kwargs)}"
                )
            return existing
        config = kwargs.pop("config", None) or LedgerConfig(uri=lgid)
        if config.shards > 1:
            if "journal_stream" in kwargs:
                raise UsageError(
                    "journal_stream= cannot apply to a sharded ledger: each "
                    "shard owns its own stream (set config.data_dir for "
                    "persistence instead)"
                )
            from .shard import ShardedLedger

            ledger = ShardedLedger(config=config, **kwargs)
        else:
            ledger = Ledger(config=config, **kwargs)
        _REGISTRY[lgid] = ledger
        return ledger


def get_ledger(lgid: str) -> Ledger:
    """Resolve a registered ledger.

    Raises:
        UsageError: no ledger is registered under ``lgid``.
    """
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY[lgid]
        except KeyError:
            raise UsageError(f"unknown ledger: {lgid!r}") from None


def drop_ledger(lgid: str, *, missing_ok: bool = False) -> None:
    """Remove a ledger from the registry — symmetric twin of :func:`create`.

    The v1 facade silently ignored unknown ``lgid``\\ s here while ``create``
    raised on duplicates; that asymmetry hid typos in teardown code.  Both
    directions now raise by default; pass ``missing_ok=True`` for idempotent
    cleanup (or use :func:`scoped_ledger`, which does this for you).

    Raises:
        UsageError: no ledger is registered under ``lgid`` (and not
            ``missing_ok``).
    """
    with _REGISTRY_LOCK:
        if _REGISTRY.pop(lgid, None) is None and not missing_ok:
            raise UsageError(f"unknown ledger: {lgid!r}")


def list_ledgers() -> list[str]:
    """All registered ``lgid``\\ s, sorted."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


@contextmanager
def scoped_ledger(
    lgid: str,
    *,
    client_id: str | None = None,
    keypair: KeyPair | None = None,
    service: LedgerService | ServiceConfigLike = None,
    expected_lsp_key: Any = None,
    timeout: float | None = None,
    **kwargs: Any,
) -> Iterator["VerifyingSession"]:
    """Create a ledger for the block's duration and drop it on exit.

    Yields a :class:`LedgerSession` (its ``.ledger`` attribute is the raw
    :class:`Ledger`).  ``kwargs`` pass through to :func:`create`; the
    session arguments mirror :func:`connect`.  Exists for test hygiene: the
    registry is process-wide, and a test that leaks ledgers poisons its
    neighbours' ``create`` calls.

    ``lgid`` accepts the same URI forms as :func:`connect`: a
    ``ledger://host:port`` address scopes a *remote* session instead — the
    connection lasts for the block, nothing is created or dropped (the
    server owns its ledger's lifecycle), and construction ``kwargs`` are
    refused because they cannot reach the remote deployment.

    Raises:
        UsageError: remote address with :func:`create` kwargs, or a kwarg
            the resolved transport does not support (per the
            :data:`~repro.session.CAPABILITIES` table).
    """
    with _REGISTRY_LOCK:
        registered = lgid in _REGISTRY
    if not registered and _parse_remote_uri(lgid) is not None:
        if kwargs:
            raise UsageError(
                f"scoped_ledger({lgid!r}) is a remote scope: constructor "
                f"arguments {sorted(kwargs)} cannot apply — the server owns "
                f"its ledger's lifecycle"
            )
        session = connect(
            lgid,
            client_id=client_id,
            keypair=keypair,
            service=service,
            expected_lsp_key=expected_lsp_key,
            timeout=timeout,
        )
        try:
            yield session
        finally:
            session.close()
        return
    check_transport_kwargs(
        "local", lgid, expected_lsp_key=expected_lsp_key, timeout=timeout
    )
    create(lgid, **kwargs)
    session = connect(lgid, client_id=client_id, keypair=keypair, service=service)
    try:
        yield session
    finally:
        session.close()
        drop_ledger(lgid, missing_ok=True)


# ------------------------------------------------------------------ sessions

#: ``service=`` accepts a LedgerService, True (spin up a default one the
#: session owns), or a ServiceConfig (spin up an owned one with those knobs).
ServiceConfigLike = Any


def _parse_remote_uri(lgid: str) -> tuple[str, int] | None:
    """``ledger://host:port`` → ``(host, port)``; None when not address-shaped.

    Local registry ids (``ledger://demo``) carry no port, so the two URI
    families never collide — and a *registered* id always wins regardless.
    """
    from urllib.parse import urlsplit

    if "://" not in lgid:
        return None
    try:
        parts = urlsplit(lgid)
        host, port = parts.hostname, parts.port
    except ValueError:
        return None
    if parts.scheme != "ledger" or not host or port is None:
        return None
    return host, port


def connect(
    lgid: str,
    *,
    client_id: str | None = None,
    keypair: KeyPair | None = None,
    service: LedgerService | ServiceConfigLike = None,
    expected_lsp_key: Any = None,
    timeout: float | None = None,
) -> "VerifyingSession":
    """Open a session handle on a registered ledger — or a remote one.

    A ``lgid`` naming a registered ledger yields a local
    :class:`LedgerSession`.  A ``ledger://host:port`` address that is *not*
    registered locally connects over TCP instead, returning a
    :class:`~repro.net.client.RemoteLedgerSession` with the same append /
    proof surface whose receipts and proofs are verified client-side
    (``expected_lsp_key`` pins the server's LSP key out-of-band; ``timeout``
    bounds each remote call).  Both session kinds context-manage and
    ``close()`` identically, so callers move between backends untouched.

    ``client_id`` / ``keypair`` become the session's defaults for signing
    appends (overridable per call).  ``service`` routes a *local* session's
    appends through a group-commit front end: pass an existing
    :class:`LedgerService` (shared with other sessions; the caller closes
    it), ``True`` for a service the session creates and owns, or a
    :class:`~repro.service.ServiceConfig` for an owned service with those
    coalescing knobs.

    Kwarg symmetry: both transports accept the same parameter list, and
    each rejects what it cannot honour with a typed :class:`UsageError`
    naming the transport.  Which kwarg belongs to which transport is the
    declarative :data:`~repro.session.CAPABILITIES` table — ``service=`` is
    local-only, ``expected_lsp_key=`` and ``timeout=`` are remote-only —
    and the error carries the table's rationale.

    Raises:
        UsageError: unknown ``lgid``, a malformed ``scheme://`` address,
            ``service`` misuse, or a kwarg the resolved transport does not
            support.
    """
    # One lock acquisition resolves membership AND the ledger object: a
    # check-then-get split would race a concurrent drop_ledger into a
    # misleading "unknown ledger" after the membership check passed.
    with _REGISTRY_LOCK:
        ledger = _REGISTRY.get(lgid)
    if ledger is None:
        address = _parse_remote_uri(lgid)
        if address is not None:
            check_transport_kwargs("remote", lgid, service=service)
            from .net.client import RemoteLedgerSession

            host, port = address
            return RemoteLedgerSession(
                host,
                port,
                lgid=lgid,
                client_id=client_id,
                keypair=keypair,
                expected_lsp_key=expected_lsp_key,
                timeout=timeout if timeout is not None else 30.0,
            )
        if "://" in lgid:
            # Address-shaped but unusable (no port, bad port, wrong scheme)
            # AND not a registered id: name the malformed URI instead of
            # falling through to a misleading "unknown ledger".
            raise UsageError(
                f"malformed ledger uri {lgid!r}: not a registered ledger id, "
                f"and not a usable remote address (remote connections need "
                f"ledger://host:port with an explicit port)"
            )
        raise UsageError(f"unknown ledger: {lgid!r}")
    check_transport_kwargs(
        "local", lgid, expected_lsp_key=expected_lsp_key, timeout=timeout
    )
    return LedgerSession(
        ledger,
        lgid=lgid,
        client_id=client_id,
        keypair=keypair,
        service=service,
    )


class LedgerSession(SessionHelpers):
    """A handle binding one ledger (plus optional service and identity).

    Where the v1 facade re-resolved ``lgid`` strings and re-asked for
    identity on every call, a session resolves everything once::

        with repro.api.scoped_ledger("ledger://t") as session:
            session.ledger.registry.register("alice", Role.USER, alice.public)
            receipt = session.append(b"hello", clues=("C",),
                                     client_id="alice", keypair=alice)
            assert session.verify(VerifyTarget.TX,
                                  txdata=[session.ledger.get_journal(receipt.jsn)])

    Sessions are cheap; open as many as there are client identities.  A
    session is thread-safe exactly when its append path is: direct appends
    mutate the ledger and need external coordination, service-backed
    appends (``service=...``) are safe from any thread.
    """

    transport = "local"

    def __init__(
        self,
        ledger: Ledger,
        *,
        lgid: str | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        service: LedgerService | ServiceConfigLike = None,
    ) -> None:
        from .service import ServiceConfig  # local: keep module import light

        self.ledger = ledger
        self.lgid = lgid if lgid is not None else ledger.config.uri
        self.client_id = client_id
        self.keypair = keypair
        self._owns_service = False
        if service is None or isinstance(service, LedgerService):
            self.service = service
        elif service is True:
            self.service = _build_service(ledger, None)
            self._owns_service = True
        elif isinstance(service, ServiceConfig):
            self.service = _build_service(ledger, service)
            self._owns_service = True
        else:
            from .shard import ShardedLedgerService

            if isinstance(service, ShardedLedgerService):
                self.service = service
            else:
                raise UsageError(
                    "service must be a LedgerService, a ShardedLedgerService, "
                    f"a ServiceConfig, True, or None — got {type(service).__name__}"
                )

    # ------------------------------------------------------------- appends

    def _resolve_identity(
        self, client_id: str | None, keypair: KeyPair | None
    ) -> tuple[str, KeyPair]:
        client_id = client_id if client_id is not None else self.client_id
        keypair = keypair if keypair is not None else self.keypair
        if client_id is None or keypair is None:
            raise UsageError(
                "no signing identity: pass client_id and keypair here or "
                "bind them at connect()"
            )
        return client_id, keypair

    def _build_request(
        self,
        client_id: str,
        keypair: KeyPair,
        payload: bytes,
        clues: tuple[str, ...],
        nonce_offset: int = 0,
    ) -> ClientRequest:
        return ClientRequest.build(
            self.ledger.config.uri,
            client_id,
            payload,
            clues=clues,
            nonce=(self.ledger.size + nonce_offset).to_bytes(8, "big"),
            client_timestamp=self.ledger.clock.now(),
        ).signed_by(keypair)

    def append(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        request: ClientRequest | None = None,
        timeout: float | None = None,
    ) -> Receipt:
        """Append one transaction; returns the LSP-signed receipt.

        Either pass a pre-signed ``request``, or a ``payload`` signed with
        the session identity (or the per-call ``client_id``/``keypair``).
        With a bound service the append coalesces into a group commit and
        ``timeout`` bounds the wait for the receipt.

        Raises:
            UsageError: no payload/request, both, or no signing identity.
            AuthenticationError: the ledger rejected the request.
            ServiceClosedError / ServiceOverloadedError / ServiceTimeout:
                service-path admission and wait failures (service-bound
                sessions only).
        """
        if request is None:
            if payload is None:
                raise UsageError("append() needs a payload or a pre-signed request")
            all_clues = self._normalize_clues(clue, clues)
            resolved_id, resolved_key = self._resolve_identity(client_id, keypair)
            request = self._build_request(resolved_id, resolved_key, payload, all_clues)
        elif payload is not None:
            raise UsageError("pass payload= or request=, not both")
        if self.service is not None:
            return self.service.append(request, timeout=timeout)
        return self.ledger.append(request)

    def append_batch(
        self,
        items: list[tuple[bytes, str | None]] | None = None,
        *,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        requests: list[ClientRequest] | None = None,
        max_workers: int | None = None,
        timeout: float | None = None,
    ) -> list[Receipt]:
        """Append many transactions through one amortised pass.

        ``items`` are ``(payload, clue)`` pairs signed with the session (or
        per-call) identity; alternatively pass pre-signed ``requests``.
        Without a service this is :meth:`Ledger.append_batch` (atomic: one
        bad request rejects the whole batch, ledger untouched).  With a
        service the requests are submitted individually, so they coalesce
        with other sessions' traffic and a bad request fails only itself.

        Raises:
            UsageError: neither/both of ``items`` and ``requests``, or no
                signing identity.
            AuthenticationError: a request was rejected (direct path: whole
                batch; service path: that request's slot).
        """
        if (items is None) == (requests is None):
            raise UsageError("append_batch() takes exactly one of items= or requests=")
        if requests is None:
            resolved_id, resolved_key = self._resolve_identity(client_id, keypair)
            requests = [
                self._build_request(
                    resolved_id,
                    resolved_key,
                    payload,
                    (clue,) if clue else (),
                    nonce_offset=index,
                )
                for index, (payload, clue) in enumerate(items)
            ]
        if self.service is not None:
            futures = [self.service.submit(request) for request in requests]
            return [future.result(timeout) for future in futures]
        return self.ledger.append_batch(requests, max_workers=max_workers)

    def append_acked(
        self,
        payload: bytes | None = None,
        *,
        clue: str | None = None,
        clues: tuple[str, ...] | None = None,
        client_id: str | None = None,
        keypair: KeyPair | None = None,
        request: ClientRequest | None = None,
        deadline_epochs: int | None = None,
        timeout: float | None = None,
    ) -> tuple[Receipt, SubmissionAck]:
        """Append with a censorship-accountable admission ack (§16).

        The LSP signs a :class:`~repro.transparency.SubmissionAck` pinning
        the request hash to the tree coordinates *at admission*, before the
        append commits.  If the transaction later never appears, the ack
        plus any subsequent signed tree head past ``deadline_epochs`` is
        offline-verifiable :class:`~repro.transparency.CensorshipEvidence`.

        Returns ``(receipt, ack)``; arguments mirror :meth:`append` plus
        ``deadline_epochs`` (default :data:`~repro.core.ledger.Ledger`'s
        ``DEFAULT_ACK_DEADLINE_EPOCHS``).

        Raises:
            UsageError: as :meth:`append`, or ``deadline_epochs < 1``.
        """
        if request is None:
            if payload is None:
                raise UsageError(
                    "append_acked() needs a payload or a pre-signed request"
                )
            all_clues = self._normalize_clues(clue, clues)
            resolved_id, resolved_key = self._resolve_identity(client_id, keypair)
            request = self._build_request(resolved_id, resolved_key, payload, all_clues)
        elif payload is not None:
            raise UsageError("pass payload= or request=, not both")
        if deadline_epochs is None:
            ack = self.ledger.issue_ack(request)
        else:
            ack = self.ledger.issue_ack(request, deadline_epochs=deadline_epochs)
        if self.service is not None:
            receipt = self.service.append(request, timeout=timeout)
        else:
            receipt = self.ledger.append(request)
        return receipt, ack

    # --------------------------------------------------------------- reads

    def list_tx(self, clue: str) -> list[Journal]:
        """All retrievable journals carrying ``clue`` (cSL lookup)."""
        return [self.ledger.get_journal(jsn) for jsn in self.ledger.list_tx(clue)]

    def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        """The GetProof API: fam existence proof for one journal.

        Raises:
            JournalNotFoundError: no journal exists at ``jsn``.
        """
        return self.ledger.get_proof(jsn, anchored=anchored)

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        """Bulk GetProof — proofs byte-identical to ``N`` single calls.

        Amortises the shared work across the batch: the link chain from each
        touched epoch up to the current one is computed once per epoch, not
        once per journal, so proving a batch that clusters in few epochs is
        substantially cheaper than looping over :meth:`get_proof`.
        """
        return self.ledger.get_proofs(jsns, anchored=anchored)

    # ------------------------------------------------------------- exporting

    def export(
        self,
        path: Any = None,
        *,
        clues: tuple[str, ...] = (),
    ) -> ExportBundle:
        """Export this ledger as a self-contained offline bundle (§17).

        The :class:`~repro.export.ExportBundle` carries the journal slice,
        existence/clue proofs, epoch anchors, the STH chain with consistency
        assertions, and the trusted LSP/CA material — everything
        :func:`repro.export.verify_bundle` needs to re-run what/when/who on
        a machine that has never seen this deployment.  Sharded ledgers
        export all shards under their composite head through the same call.

        ``path`` additionally writes the bundle's canonical bytes to disk
        (durably, via the same commit discipline as snapshots); ``clues``
        selects clue lineages to include with their CM-Tree proofs.
        """
        return export_bundle(self.ledger, clues=tuple(clues), path=path)

    # --------------------------------------------------------- transparency

    def get_sth(self) -> SignedTreeHead:
        """The current LSP-signed tree head (composite on sharded ledgers)."""
        return self.ledger.get_sth()

    def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        """Persisted epoch-close tree heads for epochs ``start..end``."""
        return self.ledger.get_sth_range(start, end)

    def get_consistency(
        self, old: SignedTreeHead, new: SignedTreeHead
    ) -> tuple[ConsistencyBundle | None, ConsistencyAssertion | None]:
        """Consistency proof + signed assertion connecting two tree heads.

        Raises:
            UsageError: composite heads, mismatched shards, or heads this
                ledger cannot connect (e.g. an equivocating pair).
        """
        return self.ledger.get_consistency(old, new)

    # ------------------------------------------------------------ verifying

    def verify(
        self,
        target: VerifyTarget | str,
        *,
        key: str | None = None,
        txdata: list[Journal] | None = None,
        rho: Any = None,
        root: bytes | None = None,
        level: VerifyLevel | str = VerifyLevel.SERVER,
    ) -> VerifyResult:
        """The Verify API (§IV-C), returning structured evidence.

        * ``target=TX`` — existence of the single journal in ``txdata[0]``;
          ``rho`` optionally carries a pre-fetched fam proof.
        * ``target=CLUE`` — N-lineage verification of clue ``key`` over
          ``txdata`` (all related journals, in order); ``rho`` optionally
          carries a pre-fetched :class:`~repro.merkle.cmtree.ClueProof`;
          ``root`` is the caller's trusted CM-Tree1 datum (client level).

        Returns a :class:`VerifyResult` (truthy iff the check passed)
        carrying the proof used and the trusted root.  A *failed* check is a
        falsy result, not an exception.

        Raises:
            UsageError: bad target/level, wrong ``txdata`` shape, missing
                ``key``, or a client-level TX check with no trusted root
                available.
        """
        target = _coerce(VerifyTarget, target)
        level = _coerce(VerifyLevel, level)
        if target is VerifyTarget.TX:
            return self._verify_tx(txdata, rho, root, level)
        if target is VerifyTarget.CLUE:
            return self._verify_clue(key, txdata, rho, root, level)
        raise UsageError(f"unsupported verification target: {target}")

    def _proof_for(self, journal: Journal) -> Any:
        """Fetch the existence proof for a journal this session holds.

        A sharded ledger routes by the journal's *content* (its stamped jsn
        is shard-local, so indexing the facade with it would mis-route);
        plain ledgers index by jsn as ever.
        """
        router = getattr(self.ledger, "proof_for_journal", None)
        if router is not None:
            return router(journal, anchored=False)
        return self.ledger.get_proof(journal.jsn, anchored=False)

    def _verify_tx(
        self,
        txdata: list[Journal] | None,
        rho: Any,
        root: bytes | None,
        level: VerifyLevel,
    ) -> VerifyResult:
        if not txdata or len(txdata) != 1:
            raise UsageError("TX verification takes exactly one journal in txdata")
        journal = txdata[0]
        ledger = self.ledger
        if level is VerifyLevel.SERVER:
            proof = rho
            if proof is None:
                try:
                    proof = self._proof_for(journal)
                except (IndexError, KeyError):
                    return VerifyResult(
                        ok=False,
                        target=VerifyTarget.TX.value,
                        level=level.value,
                        what=False,
                        jsn=journal.jsn,
                        detail=f"no proof obtainable for jsn {journal.jsn}",
                    )
            trusted = ledger.current_root()
            ok = ledger.verify_journal(journal, proof)
        else:
            proof = rho if rho is not None else self._proof_for(journal)
            trusted = root if root is not None else (
                ledger.latest_receipt.ledger_root if ledger.latest_receipt else None
            )
            if trusted is None:
                raise UsageError("client-level TX verification needs a trusted root")
            if isinstance(proof, FamProof):
                ok = FamAccumulator.verify_full(journal.tx_hash(), proof, trusted)
            else:
                # ShardProof: folds the per-shard chain through the shard→root
                # link, so ``trusted`` must be the deployment's composite root.
                ok = bool(proof.verify(journal.tx_hash(), trusted))
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.TX.value,
            level=level.value,
            what=ok,
            proof=proof,
            trusted_root=trusted,
            jsn=journal.jsn,
        )

    def _verify_clue(
        self,
        key: str | None,
        txdata: list[Journal] | None,
        rho: Any,
        root: bytes | None,
        level: VerifyLevel,
    ) -> VerifyResult:
        if key is None or txdata is None:
            raise UsageError("CLUE verification needs key and txdata")
        ledger = self.ledger
        digests = {i: j.tx_hash() for i, j in enumerate(txdata)}
        if level is VerifyLevel.SERVER:
            trusted = ledger.state_root()
            ok = ledger.verify_clue(key, txdata)
            proof = rho
        else:
            proof = rho if rho is not None else ledger.prove_clue(key)
            trusted = root if root is not None else ledger.state_root()
            ok = proof.verify(digests, trusted)
        return VerifyResult(
            ok=ok,
            target=VerifyTarget.CLUE.value,
            level=level.value,
            what=ok,
            proof=proof,
            trusted_root=trusted,
            detail=f"clue {key!r} over {len(txdata)} journals",
        )

    def verify_dasein(
        self,
        jsn: int,
        receipt: Receipt | None = None,
        *,
        tsa_keys: dict[str, PublicKey] | None = None,
        trusted_root: bytes | None = None,
    ) -> VerifyResult:
        """Full three-factor (what/when/who) verification of one journal.

        Exports the ledger view, runs :class:`DaseinVerifier` over it, and
        lifts the :class:`DaseinReport` into a :class:`VerifyResult` with
        per-factor verdicts.  ``tsa_keys`` should come from the time
        authorities directly; ``trusted_root`` defaults to the latest
        receipt's LSP-signed ledger root.

        Raises:
            UsageError: no trusted root is available (fresh ledger, no
                receipt, no explicit ``trusted_root``).
            JournalNotFoundError: no journal exists at ``jsn``.
        """
        ledger = self.ledger
        if hasattr(ledger, "locate"):
            # Sharded: Dasein evidence (receipt, anchors, view) is all
            # shard-local, so resolve the gsn to its owning shard and run
            # the three-factor check there.
            shard_index, jsn = ledger.locate(jsn)
            ledger = ledger.shards[shard_index]
        view = ledger.export_view()
        try:
            verifier = DaseinVerifier(view, tsa_keys=tsa_keys, trusted_root=trusted_root)
        except ValueError as exc:
            raise UsageError(str(exc)) from None
        proof = ledger.get_proof(jsn, anchored=False)
        if receipt is None:
            receipt = ledger.receipt_for(jsn)
        report = verifier.verify_dasein(jsn, proof, receipt)
        return VerifyResult.from_dasein(
            report, proof=proof, trusted_root=verifier.trusted_root, level="client"
        )

    def audit(
        self,
        *,
        tsa_keys: dict[str, PublicKey] | None = None,
        workers: int = 0,
        resume: bool = False,
        checkpoint: CheckpointStore | str | None = None,
        temporal_range: tuple[float, float] | None = None,
        verify_client_signatures: bool = True,
        early_terminate: bool = True,
        **kwargs: Any,
    ) -> AuditReport:
        """Run the §V Dasein-complete audit over this ledger's exported view.

        The session exports a fresh :class:`LedgerView` and hands it to
        :func:`repro.audit.dasein_audit`; the returned :class:`AuditReport`
        carries per-sub-proof steps and replay counters, with ``passed`` the
        Definition-1 conjunction.

        ``workers`` enables the parallel engine (signature chunks overlap
        the replay fold; the report stays byte-identical to sequential).
        ``checkpoint`` (a path or :class:`~repro.audit.CheckpointStore`)
        makes the audit resumable; with ``resume=True`` a previously
        interrupted audit of this ledger continues from its last verified
        block range instead of genesis.  Remaining keyword arguments
        (``chunk_size``, ``checkpoint_every``, ``pool``) pass through.

        ``tsa_keys`` must come from the time authorities directly — an audit
        that takes them from the LSP proves nothing about *when*.

        Raises:
            UsageError: ``resume=True`` without a ``checkpoint``.
        """
        if resume and checkpoint is None:
            raise UsageError("audit(resume=True) needs a checkpoint= store or path")
        if hasattr(self.ledger, "export_views"):
            # Sharded: per-shard audits run in parallel, folded into one
            # ShardedAuditReport (truthy iff every shard passed).
            return self.ledger.audit(
                tsa_keys=tsa_keys,
                workers=workers,
                checkpoint=checkpoint,
                resume=resume,
                temporal_range=temporal_range,
                verify_client_signatures=verify_client_signatures,
                early_terminate=early_terminate,
                **kwargs,
            )
        from .audit import dasein_audit

        view = self.ledger.export_view()
        return dasein_audit(
            view,
            tsa_keys=tsa_keys,
            temporal_range=temporal_range,
            verify_client_signatures=verify_client_signatures,
            early_terminate=early_terminate,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            **kwargs,
        )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release session resources: drains+closes an owned service only."""
        if self._owns_service and self.service is not None:
            self.service.close()

    def __repr__(self) -> str:
        mode = "service" if self.service is not None else "direct"
        return f"<LedgerSession {self.lgid} {mode} client_id={self.client_id!r}>"


def _build_service(ledger: Any, config: Any):
    """The group-commit front end matching the ledger's shape."""
    if isinstance(ledger, Ledger):
        return LedgerService(ledger, config)
    from .shard import ShardedLedger, ShardedLedgerService

    if isinstance(ledger, ShardedLedger):
        return ShardedLedgerService(ledger, config)
    raise UsageError(f"cannot build a service over {type(ledger).__name__}")


def _coerce(enum_cls: type, value: Any):
    """Accept the enum member itself or its string value ("tx", "server")."""
    if isinstance(value, enum_cls):
        return value
    try:
        return enum_cls(value)
    except ValueError:
        raise UsageError(
            f"{enum_cls.__name__} expected one of "
            f"{[member.value for member in enum_cls]}, got {value!r}"
        ) from None
