"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``   — run the guided end-to-end scenario (append → verify → audit);
* ``audit``  — build a deterministic ledger and run the §V Dasein-complete
  audit over it (optionally parallel, resumable, JSON output);
* ``bench``  — reproduce the paper's tables and figures (see ``repro.bench``);
* ``attack`` — run the §III-B timestamp-attack scenarios and print windows;
* ``witness`` — run the §16 transparency attack scenarios (forking server,
  censoring server, honest control) against live TCP servers and report
  which produced offline-verifiable evidence;
* ``table1`` — print the Table-I comparison matrix;
* ``stats``  — run an instrumented workload and print the observability
  snapshot (DESIGN.md §10): per-phase spans, cache hit rates, storage I/O;
* ``compact`` — rewrite a persistent ledger's paged node store down to its
  live node set (DESIGN.md §13) and refresh the snapshot's page manifest;
* ``serve``  — expose a ledger over TCP (DESIGN.md §14): the asyncio frame
  server fronting the group-commit service, for remote verifying clients;
* ``export`` — write an offline export bundle (DESIGN.md §17) from a
  persistent ledger or a seeded demo deployment;
* ``verify-bundle`` — standalone what/when/who + STH verification of a
  bundle file, no ledger kernel imported;
* ``rebuild`` — reconstruct a full deployment from a bundle or a raw
  journal stream and cross-check every root, anchor, and tree head.

Subcommands register declaratively in :data:`_SUBCOMMANDS`: shared options
(``--json``, ``--journals``, ``--shards``, ``--data-dir``) are installed
from one place, and every command's :class:`~repro.core.errors.LedgerError`
failures are formatted uniformly (typed name + message on stderr, exit 2)
instead of per-command try/except blocks.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Any, Callable


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import (
        ClientRequest,
        DaseinVerifier,
        KeyPair,
        Ledger,
        LedgerConfig,
        Role,
        SimClock,
        TimeLedger,
        TimeStampAuthority,
    )
    from repro.api import LedgerSession

    clock = SimClock()
    tsa = TimeStampAuthority("demo-tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    ledger = Ledger(LedgerConfig(uri="ledger://demo", fractal_height=4, block_size=4), clock=clock)
    ledger.attach_time_ledger(tledger)
    user = KeyPair.generate(seed="demo-user")
    ledger.registry.register("demo-user", Role.USER, user.public)
    print(f"created {ledger!r}")
    receipts = []
    for i in range(12):
        request = ClientRequest.build(
            "ledger://demo", "demo-user", f"record {i}".encode(),
            clues=("DEMO",), nonce=bytes([i]), client_timestamp=clock.now(),
        ).signed_by(user)
        receipts.append(ledger.append(request))
        clock.advance(0.3)
        if i % 4 == 3:
            ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()
    ledger.commit_block()
    view = ledger.export_view()
    verifier = DaseinVerifier(view, tsa_keys={"demo-tsa": tsa.public_key})
    target = receipts[5]
    proof = ledger.get_proof(target.jsn, anchored=False)
    report = verifier.verify_dasein(target.jsn, proof, target)
    print(
        f"journal {target.jsn}: what={report.what} "
        f"when=({report.when_bound.lower:.1f}, {report.when_bound.upper:.1f}) "
        f"who={report.who} -> Dasein-complete={report.dasein_complete}"
    )
    session = LedgerSession(ledger)
    audit = session.audit(tsa_keys={"demo-tsa": tsa.public_key})
    print(
        f"full audit: passed={audit.passed} "
        f"({audit.journals_replayed} journals, {audit.blocks_verified} blocks, "
        f"{audit.time_journals_verified} time anchors)"
    )
    return 0 if audit.passed and report.dasein_complete else 1


def _audit_workload(journals: int, shards: int = 1):
    """Deterministic audit-target ledger: seeded keys, sim clock, direct TSA.

    Returns ``(session, tsa_keys)`` — a v2 session over a ledger with
    ``journals`` clue-tagged records, periodic time anchors, and committed
    blocks, identical for a given ``journals`` on every run.  With
    ``shards > 1`` the same workload lands on a hash-partitioned
    :class:`~repro.shard.ShardedLedger` and the audit runs per shard.
    """
    from repro import KeyPair, Ledger, LedgerConfig, Role, SimClock, TimeStampAuthority
    from repro.api import LedgerSession

    clock = SimClock()
    tsa = TimeStampAuthority("audit-tsa", clock)
    config = LedgerConfig(
        uri="ledger://audit", fractal_height=5, block_size=8, shards=shards
    )
    if shards > 1:
        from repro.shard import ShardedLedger

        ledger = ShardedLedger(config, clock=clock)
    else:
        ledger = Ledger(config, clock=clock)
    ledger.attach_tsa(tsa)
    user = KeyPair.generate(seed="audit-user")
    ledger.registry.register("audit-user", Role.USER, user.public)
    session = LedgerSession(ledger, client_id="audit-user", keypair=user)
    for index in range(journals):
        # Sharded runs spread the lineage over enough clues to hit every
        # shard (routing hashes the first clue); plain runs keep the single
        # "AUDIT" lineage the seeded workload has always used.
        clue = "AUDIT" if shards == 1 else f"AUDIT-{index % (4 * shards)}"
        session.append(f"audit record {index}".encode(), clue=clue)
        clock.advance(0.25)
        if index % 16 == 15:
            ledger.anchor_time()
    ledger.commit_block()
    return session, {"audit-tsa": tsa.public_key}


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    session, tsa_keys = _audit_workload(args.journals, shards=args.shards)
    checkpoint = args.resume if args.resume is not None else args.checkpoint
    report = session.audit(
        tsa_keys=tsa_keys,
        workers=args.workers,
        checkpoint=checkpoint,
        resume=args.resume is not None,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        shard_reports = getattr(report, "reports", None)
        for shard, sub in (
            enumerate(shard_reports) if shard_reports is not None else [(None, report)]
        ):
            prefix = "" if shard is None else f"shard-{shard} "
            for step in sub.steps:
                marker = "ok " if step.passed else "FAIL"
                print(f"  [{marker}] {prefix}{step.name}: {step.detail}")
        print(
            f"audit passed={report.passed} "
            f"({report.journals_replayed} journals, {report.blocks_verified} blocks, "
            f"{report.time_journals_verified} time anchors, "
            f"workers={args.workers}, shards={args.shards})"
        )
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import main as bench_main

    forwarded = list(args.experiments)
    if args.full:
        forwarded.append("--full")
    return bench_main(forwarded)


def _cmd_attack(_args: argparse.Namespace) -> int:
    from repro.bench import fig5

    print(fig5.render(fig5.run()))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    """Run the §16 transparency attack scenarios against live TCP servers.

    Exit status is the number of scenarios whose outcome deviates from the
    expected one (forks and censorship detected, honest server clean), so
    the command doubles as a self-check in CI.
    """
    import json
    import tempfile
    from dataclasses import asdict
    from pathlib import Path

    from repro.transparency.attacks import (
        run_censorship,
        run_fork_equivocation,
        run_honest_server,
    )

    scenarios = [
        ("fork", run_fork_equivocation, True),
        ("censorship", run_censorship, True),
        ("honest", run_honest_server, False),
    ]
    failures = 0
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-witness-") as tmp:
        for name, runner, expect_detected in scenarios:
            result = runner(Path(tmp) / name)
            ok = (
                result.detected == expect_detected
                and result.evidence_verified
            )
            failures += 0 if ok else 1
            results.append((result, ok))
    if args.json:
        print(json.dumps([asdict(r) for r, _ in results], indent=2))
        return failures
    for result, ok in results:
        verdict = "as expected" if ok else "UNEXPECTED"
        print(f"[{result.scenario}] detected={result.detected} ({verdict})")
        if result.evidence_kinds:
            print(f"  evidence: {', '.join(result.evidence_kinds)} "
                  f"(offline-verified: {result.evidence_verified})")
        if result.refutation_succeeded is not None:
            print(f"  refutation succeeded: {result.refutation_succeeded}")
        print(f"  {result.detail}")
    return failures


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.baselines import render_table_i

    print(render_table_i())
    return 0


def _compact_one(data_dir) -> dict | None:
    """Compact one ledger directory; None when it holds no paged store."""
    from repro.core.errors import SnapshotError
    from repro.core.snapshot import load_snapshot, write_snapshot
    from repro.merkle.mpt import MPT
    from repro.storage.pagestore import PagedNodeStore

    nodes_dir = data_dir / "nodes"
    if not nodes_dir.is_dir():
        return None
    store = PagedNodeStore(nodes_dir)
    snapshot_path = data_dir / "snapshot.ckpt"
    try:
        state = load_snapshot(snapshot_path)
    except SnapshotError:
        state = None
    if state is not None:
        # Live set = nodes reachable from the checkpointed CM-Tree1 root.
        # Nodes written by post-snapshot appends may be dropped too: the
        # delta replay at the next open deterministically re-creates them.
        root = bytes(state["cmtree"]["root"])
        result = store.compact(MPT(store, root=root).reachable())
        state["page_manifest"] = [list(entry) for entry in store.manifest()]
        write_snapshot(snapshot_path, state)
    else:
        # No snapshot to anchor a live set: only drop shadowed/tombstoned
        # entries (every still-indexed key survives).
        result = store.compact()
    store.close()
    return result


def _cmd_compact(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.shard import iter_shard_dirs

    data_dir = Path(args.data_dir)
    shard_dirs = list(iter_shard_dirs(data_dir))
    # A sharded data_dir holds no store of its own — compact each shard.
    targets = shard_dirs or [data_dir]
    results = {}
    for target in targets:
        result = _compact_one(target)
        if result is not None:
            results[str(target)] = result
    if not results:
        print(f"no paged node store under {data_dir}", file=sys.stderr)
        return 1
    if args.json:
        if not shard_dirs:
            # Unsharded: keep the original flat report shape.
            print(json.dumps(results[str(data_dir)], indent=2, sort_keys=True))
        else:
            print(json.dumps(results, indent=2, sort_keys=True))
    else:
        for name, result in results.items():
            print(
                f"compacted {name}: pages {result['pages_before']} -> "
                f"{result['pages_after']}, entries {result['entries_before']} -> "
                f"{result['entries_after']}, bytes {result['bytes_before']} -> "
                f"{result['bytes_after']}"
            )
    return 0


def _stats_workload(journals: int) -> dict:
    """Run an instrumented end-to-end workload; return the metrics snapshot.

    Exercises every instrumented layer: single and batched appends onto a
    durable :class:`FileStream`, fam proofs, server-side verification, full
    client-side Dasein verification, a reopen (storage.open_scan), and a
    served leg — a real socket round trip through the §14 frame server so
    the ``net.*`` families are present in the snapshot.

    Runs inside :func:`repro.obs.scoped`: the process-global registry (and
    whatever it had accumulated) is untouched afterwards, so a ``stats``
    run can never skew later measurements.
    """
    import tempfile

    from repro import (
        ClientRequest,
        DaseinVerifier,
        KeyPair,
        Ledger,
        LedgerConfig,
        Role,
        SimClock,
        TimeLedger,
        TimeStampAuthority,
    )
    from repro import obs
    from repro.storage.stream import FileStream

    with obs.scoped() as scoped_registry, tempfile.TemporaryDirectory(
        prefix="repro-stats-"
    ) as tmp:
        clock = SimClock()
        tsa = TimeStampAuthority("stats-tsa", clock)
        tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
        stream = FileStream(f"{tmp}/journal.stream", durable=True)
        ledger = Ledger(
            LedgerConfig(uri="ledger://stats", fractal_height=4, block_size=4),
            clock=clock,
            journal_stream=stream,
        )
        ledger.attach_time_ledger(tledger)
        user = KeyPair.generate(seed="stats-user")
        ledger.registry.register("stats-user", Role.USER, user.public)

        def request(i: int) -> ClientRequest:
            return ClientRequest.build(
                "ledger://stats", "stats-user", f"record {i}".encode(),
                clues=("STATS",), nonce=i.to_bytes(4, "big"),
                client_timestamp=clock.now(),
            ).signed_by(user)

        half = journals // 2
        receipts = []
        for i in range(half):
            receipts.append(ledger.append(request(i)))
            clock.advance(0.1)
            if i % 4 == 3:
                ledger.anchor_time()
        receipts.extend(ledger.append_batch([request(i) for i in range(half, journals)]))
        ledger.anchor_time()
        clock.advance(2.0)
        ledger.collect_time_evidence()
        ledger.commit_block()
        for receipt in receipts[: min(8, len(receipts))]:
            proof = ledger.get_proof(receipt.jsn)
            assert ledger.verify_journal(ledger.get_journal(receipt.jsn), proof)
        view = ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys={"stats-tsa": tsa.public_key})
        target = receipts[1]
        report = verifier.verify_dasein(
            target.jsn, ledger.get_proof(target.jsn, anchored=False), target
        )
        assert report.what and report.who
        stream.close()
        # Reopen to exercise the open-time scan path.
        FileStream(f"{tmp}/journal.stream", durable=True).close()

        # Paged node-store leg: same appends against the on-disk backend,
        # then proof reads so the page cache / node cache counters move.
        from repro.storage.kv import CachedKVStore

        paged = Ledger(
            LedgerConfig(
                uri="ledger://stats-paged", fractal_height=4, block_size=4,
                node_store="paged", cache_pages=8, data_dir=f"{tmp}/paged",
            ),
            clock=clock,
        )
        paged.registry.register("stats-user", Role.USER, user.public)
        for i in range(journals):
            paged.append(
                ClientRequest.build(
                    "ledger://stats-paged", "stats-user", f"record {i}".encode(),
                    clues=(f"STATS-{i % 4}",), nonce=i.to_bytes(4, "big"),
                    client_timestamp=clock.now(),
                ).signed_by(user)
            )
            clock.advance(0.1)
        paged.commit_block()
        for i in range(4):
            ok = paged.prove_clue(f"STATS-{i}").verify(
                {
                    v: paged._cmtree.entry_digest(f"STATS-{i}", v)
                    for v in range(paged.clue_entry_count(f"STATS-{i}"))
                },
                paged.state_root(),
            )
            if not ok:
                raise RuntimeError(f"stats workload clue proof STATS-{i} failed")
        paged.get_proofs(list(range(0, paged.size, 3)), anchored=False)
        node_store_stats = paged.node_store_stats()

        # Value-level cache layer over the same backend (kvcache.* counters).
        cached = CachedKVStore(paged.node_store, capacity=32)
        sample = [key for key, _ in zip(paged.node_store.keys(), range(16))]
        for _pass in range(2):
            for key in sample:
                cached.get(key)
        kv_cache_stats = cached.stats()
        paged.close(checkpoint=False)

        # Served leg: the same appends/proofs through a real socket (§14),
        # so the snapshot carries the net.* families a deployment watches.
        _stats_net_leg(journals=min(journals, 8))

        # Sharded leg: a small hash-partitioned deployment through its
        # per-shard group-commit services, so the per-instance
        # service.*{name=shard-k} families show up in the snapshot (§15).
        _stats_shard_leg(journals=min(journals, 12))

        # Transparency leg: acked appends, epoch-close head emission, and
        # a witness cross-audit round, so the transparency.* families a
        # deployment alarms on are all present (§16).
        _stats_transparency_leg(journals=min(journals, 12))

        snapshot = scoped_registry.snapshot()
    snapshot["node_store"] = node_store_stats
    snapshot["kv_cache"] = kv_cache_stats
    return snapshot


def _stats_net_leg(journals: int) -> None:
    """Round-trip a few appends/proofs through the asyncio frame server."""
    from repro import KeyPair, Ledger, LedgerConfig, Role
    from repro.net import RemoteLedgerClient, ServerThread

    ledger = Ledger(
        LedgerConfig(uri="ledger://stats-net", fractal_height=3, block_size=4)
    )
    user = KeyPair.generate(seed="stats-net-user")
    ledger.registry.register("stats-net-user", Role.USER, user.public)
    with ServerThread(ledger) as served:
        host, port = served.address
        client = RemoteLedgerClient(
            host, port, member_id="stats-net-user", keypair=user
        )
        try:
            receipts = [
                client.append(f"net record {i}".encode(), ("NET",))
                for i in range(journals)
            ]
            client.get_proofs([receipt.jsn for receipt in receipts])
            client.sync_anchors()
            if not client.verify_journal(client.get_journal(receipts[0].jsn)):
                raise RuntimeError("stats net leg: remote verification failed")
        finally:
            client.close()


def _stats_shard_leg(journals: int) -> None:
    """Append/verify across a small sharded deployment (§15 families)."""
    from repro import ClientRequest, KeyPair, LedgerConfig, Role
    from repro.shard import ShardedLedger, ShardedLedgerService

    ledger = ShardedLedger(
        LedgerConfig(uri="ledger://stats-shard", fractal_height=3, block_size=4, shards=2)
    )
    user = KeyPair.generate(seed="stats-shard-user")
    ledger.registry.register("stats-shard-user", Role.USER, user.public)
    with ShardedLedgerService(ledger) as service:
        futures = [
            service.submit(
                ClientRequest.build(
                    "ledger://stats-shard", "stats-shard-user",
                    f"shard record {i}".encode(), clues=(f"SHARD-{i}",),
                    nonce=i.to_bytes(4, "big"), client_timestamp=ledger.clock.now(),
                ).signed_by(user)
            )
            for i in range(journals)
        ]
        for future in futures:
            future.result(timeout=30.0)
    composite = ledger.composite_root()
    for gsn in ledger.list_tx("SHARD-0"):
        journal = ledger.get_journal(gsn)
        if not ledger.get_proof(gsn).verify(journal.tx_hash(), composite):
            raise RuntimeError("stats shard leg: cross-shard proof failed")
    ledger.close()


def _stats_transparency_leg(journals: int) -> None:
    """Acked appends + STH gossip + witness audit (§16 families)."""
    from repro import KeyPair, Ledger, LedgerConfig, Role, SimClock
    from repro.api import LedgerSession
    from repro.transparency import Witness

    ledger = Ledger(
        LedgerConfig(uri="ledger://stats-transparency", fractal_height=2),
        clock=SimClock(),
    )
    user = KeyPair.generate(seed="stats-transparency-user")
    ledger.registry.register("stats-transparency-user", Role.USER, user.public)
    witness = Witness(ledger.lsp_public_key)
    with LedgerSession(
        ledger,
        lgid=ledger.config.uri,
        client_id="stats-transparency-user",
        keypair=user,
    ) as session:
        receipt, ack = session.append_acked(b"acked record", clue="TRANSPARENCY")
        if not ack.verify(ledger.lsp_public_key):
            raise RuntimeError("stats transparency leg: ack failed to verify")
        witness.audit(session)
        for i in range(journals):
            session.append(f"transparency record {i}".encode(), clue="TRANSPARENCY")
        report = witness.audit(session)
        if not report.clean:
            raise RuntimeError("stats transparency leg: honest audit not clean")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import KeyPair, Ledger, LedgerConfig, Role
    from repro.core.ledger import LSP_MEMBER_ID
    from repro.net import LedgerServer

    config_kwargs: dict = {
        "uri": args.uri,
        "fractal_height": args.fractal_height,
        "block_size": args.block_size,
        "shards": args.shards,
    }
    if args.data_dir:
        config_kwargs.update(node_store="paged", data_dir=args.data_dir)
    if args.shards > 1:
        from repro.shard import ShardedLedger, ShardedLedgerService

        ledger = ShardedLedgerService(ShardedLedger(LedgerConfig(**config_kwargs)))
        targets = [
            (service, (ledger.ledger, index), 0 if args.port == 0 else args.port + index)
            for index, service in enumerate(ledger.services)
        ]
        registry = ledger.ledger.registry
    else:
        ledger = Ledger(LedgerConfig(**config_kwargs))
        targets = [(ledger, None, args.port)]
        registry = ledger.registry
    if args.seed_demo:
        # Deterministic demo principal so `connect()` examples work out of
        # the box: seed "demo-user" → the same keypair on every run.
        demo = KeyPair.generate(seed="demo-user")
        registry.register("demo-user", Role.USER, demo.public)

    async def run() -> None:
        servers = []
        for index, (target, shard_context, port) in enumerate(targets):
            server = LedgerServer(
                target,
                host=args.host,
                port=port,
                allow_register=args.allow_register,
                shard_context=shard_context,
                close_service=False if shard_context is not None else None,
            )
            host, bound = await server.start()
            label = "" if shard_context is None else f"shard {index}: "
            print(f"{label}serving {args.uri} on ledger://{host}:{bound}", flush=True)
            servers.append(server)
        lsp_key = registry.public_key(LSP_MEMBER_ID)
        print(f"lsp public key: {lsp_key.to_bytes().hex()}", flush=True)
        try:
            await asyncio.gather(*(server.serve_forever() for server in servers))
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            print("draining...", flush=True)
            for server in servers:
                await server.close(drain=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _render_stats_table(snapshot: dict) -> str:
    lines = []
    counters = snapshot["counters"]
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters")
        lines.extend(f"  {name:<{width}}  {value:>12}" for name, value in counters.items())
    gauges = snapshot["gauges"]
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges")
        lines.extend(f"  {name:<{width}}  {value:>12g}" for name, value in gauges.items())
    histograms = snapshot["histograms"]
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append("histograms (us)")
        header = f"  {'name':<{width}}  {'count':>8} {'mean':>10} {'min':>10} {'max':>10}"
        lines.append(header)
        for name, h in histograms.items():
            lines.append(
                f"  {name:<{width}}  {h['count']:>8} {h['mean']:>10.1f} "
                f"{h['min']:>10.1f} {h['max']:>10.1f}"
            )
    for section in ("node_store", "kv_cache"):
        table = snapshot.get(section)
        if table:
            width = max(len(name) for name in table)
            lines.append(section.replace("_", " "))
            for name, value in sorted(table.items()):
                rendered = f"{value:>12.3f}" if isinstance(value, float) else f"{value:>12}"
                lines.append(f"  {name:<{width}}  {rendered}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    snapshot = _stats_workload(args.journals)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(_render_stats_table(snapshot))
    return 0


# ------------------------------------------------- export / verify / rebuild


def _export_workload(journals: int, shards: int, data_dir: str | None = None):
    """Deterministic export-demo deployment (persistent when ``data_dir``).

    Same discipline as :func:`_audit_workload`: seeded keys, sim clock,
    periodic TSA anchors, committed blocks — identical bytes for a given
    ``(journals, shards)`` on every run, which is what makes the CLI
    self-check (export → verify-bundle → rebuild) meaningful in CI.
    """
    from repro import KeyPair, Ledger, LedgerConfig, Role, SimClock, TimeStampAuthority
    from repro.api import LedgerSession

    clock = SimClock()
    tsa = TimeStampAuthority("export-tsa", clock)
    config_kwargs: dict = {
        "uri": "ledger://export-demo",
        "fractal_height": 4,
        "block_size": 8,
        "shards": shards,
    }
    if data_dir:
        config_kwargs.update(node_store="paged", data_dir=data_dir)
    config = LedgerConfig(**config_kwargs)
    if shards > 1:
        from repro.shard import ShardedLedger

        ledger = ShardedLedger(config, clock=clock)
    else:
        ledger = Ledger(config, clock=clock)
    ledger.attach_tsa(tsa)
    user = KeyPair.generate(seed="export-user")
    ledger.registry.register("export-user", Role.USER, user.public)
    with LedgerSession(ledger, client_id="export-user", keypair=user) as session:
        for index in range(journals):
            clue = "EXPORT" if shards == 1 else f"EXPORT-{index % (4 * shards)}"
            session.append(f"export record {index}".encode(), clue=clue)
            clock.advance(0.25)
            if index % 8 == 7:
                ledger.anchor_time()
    ledger.commit_block()
    return ledger


def _open_persistent(data_dir: str):
    """Reopen a persistent deployment with deployment-deterministic keys.

    The default LSP keypair is the ``lsp:<uri>`` seed every default
    deployment uses; a ledger created with an explicit operator keypair
    cannot be reopened by the CLI (the append path would mis-sign) and
    refuses with a typed error from the kernel.
    """
    from pathlib import Path

    from repro.core.ledger import CONFIG_FILE, Ledger
    from repro.core.snapshot import load_config_file
    from repro.crypto.keys import KeyPair
    from repro.core.members import MemberRegistry

    base = Path(data_dir)
    config = load_config_file(base / CONFIG_FILE, data_dir=str(base))
    lsp_keypair = KeyPair.generate(seed=f"lsp:{config.uri}")
    registry = MemberRegistry()
    if config.shards > 1:
        from repro.shard import ShardedLedger

        return ShardedLedger.open(str(base), registry, lsp_keypair)
    return Ledger.open(str(base), registry, lsp_keypair)


def _close_quietly(ledger: Any) -> None:
    """Release a CLI-opened ledger without mutating its source directory."""
    import contextlib

    with contextlib.suppress(Exception):
        ledger.close(checkpoint=False)


def _cmd_export(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.export.bundle import export_bundle

    if args.data_dir and not args.demo:
        ledger = _open_persistent(args.data_dir)
    else:
        ledger = _export_workload(args.journals, args.shards, data_dir=args.data_dir)
    try:
        bundle = export_bundle(ledger, clues=tuple(args.clue or ()), path=args.out)
    finally:
        _close_quietly(ledger)
    size = Path(args.out).stat().st_size
    if args.json:
        print(
            json.dumps(
                {
                    "path": args.out,
                    "bytes": size,
                    "ledger_uri": bundle.ledger_uri,
                    "journals": bundle.journal_count,
                    "shards": bundle.num_shards,
                    "clues": sorted(args.clue or ()),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"exported {bundle.ledger_uri}: {bundle.journal_count} journals "
            f"across {bundle.num_shards} shard(s) -> {args.out} ({size} bytes)"
        )
    return 0


def _cmd_verify_bundle(args: argparse.Namespace) -> int:
    import json

    # Deliberately only the standalone slice: repro.export.verifier never
    # imports the ledger kernel, the service layer, or the network stack.
    from repro.export.bundle import ExportBundle
    from repro.export.verifier import verify_bundle

    bundle = ExportBundle.read(args.bundle)
    result = verify_bundle(bundle)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": result.ok,
                    "what": result.what,
                    "when": result.when,
                    "who": result.who,
                    "target": result.target,
                    "level": result.level,
                    "detail": result.detail,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"bundle {args.bundle}: ok={result.ok} what={result.what} "
            f"when={result.when} who={result.who}"
        )
        if result.detail:
            print(f"  {result.detail}")
    return 0 if result.ok else 1


def _cmd_rebuild(args: argparse.Namespace) -> int:
    import json

    if (args.bundle is None) == (args.data_dir is None):
        print(
            "rebuild: pass exactly one of --bundle or --data-dir",
            file=sys.stderr,
        )
        return 2
    if args.bundle is not None:
        from repro.export.bundle import ExportBundle
        from repro.export.rebuild import rebuild_from_bundle

        ledger, report = rebuild_from_bundle(ExportBundle.read(args.bundle))
    else:
        from repro.export.rebuild import rebuild_from_stream

        ledger, report = rebuild_from_stream(args.data_dir)
    _close_quietly(ledger)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": report.ok,
                    "source": report.source,
                    "ledger_uri": report.ledger_uri,
                    "num_shards": report.num_shards,
                    "journals": report.journals,
                    "checks": list(report.checks),
                    "divergences": [
                        {
                            "kind": d.kind,
                            "shard_index": d.shard_index,
                            "coordinate": d.coordinate,
                            "detail": d.detail,
                        }
                        for d in report.divergences
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"rebuilt {report.ledger_uri} from {report.source}: ok={report.ok} "
            f"({report.journals} journals, {report.num_shards} shard(s), "
            f"checks: {', '.join(report.checks)})"
        )
        for divergence in report.divergences:
            print(
                f"  DIVERGED [{divergence.kind}] shard {divergence.shard_index} "
                f"{divergence.coordinate}: {divergence.detail}"
            )
    return 0 if report.ok else 1


# ----------------------------------------------------- subcommand registry

#: An installer takes the subcommand's parser and adds arguments to it.
_Installer = Callable[[argparse.ArgumentParser], None]


def _opt_json(help: str = "print machine-readable JSON") -> _Installer:
    def install(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--json", action="store_true", help=help)

    return install


def _opt_journals(default: int) -> _Installer:
    def install(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--journals", type=int, default=default,
            help=f"workload size (default: {default})",
        )

    return install


def _opt_shards(help: str) -> _Installer:
    def install(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--shards", type=int, default=1, help=help)

    return install


def _opt_data_dir(help: str, *, positional: bool = False) -> _Installer:
    def install(parser: argparse.ArgumentParser) -> None:
        if positional:
            parser.add_argument("data_dir", help=help)
        else:
            parser.add_argument("--data-dir", default=None, help=help)

    return install


def _args_audit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=0,
        help="parallel signature workers (0 = sequential engine)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write resumable checkpoints to PATH while auditing",
    )
    parser.add_argument(
        "--resume", metavar="CHECKPOINT", default=None,
        help="resume from (and keep checkpointing to) CHECKPOINT",
    )


def _args_bench(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiments", nargs="*", help="subset (default: all)")
    parser.add_argument("--full", action="store_true", help="full-size sweeps")


def _args_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7468, help="bind port (0 = ephemeral)"
    )
    parser.add_argument("--uri", default="ledger://served", help="ledger URI")
    parser.add_argument(
        "--fractal-height", type=int, default=8, help="FAM epoch height (default: 8)"
    )
    parser.add_argument(
        "--block-size", type=int, default=64, help="journals per block (default: 64)"
    )
    parser.add_argument(
        "--seed-demo", action="store_true",
        help='register the deterministic "demo-user" principal',
    )
    parser.add_argument(
        "--allow-register", action="store_true",
        help="let remote peers self-register as role 'user' (off by default; "
        "privileged roles can never be registered over the wire)",
    )


def _args_export(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out", required=True, metavar="PATH", help="bundle file to write"
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="seed the deterministic export-demo workload (into --data-dir "
        "when given, else in memory) instead of opening an existing ledger",
    )
    parser.add_argument(
        "--clue", action="append", metavar="CLUE", default=None,
        help="include this clue lineage with its CM-Tree proof (repeatable)",
    )


def _args_rebuild(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bundle", metavar="PATH", default=None,
        help="rebuild from this export bundle file",
    )


@dataclass(frozen=True)
class Subcommand:
    """One ``python -m repro`` command, declared instead of hand-wired."""

    name: str
    help: str
    fn: Callable[[argparse.Namespace], int]
    options: tuple[_Installer, ...] = ()


_SUBCOMMANDS: tuple[Subcommand, ...] = (
    Subcommand("demo", "guided end-to-end scenario", _cmd_demo),
    Subcommand(
        "audit", "run the §V Dasein-complete audit on a seeded workload",
        _cmd_audit,
        (
            _opt_json("print the report as JSON"),
            _opt_journals(96),
            _opt_shards(
                "hash-partition the workload over N shards and audit each "
                "in parallel (default: 1)"
            ),
            _args_audit,
        ),
    ),
    Subcommand("bench", "reproduce the paper's tables/figures", _cmd_bench, (_args_bench,)),
    Subcommand("attack", "timestamp-attack scenarios (Figure 5)", _cmd_attack),
    Subcommand("table1", "print the Table-I matrix", _cmd_table1),
    Subcommand(
        "witness",
        "run the §16 non-equivocation scenarios (fork, censorship, honest)",
        _cmd_witness,
        (_opt_json("print results as JSON"),),
    ),
    Subcommand(
        "stats", "instrumented workload + observability snapshot",
        _cmd_stats,
        (_opt_json("print raw snapshot JSON"), _opt_journals(24)),
    ),
    Subcommand(
        "serve", "expose a ledger over TCP for remote verifying clients",
        _cmd_serve,
        (
            _opt_data_dir(
                "persist to this directory (paged node store); default in-memory"
            ),
            _opt_shards(
                "run N hash-partitioned shards under one composite root; "
                "shard k listens on port+k (default: 1)"
            ),
            _args_serve,
        ),
    ),
    Subcommand(
        "compact", "compact a persistent ledger's paged node store",
        _cmd_compact,
        (
            _opt_data_dir("ledger data directory (holds nodes/)", positional=True),
            _opt_json("print stats as JSON"),
        ),
    ),
    Subcommand(
        "export", "write an offline export bundle (DESIGN.md §17)",
        _cmd_export,
        (
            _opt_data_dir(
                "persistent ledger to export — or, with --demo, where to "
                "seed the demo deployment"
            ),
            _opt_json(),
            _opt_journals(24),
            _opt_shards("seed the --demo workload over N shards (default: 1)"),
            _args_export,
        ),
    ),
    Subcommand(
        "verify-bundle",
        "standalone what/when/who verification of a bundle file",
        _cmd_verify_bundle,
        (
            _opt_json(),
            lambda parser: parser.add_argument("bundle", help="bundle file to verify"),
        ),
    ),
    Subcommand(
        "rebuild",
        "rebuild a deployment from a bundle or raw stream and cross-check it",
        _cmd_rebuild,
        (
            _opt_data_dir("rebuild from this directory's raw journal stream(s)"),
            _opt_json(),
            _args_rebuild,
        ),
    ),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LedgerDB ubiquitous-verification reproduction (ICDE 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in _SUBCOMMANDS:
        command_parser = sub.add_parser(command.name, help=command.help)
        for install in command.options:
            install(command_parser)
        command_parser.set_defaults(fn=command.fn)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:
        # Uniform error surface for every subcommand: repro's typed errors
        # print as "<command>: <Type>: <message>" and exit 2 instead of a
        # traceback; genuine bugs (non-LedgerError) still traceback.
        from repro.core.errors import LedgerError

        if not isinstance(exc, LedgerError):
            raise
        print(
            f"python -m repro {args.command}: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
