"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``   — run the guided end-to-end scenario (append → verify → audit);
* ``bench``  — reproduce the paper's tables and figures (see ``repro.bench``);
* ``attack`` — run the §III-B timestamp-attack scenarios and print windows;
* ``table1`` — print the Table-I comparison matrix.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import (
        ClientRequest,
        DaseinVerifier,
        KeyPair,
        Ledger,
        LedgerConfig,
        Role,
        SimClock,
        TimeLedger,
        TimeStampAuthority,
        dasein_audit,
    )

    clock = SimClock()
    tsa = TimeStampAuthority("demo-tsa", clock)
    tledger = TimeLedger(clock, tsa, finalize_interval=1.0, admission_tolerance=2.0)
    ledger = Ledger(LedgerConfig(uri="ledger://demo", fractal_height=4, block_size=4), clock=clock)
    ledger.attach_time_ledger(tledger)
    user = KeyPair.generate(seed="demo-user")
    ledger.registry.register("demo-user", Role.USER, user.public)
    print(f"created {ledger!r}")
    receipts = []
    for i in range(12):
        request = ClientRequest.build(
            "ledger://demo", "demo-user", f"record {i}".encode(),
            clues=("DEMO",), nonce=bytes([i]), client_timestamp=clock.now(),
        ).signed_by(user)
        receipts.append(ledger.append(request))
        clock.advance(0.3)
        if i % 4 == 3:
            ledger.anchor_time()
    clock.advance(2.0)
    ledger.collect_time_evidence()
    ledger.commit_block()
    view = ledger.export_view()
    verifier = DaseinVerifier(view, tsa_keys={"demo-tsa": tsa.public_key})
    target = receipts[5]
    proof = ledger.get_proof(target.jsn, anchored=False)
    report = verifier.verify_dasein(target.jsn, proof, target)
    print(
        f"journal {target.jsn}: what={report.what} "
        f"when=({report.when_bound.lower:.1f}, {report.when_bound.upper:.1f}) "
        f"who={report.who} -> Dasein-complete={report.dasein_complete}"
    )
    audit = dasein_audit(view, tsa_keys={"demo-tsa": tsa.public_key})
    print(
        f"full audit: passed={audit.passed} "
        f"({audit.journals_replayed} journals, {audit.blocks_verified} blocks, "
        f"{audit.time_journals_verified} time anchors)"
    )
    return 0 if audit.passed and report.dasein_complete else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import main as bench_main

    forwarded = list(args.experiments)
    if args.full:
        forwarded.append("--full")
    return bench_main(forwarded)


def _cmd_attack(_args: argparse.Namespace) -> int:
    from repro.bench import fig5

    print(fig5.render(fig5.run()))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.baselines import render_table_i

    print(render_table_i())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LedgerDB ubiquitous-verification reproduction (ICDE 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="guided end-to-end scenario").set_defaults(fn=_cmd_demo)

    bench = sub.add_parser("bench", help="reproduce the paper's tables/figures")
    bench.add_argument("experiments", nargs="*", help="subset (default: all)")
    bench.add_argument("--full", action="store_true", help="full-size sweeps")
    bench.set_defaults(fn=_cmd_bench)

    sub.add_parser("attack", help="timestamp-attack scenarios (Figure 5)").set_defaults(
        fn=_cmd_attack
    )
    sub.add_parser("table1", help="print the Table-I matrix").set_defaults(fn=_cmd_table1)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
