"""Lightweight tracing spans over the metrics registry.

A span measures one pass through a named phase — ``span("ledger.append")``
wraps the append hot path — and folds its measurements into plain metrics
(no trace buffers, no exporters):

* ``<name>.calls``    — counter, one per completed span;
* ``<name>.wall_us``  — histogram of wall-clock duration;
* ``<name>.cpu_us``   — histogram of thread CPU time;
* ``<name>.self_us``  — histogram of wall time *minus* enclosed child
  spans, so nested instrumentation (append → cmtree.flush → storage.append)
  attributes time to exactly one phase.

Nesting is tracked per-thread on a ``threading.local`` stack, so spans are
safe under future parallel appenders: concurrent threads see independent
stacks while their measurements merge in the shared registry.

Per-span counters ride on the span's name: ``sp.add("journals", 8)`` inside
``span("ledger.append_batch")`` bumps ``ledger.append_batch.journals``.

Disabled mode: :data:`NULL_SPAN` is a shared, reentrant, stateless no-op —
entering it costs one method call and no allocation, which is what makes
instrumentation effectively free when observability is off.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Span", "NULL_SPAN"]

_stack = threading.local()


class Span:
    """Context manager timing one phase; see module docstring for outputs."""

    __slots__ = ("name", "_registry", "_wall_start", "_cpu_start", "_child_wall_us")

    def __init__(self, name: str, registry) -> None:
        self.name = name
        self._registry = registry
        self._wall_start = 0
        self._cpu_start = 0
        self._child_wall_us = 0.0

    def add(self, counter: str, amount: int = 1) -> None:
        """Bump the per-span counter ``<span name>.<counter>``."""
        self._registry.inc(f"{self.name}.{counter}", amount)

    def __enter__(self) -> "Span":
        stack = getattr(_stack, "spans", None)
        if stack is None:
            stack = _stack.spans = []
        stack.append(self)
        self._child_wall_us = 0.0
        self._cpu_start = time.thread_time_ns()
        self._wall_start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_us = (time.perf_counter_ns() - self._wall_start) / 1e3
        cpu_us = (time.thread_time_ns() - self._cpu_start) / 1e3
        stack = _stack.spans
        stack.pop()
        if stack:
            stack[-1]._child_wall_us += wall_us
        registry = self._registry
        registry.inc(f"{self.name}.calls")
        registry.observe(f"{self.name}.wall_us", wall_us)
        registry.observe(f"{self.name}.cpu_us", cpu_us)
        registry.observe(f"{self.name}.self_us", max(wall_us - self._child_wall_us, 0.0))


class _NullSpan:
    """Shared no-op span for disabled observability (reentrant, stateless)."""

    __slots__ = ()

    def add(self, counter: str, amount: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()
