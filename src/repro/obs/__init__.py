"""repro.obs — the observability layer (metrics + tracing, DESIGN.md §10).

One module-level registry serves the whole process.  It starts as a
:class:`~repro.obs.metrics.NullRegistry` (every call a no-op) unless the
``REPRO_OBS`` environment variable is set truthy at import time; callers can
flip it at runtime with :func:`enable` / :func:`disable`, and
``Ledger(config=LedgerConfig(observability=True))`` enables it per-deployment.

Instrumented code uses exactly three entry points, all safe to call whether
or not observability is on::

    from .. import obs                    # or: from repro import obs

    with obs.span("ledger.append") as sp: # timing + nesting
        sp.add("journals", 1)             # per-span counter
    obs.inc("ecdsa.pubkey_cache.hit")     # bare counter
    obs.observe("storage.fsync.wall_us", dt_us)  # bare histogram sample

Overhead guarantee: with observability disabled, ``span()`` returns a shared
stateless no-op and ``inc``/``observe`` return after one module-global read —
no locks, no allocation, no string formatting.  The ``--quick`` throughput
benchmark gates this (compare_bench warn threshold) in CI.

The registry is deliberately global: metrics from every subsystem (core,
merkle, storage, crypto) merge into one namespace so a single snapshot shows
where an ``append_batch`` spent its time.  ``snapshot()`` is JSON-serialisable
by construction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager as _contextmanager

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry
from .tracing import NULL_SPAN, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "reset",
    "scoped",
]

_NULL_REGISTRY = NullRegistry()

_enabled = os.environ.get("REPRO_OBS", "") not in ("", "0", "false", "no")
_registry: MetricsRegistry | NullRegistry = (
    MetricsRegistry() if _enabled else _NULL_REGISTRY
)


def enable() -> MetricsRegistry:
    """Install (or return the already-installed) live registry."""
    global _enabled, _registry
    if not isinstance(_registry, MetricsRegistry):
        _registry = MetricsRegistry()
    _enabled = True
    return _registry


def disable() -> None:
    """Return to the no-op registry.  Accumulated metrics are dropped."""
    global _enabled, _registry
    _enabled = False
    _registry = _NULL_REGISTRY


def is_enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry | NullRegistry:
    """The currently installed registry (null when disabled)."""
    return _registry


def span(name: str):
    """A timing span, or the shared no-op when observability is off."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, _registry)


def inc(name: str, amount: int = 1) -> None:
    if _enabled:
        _registry.inc(name, amount)


def observe(name: str, value: float) -> None:
    if _enabled:
        _registry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.set_gauge(name, value)


def snapshot() -> dict:
    """JSON-serialisable snapshot of every metric (empty shell when off)."""
    return _registry.snapshot()


def reset() -> None:
    _registry.reset()


@_contextmanager
def scoped():
    """Install a fresh registry for the block; restore the prior one after.

    Yields the temporary :class:`MetricsRegistry` so the caller can take a
    snapshot of *exactly* the block's activity.  Whatever registry (live or
    null) was installed before — including everything it had accumulated —
    comes back untouched on exit, so an instrumented workload (``python -m
    repro stats``) can run mid-process without skewing later measurements.

    The swap is process-global, like the registry itself: metrics emitted by
    *other* threads during the block also land in the scoped registry.  That
    is what lets a scoped workload capture its own background threads
    (service writers, the net server loop), and why two scoped workloads
    should not run concurrently.
    """
    global _enabled, _registry
    prior_enabled, prior_registry = _enabled, _registry
    fresh = MetricsRegistry()
    _registry = fresh
    _enabled = True
    try:
        yield fresh
    finally:
        _enabled, _registry = prior_enabled, prior_registry
