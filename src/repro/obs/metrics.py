"""Dependency-free metrics substrate: counters, gauges, histograms.

The observability layer (DESIGN.md §10) exists so the per-phase costs the
paper evaluates — proof construction vs. signing vs. storage (Figs. 7–10) —
are visible inside a running ledger instead of inferred from end-to-end
timings.  Three metric kinds cover everything the hot paths need:

* :class:`Counter` — a monotone event count (cache hits, journals appended,
  bytes written);
* :class:`Gauge`   — a last-write-wins level (queue depths, sizes);
* :class:`Histogram` — fixed log₂-scale latency buckets plus count/sum/
  min/max, so per-phase latency distributions cost O(64) memory forever.

All state lives in a :class:`MetricsRegistry`.  Every mutation takes the
registry's single lock, making the registry safe under future parallel
appenders; the lock is uncontended in today's single-threaded paths and
costs ~100 ns per operation.  :class:`NullRegistry` is the disabled-mode
stand-in: same API, every method a no-op, ``snapshot()`` empty — hot paths
never branch on "is observability on", they just talk to whichever registry
is installed (see :mod:`repro.obs`).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry"]

#: Number of log₂ buckets a histogram carries.  Bucket ``k`` counts values
#: in ``(2^(k-1), 2^k]`` (bucket 0: values <= 1).  64 buckets cover any
#: microsecond latency a ledger operation can physically produce.
HISTOGRAM_BUCKETS = 64


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Histogram:
    """Log₂-bucketed distribution with count / sum / min / max.

    ``observe`` maps a non-negative value to bucket ``ceil(log2(value))``
    via ``int.bit_length`` — no ``math.log`` call on the hot path.  Bucket
    upper bounds are fixed powers of two, so histograms from different runs
    (or different threads) merge by plain bucket-wise addition.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.buckets = [0] * HISTOGRAM_BUCKETS

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        # ceil(log2(v)) for v > 1; values <= 1 land in bucket 0.
        magnitude = int(value)
        index = magnitude.bit_length() if magnitude >= 1 else 0
        if index and magnitude == 1 << (index - 1) and value == magnitude:
            index -= 1  # exact powers of two belong to their own bucket
        if index >= HISTOGRAM_BUCKETS:
            index = HISTOGRAM_BUCKETS - 1
        self.buckets[index] += 1

    def snapshot(self) -> dict:
        """JSON-serialisable summary; only non-empty buckets are listed."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {
                str(1 << index if index else 1): hits
                for index, hits in enumerate(self.buckets)
                if hits
            },
        }


class MetricsRegistry:
    """Thread-safe, name-addressed store of counters, gauges and histograms.

    Names are dotted strings following the span naming scheme (DESIGN.md
    §10): ``<layer>.<operation>[.<detail>]``, e.g. ``ledger.append.wall_us``
    or ``ecdsa.pubkey_cache.hit``.  Metrics are created on first touch;
    reading the snapshot never mutates.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------- mutation

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.value = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def reset(self) -> None:
        """Drop every metric (tests, or the start of a measured workload)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # --------------------------------------------------------------- reads

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def snapshot(self) -> dict:
        """A point-in-time, JSON-serialisable view of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }


class NullRegistry:
    """The disabled-mode registry: every operation is a no-op.

    Shares the :class:`MetricsRegistry` surface so instrumented code holds a
    single reference and never branches.  ``snapshot()`` is an empty shell
    (still JSON-serialisable) so callers need no special-casing either.
    """

    __slots__ = ()

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
