"""ProvenDB-like CLD with one-way Bitcoin pegging (simulated comparator).

ProvenDB "submits transaction digests to a public blockchain (e.g., Bitcoin)
periodically to gain external timestamp evidence" (§I) — a one-way pegging
protocol.  Though the LSP cannot tamper a timestamp once anchored, "it can
still infinitely delay its actual effective time" (§III-B1): the simulator's
``malicious_delay`` knob demonstrates exactly that amplification, and the
Figure-5 benchmark measures it against LedgerDB's two-way pegging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, leaf_hash
from ..encoding import encode
from ..merkle.tim import TimAccumulator
from ..timeauth.clock import Clock
from ..timeauth.pegging import NotaryEvidence, OneWayPegger, PublicChainNotary, TimeBound

__all__ = ["ProvenDBSimulator", "VersionRecord"]


@dataclass(frozen=True)
class VersionRecord:
    """One committed document version."""

    key: str
    version: int
    data: bytes
    created_at: float
    sequence: int


class ProvenDBSimulator:
    """A versioned document DB whose digests peg one-way to a public chain."""

    def __init__(
        self,
        clock: Clock,
        notary: PublicChainNotary | None = None,
        peg_interval: float = 60.0,
        malicious_delay: float = 0.0,
    ) -> None:
        self.clock = clock
        self.notary = notary or PublicChainNotary(clock, block_interval=600.0)
        self._pegger = OneWayPegger(self.notary)
        self.peg_interval = peg_interval
        #: A colluding LSP holds digests back this long before submitting —
        #: the infinite-time-amplification lever of §III-B1.
        self.malicious_delay = malicious_delay
        self._accumulator = TimAccumulator()
        self._documents: dict[str, list[VersionRecord]] = {}
        self._next_peg = clock.now() + peg_interval
        self._held_digests: list[tuple[float, Digest]] = []  # (release_at, digest)

    # ------------------------------------------------------------------- API

    def insert(self, key: str, data: bytes) -> VersionRecord:
        history = self._documents.setdefault(key, [])
        record = VersionRecord(
            key=key,
            version=len(history),
            data=data,
            created_at=self.clock.now(),
            sequence=self._accumulator.append(
                encode({"key": key, "version": len(history), "data": data})
            ),
        )
        history.append(record)
        self.tick()
        return record

    def tick(self) -> None:
        """Run due pegs; a malicious LSP defers submissions by its delay."""
        now = self.clock.now()
        while self._next_peg <= now:
            digest = self._accumulator.root()
            release_at = self._next_peg + self.malicious_delay
            self._held_digests.append((release_at, digest))
            self._next_peg += self.peg_interval
        still_held = []
        for release_at, digest in self._held_digests:
            if release_at <= now:
                # Preserve the logical submission time so the digest lands in
                # the block it would have under continuous operation.
                self.notary.submit(digest, at_time=release_at)
            else:
                still_held.append((release_at, digest))
        self._held_digests = still_held
        self.notary.tick()

    def latest(self, key: str) -> VersionRecord:
        history = self._documents.get(key)
        if not history:
            raise KeyError(f"no document {key!r}")
        return history[-1]

    def history(self, key: str) -> list[VersionRecord]:
        return list(self._documents.get(key, []))

    # -------------------------------------------------------------- evidence

    def time_bound_for_root(self, root: Digest) -> TimeBound | None:
        """What the public chain can attest about a pegged ledger digest.

        Note the lower bound is ``-inf``: one-way pegging proves only
        "existed before the anchoring block" — the heart of its weakness.
        """
        return self._pegger.time_bound_for(root)

    def evidence_for_root(self, root: Digest) -> NotaryEvidence | None:
        return self.notary.evidence_for(root)

    def effective_anchor_delay(self, record: VersionRecord) -> float | None:
        """Measured gap between a record's creation and its first credible
        anchor — grows without bound as ``malicious_delay`` grows."""
        self.tick()
        bound = self._pegger.time_bound_for(self._accumulator.root())
        if bound is None:
            return None
        return bound.upper - record.created_at

    def verify_version(self, key: str, version: int) -> bool:
        """Existence verification against the global accumulator (real)."""
        history = self._documents.get(key)
        if not history or version >= len(history):
            return False
        record = history[version]
        proof = self._accumulator.get_proof(record.sequence)
        digest = leaf_hash(
            encode({"key": key, "version": version, "data": record.data})
        )
        return proof.verify(digest, self._accumulator.root())
