"""System capability matrix — the data behind Table I.

Each row captures one ledger system along the paper's six comparison
dimensions.  For the four systems implemented in this repository (LedgerDB,
QLDB-sim, ProvenDB-sim, Fabric-sim) the claims are *probed by tests*
(``tests/test_table1_capabilities.py``); SQL Ledger and Factom are
literature-derived rows retained for completeness of the printed table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Level", "SystemCapabilities", "TABLE_I", "render_table_i"]


class Level(Enum):
    LOW = "Low"
    MEDIUM = "Medium"
    HIGH = "High"
    HIGHEST = "Highest"
    LOWEST = "Lowest"


@dataclass(frozen=True)
class SystemCapabilities:
    """One Table-I row."""

    system: str
    trusted_dependency: str
    dasein_support: tuple[str, ...]  # subset of ("what", "when", "who")
    verify_efficiency: Level
    storage_overhead: Level
    verifiable_mutation: bool
    verifiable_n_lineage: bool
    implemented_here: bool  # probed by tests vs literature-derived

    @property
    def dasein_complete(self) -> bool:
        return set(self.dasein_support) == {"what", "when", "who"}


TABLE_I: tuple[SystemCapabilities, ...] = (
    SystemCapabilities(
        system="LedgerDB",
        trusted_dependency="TSA(non-LSP)",
        dasein_support=("what", "when", "who"),
        verify_efficiency=Level.HIGH,
        storage_overhead=Level.LOWEST,
        verifiable_mutation=True,
        verifiable_n_lineage=True,
        implemented_here=True,
    ),
    SystemCapabilities(
        system="SQL Ledger",
        trusted_dependency="LSP & Storage",
        dasein_support=("what", "when", "who"),
        verify_efficiency=Level.HIGH,
        storage_overhead=Level.MEDIUM,
        verifiable_mutation=True,
        verifiable_n_lineage=False,
        implemented_here=False,
    ),
    SystemCapabilities(
        system="QLDB",
        trusted_dependency="LSP",
        dasein_support=("what",),
        verify_efficiency=Level.MEDIUM,
        storage_overhead=Level.MEDIUM,
        verifiable_mutation=False,
        verifiable_n_lineage=False,
        implemented_here=True,
    ),
    SystemCapabilities(
        system="ProvenDB",
        trusted_dependency="LSP & Bitcoin",
        dasein_support=("what", "when"),
        verify_efficiency=Level.MEDIUM,
        storage_overhead=Level.MEDIUM,
        verifiable_mutation=True,
        verifiable_n_lineage=False,
        implemented_here=True,
    ),
    SystemCapabilities(
        system="Hyperledger",
        trusted_dependency="Consortium",
        dasein_support=("what", "who"),
        verify_efficiency=Level.LOW,
        storage_overhead=Level.HIGH,
        verifiable_mutation=False,
        verifiable_n_lineage=False,
        implemented_here=True,
    ),
    SystemCapabilities(
        system="Factom",
        trusted_dependency="Bitcoin",
        # "rigorous what, non-judicial when and unrigorous who" (§II-A):
        # the when is an upper bound only, the who is key-possession without
        # identity — see tests/test_factom.py for the behavioural probes.
        dasein_support=("what", "when", "who"),
        verify_efficiency=Level.MEDIUM,
        storage_overhead=Level.HIGHEST,
        verifiable_mutation=False,
        verifiable_n_lineage=False,
        implemented_here=True,
    ),
)


def render_table_i() -> str:
    """Render the Table-I comparison matrix as aligned text."""
    headers = (
        "System",
        "Trusted Dependency",
        "Dasein Support",
        "Verify-Efficiency",
        "Storage Overhead",
        "Verifiable Mutation",
        "Verifiable N-lineage",
    )
    rows = [headers]
    for cap in TABLE_I:
        rows.append(
            (
                cap.system,
                cap.trusted_dependency,
                "-".join(cap.dasein_support),
                cap.verify_efficiency.value,
                cap.storage_overhead.value,
                "yes" if cap.verifiable_mutation else "no",
                "yes" if cap.verifiable_n_lineage else "no",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
