"""QLDB-like centralized ledger database (simulated comparator).

Amazon QLDB is a closed public-cloud service, so this comparator rebuilds
its *verification-relevant* behaviour from its documented design (§VII,
[5], [20], [41]):

* a document store where each ``(table, key)`` holds a revision history;
* a single global **tim** Merkle accumulator over all revisions — "QLDB
  discloses its transaction verification approach for an entire Merkle tree,
  which limits verification efficiency when data volume grows";
* a GetRevision-style verify: fetch the revision plus its proof via the API
  and recompute the full path against a ledger digest.

Every Merkle/hash operation is executed for real; API round trips and
QLDB's opaque service-side processing are accounted on a
:class:`~repro.sim.costmodel.CostMeter` with the calibrated QLDB profile.
The decisive *shape* this preserves (Table II): one verify costs ~seconds,
and verifying a k-version lineage issues k sequential GetRevision calls, so
lineage verification grows linearly in k — versus LedgerDB's flat ~30 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, leaf_hash
from ..encoding import encode
from ..merkle.proofs import MembershipProof
from ..merkle.tim import TimAccumulator
from ..sim.costmodel import QLDB_PROFILE, CostMeter, CostProfile

__all__ = ["QLDBSimulator", "Revision", "OpResult"]


@dataclass(frozen=True)
class Revision:
    """One committed document revision."""

    table: str
    key: str
    version: int
    data: bytes
    sequence: int  # global position in the ledger accumulator


@dataclass(frozen=True)
class OpResult:
    """A simulated API call's outcome: real result + modelled latency."""

    value: object
    latency_ms: float
    breakdown: dict


class QLDBSimulator:
    """A QLDB-shaped document ledger over a global tim accumulator."""

    def __init__(self, profile: CostProfile = QLDB_PROFILE) -> None:
        self.profile = profile
        self._accumulator = TimAccumulator()
        self._documents: dict[tuple[str, str], list[Revision]] = {}
        self._revision_bytes: dict[int, bytes] = {}

    @property
    def size(self) -> int:
        return self._accumulator.size

    def _revision_payload(self, table: str, key: str, version: int, data: bytes) -> bytes:
        return encode({"table": table, "key": key, "version": version, "data": data})

    # ------------------------------------------------------------------- API

    def insert(self, table: str, key: str, data: bytes) -> OpResult:
        """INSERT / UPDATE: append a new revision of ``(table, key)``."""
        meter = CostMeter(self.profile)
        history = self._documents.setdefault((table, key), [])
        version = len(history)
        payload = self._revision_payload(table, key, version, data)
        sequence = self._accumulator.append(payload)  # real Merkle work
        revision = Revision(table=table, key=key, version=version, data=data, sequence=sequence)
        history.append(revision)
        self._revision_bytes[sequence] = payload
        # QLDB's transactional commit protocol costs two API round trips
        # (start/execute + commit), which dominates the ~65 ms the paper
        # reports for a 32 KB insert.
        meter.api_rtts(2).disk_writes(1).transfer_kb(len(data) / 1024.0)
        meter.hashes(1)  # leaf hash is charged; interior updates amortised
        return OpResult(value=revision, latency_ms=meter.elapsed_ms, breakdown=meter.breakdown())

    def retrieve(self, table: str, key: str, version: int | None = None) -> OpResult:
        """SELECT: fetch one revision (latest by default)."""
        meter = CostMeter(self.profile)
        history = self._documents.get((table, key))
        if not history:
            raise KeyError(f"no document {table}/{key}")
        revision = history[-1 if version is None else version]
        meter.api_rtts(1).disk_reads(1).transfer_kb(len(revision.data) / 1024.0)
        return OpResult(value=revision, latency_ms=meter.elapsed_ms, breakdown=meter.breakdown())

    def get_revision(self, table: str, key: str, version: int) -> OpResult:
        """GetRevision: fetch a revision *with* its full-tree proof and verify.

        This is the QLDB verification path: GetDigest + GetRevision API
        calls, then a client-side recomputation of the whole Merkle path
        against the ledger digest.
        """
        meter = CostMeter(self.profile)
        history = self._documents.get((table, key))
        if not history or version >= len(history):
            raise KeyError(f"no revision {version} of {table}/{key}")
        revision = history[version]
        # GetDigest + GetRevision round trips, plus the opaque service-side
        # proof assembly the paper's 1.56 s is dominated by.
        meter.api_rtts(2).service_calls(1).disk_reads(1)
        meter.transfer_kb(len(revision.data) / 1024.0)
        proof = self._accumulator.get_proof(revision.sequence)  # real proof
        digest = leaf_hash(self._revision_bytes[revision.sequence])
        ok = proof.verify(digest, self._accumulator.root())  # real verification
        meter.hashes(len(proof.path) + len(proof.peaks_left) + len(proof.peaks_right) + 1)
        if not ok:
            raise AssertionError("QLDB simulator produced an invalid proof")
        return OpResult(
            value=(revision, proof), latency_ms=meter.elapsed_ms, breakdown=meter.breakdown()
        )

    def verify_lineage(self, table: str, key: str) -> OpResult:
        """Verify every version of a key — k sequential GetRevision calls.

        QLDB has no native lineage primitive (Table I: no verifiable
        N-lineage); the §VI-D workload realises lineage with a
        [key, data, prehash, sig] schema and must verify each version
        separately, which is exactly what this method reproduces.
        """
        history = self._documents.get((table, key))
        if not history:
            raise KeyError(f"no document {table}/{key}")
        total_ms = 0.0
        merged: dict[str, float] = {}
        revisions = []
        for version in range(len(history)):
            result = self.get_revision(table, key, version)
            revisions.append(result.value)
            total_ms += result.latency_ms
            for op, ms in result.breakdown.items():
                merged[op] = merged.get(op, 0.0) + ms
        return OpResult(value=revisions, latency_ms=total_ms, breakdown=merged)

    # --------------------------------------------------------------- digest

    def ledger_digest(self) -> Digest:
        return self._accumulator.root()

    def get_proof(self, sequence: int) -> MembershipProof:
        return self._accumulator.get_proof(sequence)
