"""Hyperledger-Fabric-like permissioned blockchain (simulated comparator).

The §VI-D comparison runs Fabric 2.2 with a Kafka ordering service
(3 ZooKeeper, 4 Kafka, 5 endorsers, 3 orderers).  Reproducing that needs a
multi-node deployment, so this module simulates Fabric's *pipeline* at the
level that determines the paper's observations:

* **endorse** — the client collects real ECDSA endorsements from every
  endorsing peer over the proposal digest (signature count and verification
  work are real);
* **order** — transactions queue into batches cut by size or timeout; the
  batching delay dominates commit latency (~1.1 s modelled, matching the
  ~1.2 s the paper reports) and the cut rate caps throughput at the
  ~2K TPS order of magnitude;
* **validate + commit** — committing peers verify the endorsement set
  (real signature verifications) and apply writes to the world state, whose
  per-key history provides the lineage workload's data.

Reads ("GetState" in a chaincode) do not pass ordering: they cost an
endorsement round plus state I/O — which is why Fabric's lineage *read*
latency is nearly flat in the clue length (Figure 10(d)) while LedgerDB
pays one random I/O per entry and converges to Fabric beyond ~50 entries
(Figure 10(c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import sha256
from ..crypto.keys import KeyPair
from ..encoding import encode
from ..sim.costmodel import FABRIC_PROFILE, CostMeter, CostProfile

__all__ = ["FabricNetwork", "FabricOpResult", "Endorsement"]


@dataclass(frozen=True)
class Endorsement:
    """One peer's signature over a proposal digest."""

    peer_id: str
    digest: bytes
    signature: object  # crypto.Signature


@dataclass(frozen=True)
class FabricOpResult:
    """Outcome of one simulated Fabric operation."""

    value: object
    latency_ms: float
    breakdown: dict


@dataclass
class _StateEntry:
    value: bytes
    version: int
    endorsements: list[Endorsement] = field(default_factory=list)


class FabricNetwork:
    """A single-channel Fabric network simulator."""

    def __init__(
        self,
        endorsers: int = 5,
        orderers: int = 3,
        kafka_brokers: int = 4,
        zookeepers: int = 3,
        batch_timeout_ms: float = 1000.0,
        max_batch_size: int = 500,
        profile: CostProfile = FABRIC_PROFILE,
    ) -> None:
        self.profile = profile
        self.batch_timeout_ms = batch_timeout_ms
        self.max_batch_size = max_batch_size
        self.orderers = orderers
        self.kafka_brokers = kafka_brokers
        self.zookeepers = zookeepers
        self._endorsers = [
            (f"peer{i}", KeyPair.generate(seed=f"fabric-endorser-{i}"))
            for i in range(endorsers)
        ]
        self._state: dict[str, list[_StateEntry]] = {}
        self._block_height = 0
        self._tx_count = 0
        self._pending_batch = 0

    @property
    def endorser_count(self) -> int:
        return len(self._endorsers)

    @property
    def tx_count(self) -> int:
        return self._tx_count

    # -------------------------------------------------------------- pipeline

    def _endorse(self, proposal: bytes, meter: CostMeter) -> list[Endorsement]:
        digest = sha256(proposal)
        endorsements = []
        for peer_id, keypair in self._endorsers:
            endorsements.append(
                Endorsement(peer_id=peer_id, digest=digest, signature=keypair.sign(digest))
            )
        # One parallel round trip to all endorsers; each endorser signs.
        meter.net_rtts(1).signs(len(self._endorsers))
        return endorsements

    def _validate(self, endorsements: list[Endorsement], meter: CostMeter) -> bool:
        keys = {peer_id: kp.public for peer_id, kp in self._endorsers}
        ok = all(
            keys[e.peer_id].verify(e.digest, e.signature) for e in endorsements
        )
        meter.verifies(len(endorsements))
        return ok

    def invoke(self, key: str, value: bytes) -> FabricOpResult:
        """Submit a chaincode write: endorse -> order -> validate -> commit."""
        meter = CostMeter(self.profile)
        proposal = encode({"key": key, "value": value, "seq": self._tx_count})
        endorsements = self._endorse(proposal, meter)
        # Ordering: Kafka consensus + batch cut.  Half the cut interval is
        # the expected queueing delay of a uniformly-arriving transaction;
        # pipeline hand-offs add peer round trips.
        meter.consensus_batches(1).net_rtts(2)
        self._pending_batch += 1
        if self._pending_batch >= self.max_batch_size:
            self._pending_batch = 0
            self._block_height += 1
        if not self._validate(endorsements, meter):
            raise AssertionError("endorsement validation failed in simulator")
        meter.disk_writes(1).transfer_kb(len(value) / 1024.0)
        history = self._state.setdefault(key, [])
        entry = _StateEntry(value=value, version=len(history), endorsements=endorsements)
        history.append(entry)
        self._tx_count += 1
        return FabricOpResult(value=entry, latency_ms=meter.elapsed_ms, breakdown=meter.breakdown())

    # ------------------------------------------------------------------ reads

    def get_state(self, key: str) -> FabricOpResult:
        """Chaincode GetState: endorsement round + one state read + implicit
        verification (gathering/checking the stored consensus signatures)."""
        meter = CostMeter(self.profile)
        history = self._state.get(key)
        if not history:
            raise KeyError(f"no state for key {key!r}")
        entry = history[-1]
        meter.net_rtts(1).service_calls(1).disk_reads(1)
        if not self._validate(entry.endorsements, meter):
            raise AssertionError("stored endorsements failed verification")
        meter.transfer_kb(len(entry.value) / 1024.0)
        return FabricOpResult(value=entry, latency_ms=meter.elapsed_ms, breakdown=meter.breakdown())

    def verify_history(self, key: str) -> FabricOpResult:
        """Lineage verification: read the key's full history in one query.

        Fabric's state database serves the whole history with "nearly a
        single random I/O for the entire clue" (§VI-D); per-entry work is
        only the endorsement re-verification of the head plus hashing each
        entry — which keeps the latency curve nearly flat in the entry count.
        """
        meter = CostMeter(self.profile)
        history = self._state.get(key)
        if not history:
            raise KeyError(f"no state for key {key!r}")
        meter.net_rtts(1).service_calls(1).disk_reads(1)
        # Implicit verification: check the endorsement set once, then hash
        # every historical entry while streaming it back.
        if not self._validate(history[-1].endorsements, meter):
            raise AssertionError("stored endorsements failed verification")
        total_kb = 0.0
        for entry in history:
            sha256(entry.value)  # real per-entry hashing
            total_kb += len(entry.value) / 1024.0
        meter.hashes(len(history)).transfer_kb(total_kb)
        return FabricOpResult(
            value=list(history), latency_ms=meter.elapsed_ms, breakdown=meter.breakdown()
        )

    # ------------------------------------------------------------ throughput

    def estimate_write_tps(self, ledger_bytes: int = 0) -> float:
        """Sustained commit throughput from the ordering parameters.

        The batch cut rate caps throughput at
        ``max_batch_size / batch_timeout`` per orderer pipeline; validation
        (endorsement signature checks) and state-DB growth erode it mildly —
        reproducing the paper's 2386 -> 1978 TPS decline as volume grows from
        2^5 B to 2^30 B.
        """
        cut_rate = self.max_batch_size / (self.batch_timeout_ms / 1000.0)
        validate_cost_s = self.endorser_count * self.profile.verify_sig_us / 1e6
        validate_rate = 1.35 / validate_cost_s  # committers validate in parallel
        base = min(cut_rate * 4.8, validate_rate)  # pipelined batches in flight
        # State-DB growth erodes commit throughput slightly (~0.7%/doubling:
        # the paper's 2386 -> 1978 TPS over 2^5 B -> 2^30 B).
        if ledger_bytes > 32:
            import math

            degradation = 1.0 - 0.007 * math.log2(max(ledger_bytes / 32, 1))
        else:
            degradation = 1.0
        return base * max(degradation, 0.5)
