"""Factom-like notarization blockchain (simulated comparator, Table I).

Factom is "a typical permissionless blockchain broadly used for electronic
data notarization.  It satisfies rigorous what, non-judicial when and
unrigorous who (with anonymous mechanism)" (§II-A), at the *Highest* storage
overhead of Table I.

Modelled structure (after the Factom whitepaper [30]):

* applications write entries into per-application **chains**;
* every block interval, each chain's new entries form an **entry block**
  and the entry-block Merkle roots form a **directory block**;
* directory-block key Merkle roots are **anchored one-way into Bitcoin** —
  which is exactly why its *when* is only an upper bound (and why the §III-B
  amplification analysis applies to the anchoring operator).

The "Highest storage" rating is structural: every layer (entries, entry
blocks, directory blocks, anchors) is retained forever; :meth:`storage_units`
measures it against the journal count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, leaf_hash, sha256
from ..crypto.keys import KeyPair, PublicKey
from ..encoding import encode
from ..merkle.bim import merkle_path_padded, merkle_root_padded
from ..merkle.proofs import PathStep, fold_path
from ..timeauth.clock import Clock
from ..timeauth.pegging import NotaryEvidence, OneWayPegger, PublicChainNotary, TimeBound

__all__ = ["FactomEntry", "EntryProof", "FactomSimulator"]


@dataclass(frozen=True)
class FactomEntry:
    """One notarized record in a chain.

    ``signature`` is optional and self-asserted (any key pair, no CA): the
    "anonymous mechanism" that makes Factom's *who* unrigorous — the
    signature proves key possession, not a real-world identity.
    """

    chain_id: str
    sequence: int
    content: bytes
    public_key: PublicKey | None = None
    signature: Signature | None = None

    def entry_digest(self) -> Digest:
        return leaf_hash(
            encode(
                {
                    "chain_id": self.chain_id,
                    "sequence": self.sequence,
                    "content": self.content,
                    "public_key": self.public_key.to_bytes() if self.public_key else b"",
                }
            )
        )

    def verify_signature(self) -> bool:
        """Key-possession check only — no identity binding (unrigorous who)."""
        if self.public_key is None or self.signature is None:
            return False
        return self.public_key.verify(sha256(self.content), self.signature)


@dataclass(frozen=True)
class EntryProof:
    """Entry -> entry block -> directory block (-> Bitcoin anchor)."""

    entry_path: list[PathStep]  # within the entry block
    entry_block_root: Digest
    directory_path: list[PathStep]  # within the directory block
    directory_root: Digest
    directory_height: int
    anchor: NotaryEvidence | None  # Bitcoin inclusion, once mined


@dataclass
class _DirectoryBlock:
    height: int
    time: float
    root: Digest
    entry_block_roots: list[Digest]
    entry_blocks: dict[str, list[FactomEntry]]


class FactomSimulator:
    """The chains / entry-blocks / directory-blocks pipeline."""

    def __init__(
        self,
        clock: Clock,
        notary: PublicChainNotary | None = None,
        block_interval: float = 600.0,
    ) -> None:
        self.clock = clock
        self.notary = notary or PublicChainNotary(clock, block_interval=600.0)
        self._pegger = OneWayPegger(self.notary)
        self.block_interval = block_interval
        self._pending: dict[str, list[FactomEntry]] = {}
        self._directory: list[_DirectoryBlock] = []
        self._next_block_time = clock.now() + block_interval
        self._entry_index: dict[Digest, tuple[int, str, int]] = {}

    # ------------------------------------------------------------------- API

    def add_entry(
        self, chain_id: str, content: bytes, keypair: KeyPair | None = None
    ) -> FactomEntry:
        """Append a (optionally self-signed) entry to a chain."""
        self.tick()
        chain = self._pending.setdefault(chain_id, [])
        sequence = self._chain_length(chain_id) + len(chain)
        entry = FactomEntry(
            chain_id=chain_id,
            sequence=sequence,
            content=content,
            public_key=keypair.public if keypair else None,
            signature=keypair.sign(sha256(content)) if keypair else None,
        )
        chain.append(entry)
        return entry

    def _chain_length(self, chain_id: str) -> int:
        return sum(
            len(block.entry_blocks.get(chain_id, ())) for block in self._directory
        )

    def tick(self) -> None:
        """Seal due directory blocks and submit their anchors."""
        now = self.clock.now()
        while self._next_block_time <= now:
            block_time = self._next_block_time
            entry_blocks = {cid: entries for cid, entries in self._pending.items() if entries}
            self._pending = {}
            roots = []
            for chain_id in sorted(entry_blocks):
                entries = entry_blocks[chain_id]
                root = merkle_root_padded([e.entry_digest() for e in entries])
                roots.append(root)
            directory_root = merkle_root_padded(roots) if roots else leaf_hash(b"empty")
            block = _DirectoryBlock(
                height=len(self._directory),
                time=block_time,
                root=directory_root,
                entry_block_roots=roots,
                entry_blocks=entry_blocks,
            )
            self._directory.append(block)
            for chain_id in sorted(entry_blocks):
                for position, entry in enumerate(entry_blocks[chain_id]):
                    self._entry_index[entry.entry_digest()] = (block.height, chain_id, position)
            # One-way anchoring of the key Merkle root into Bitcoin.
            self._pegger.peg(directory_root)
            self._next_block_time += self.block_interval
        self.notary.tick()

    @property
    def height(self) -> int:
        return len(self._directory)

    # --------------------------------------------------------------- proving

    def prove_entry(self, entry: FactomEntry) -> EntryProof:
        """Full existence proof with the Bitcoin anchor when available."""
        self.tick()
        located = self._entry_index.get(entry.entry_digest())
        if located is None:
            raise KeyError("entry not yet sealed into a directory block")
        height, chain_id, position = located
        block = self._directory[height]
        entries = block.entry_blocks[chain_id]
        digests = [e.entry_digest() for e in entries]
        entry_path = merkle_path_padded(digests, position)
        entry_block_root = merkle_root_padded(digests)
        root_index = block.entry_block_roots.index(entry_block_root)
        directory_path = merkle_path_padded(block.entry_block_roots, root_index)
        return EntryProof(
            entry_path=entry_path,
            entry_block_root=entry_block_root,
            directory_path=directory_path,
            directory_root=block.root,
            directory_height=height,
            anchor=self.notary.evidence_for(block.root),
        )

    @staticmethod
    def verify_entry(entry: FactomEntry, proof: EntryProof) -> bool:
        """Rigorous *what*: fold entry -> entry block -> directory root."""
        entry_block_root = fold_path(entry.entry_digest(), proof.entry_path)
        if entry_block_root != proof.entry_block_root:
            return False
        return fold_path(entry_block_root, proof.directory_path) == proof.directory_root

    @staticmethod
    def time_bound(proof: EntryProof) -> TimeBound | None:
        """Non-judicial *when*: an upper bound only (one-way anchoring)."""
        if proof.anchor is None:
            return None
        return TimeBound(lower=float("-inf"), upper=proof.anchor.block_time)

    # --------------------------------------------------------------- storage

    def storage_units(self) -> dict[str, int]:
        """Retained objects per layer — the 'Highest' overhead of Table I."""
        entries = sum(
            len(block_entries)
            for block in self._directory
            for block_entries in block.entry_blocks.values()
        )
        entry_blocks = sum(len(block.entry_blocks) for block in self._directory)
        return {
            "entries": entries,
            "entry_blocks": entry_blocks,
            "directory_blocks": len(self._directory),
            "anchors": self.notary.height,
            "total": entries + entry_blocks + len(self._directory) + self.notary.height,
        }
