"""Comparator systems: QLDB-like, Fabric-like, ProvenDB-like simulators."""

from .capabilities import TABLE_I, Level, SystemCapabilities, render_table_i
from .fabric import Endorsement, FabricNetwork, FabricOpResult
from .factom import EntryProof, FactomEntry, FactomSimulator
from .provendb import ProvenDBSimulator, VersionRecord
from .qldb import OpResult, QLDBSimulator, Revision

__all__ = [
    "TABLE_I",
    "Level",
    "SystemCapabilities",
    "render_table_i",
    "Endorsement",
    "FabricNetwork",
    "FabricOpResult",
    "EntryProof",
    "FactomEntry",
    "FactomSimulator",
    "ProvenDBSimulator",
    "VersionRecord",
    "OpResult",
    "QLDBSimulator",
    "Revision",
]
