"""Sharded multi-ledger scale-out under one composite root (DESIGN.md §15).

The single-writer fsync ceiling caps a lone :class:`~repro.core.ledger.Ledger`
at one group commit at a time.  A :class:`ShardedLedger` breaks it by
hash-partitioning appends across ``N`` full per-shard ledgers — each with its
own journal stream, fam accumulator, CM-Tree, and (via
:class:`~repro.shard.service.ShardedLedgerService`) its own group-commit
writer loop — while folding the ``N`` shard roots under **one composite
commitment**, so a verifier still trusts a single root for the whole
deployment.

Layering (the T-Ledger pattern of ``timeauth/tledger.py``, not new crypto):

* the **shard map** is a tiny :class:`~repro.merkle.shrubs.ShrubsAccumulator`
  whose leaf ``k`` is shard ``k``'s live fam root; its bagged root is the
  deployment's :meth:`~ShardedLedger.composite_root`;
* a **cross-shard proof** (:class:`ShardProof`) composes the shard-level
  full-chain :class:`~repro.merkle.fam.FamProof` with the shard→root
  :class:`~repro.merkle.proofs.MembershipProof` link — fold the journal to
  its shard's live root, then fold that root to the composite commitment;
* all shards share one **LSP keypair**, one :class:`MemberRegistry`, one
  clock, and one deployment URI, so receipts and request admission are
  byte-compatible with the unsharded system (a remote client pins the same
  LSP key whichever shard it talks to).

Routing is deterministic and public: a request routes by its first clue when
it has one, else by its ``client_id`` (``shard_of_key``).  The lineage
contract follows the routing key — all journals whose *routing* key is ``K``
share a shard, so clue proofs for routing clues stay single-shard.

Global addressing: shard-local jsns are interleaved into a global sequence
number ``gsn = local_jsn * num_shards + shard_index`` (a stateless
bijection).  Signed artifacts — journals, receipts — keep their shard-local
``jsn`` untouched; the gsn exists only on the facade's read surface.

Trust model: tampering *any* shard changes that shard's fam root, which
changes the shard-map leaf, which changes the composite root — so one
trusted composite digest detects tampering anywhere in the deployment, and
``shards=1`` degenerates to exactly the unsharded ledger (byte-identical
roots and receipts) plus a one-leaf shard map.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable

from ..core.errors import LedgerError, UsageError
from ..core.journal import ClientRequest, Journal
from ..core.ledger import CONFIG_FILE, Ledger, LedgerConfig, LedgerView
from ..core.members import MemberRegistry
from ..core.receipt import Receipt
from ..core.snapshot import load_config_file, write_config_file
from ..crypto.hashing import Digest
from ..crypto.keys import KeyPair
from ..encoding import decode, encode
from ..merkle.cmtree import ClueProof
from ..merkle.fam import FamAccumulator, FamProof
from ..merkle.proofs import MembershipProof
from ..merkle.shrubs import ShrubsAccumulator
from ..timeauth.clock import Clock, SimClock
from ..transparency.sth import COMPOSITE_EPOCH, SOLO_SHARD, SignedTreeHead

__all__ = [
    "ShardProof",
    "ShardClueProof",
    "ShardedAuditReport",
    "ShardedLedger",
    "shard_of_key",
]

#: ``data_dir`` subdirectory name for shard ``k``.
SHARD_DIR_FORMAT = "shard-{:02d}"


def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic, public shard routing: stable hash of the key.

    Stable across processes and Python versions (unlike ``hash()``), so any
    party — client, server, auditor — derives the same placement.
    """
    if num_shards < 1:
        raise UsageError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.sha256(b"shard-route:" + key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def _route_key(clues: tuple[str, ...], client_id: str) -> str:
    return clues[0] if clues else client_id


def _shard_map(roots: list[Digest]) -> ShrubsAccumulator:
    accumulator = ShrubsAccumulator()
    accumulator.extend(list(roots))
    return accumulator


@dataclass(frozen=True)
class ShardProof:
    """Cross-shard existence proof: journal → shard root → composite root.

    ``fam`` is the *full-chain* per-shard proof (its link chain reaches the
    shard's live fam root); ``link`` proves that root sits at leaf
    ``shard_index`` of the ``num_shards``-leaf shard map whose bagged root
    is the deployment's composite commitment.
    """

    shard_index: int
    num_shards: int
    fam: FamProof
    link: MembershipProof

    @property
    def jsn(self) -> int:
        """The *global* jsn this proof speaks for."""
        return self.fam.jsn * self.num_shards + self.shard_index

    def shard_root(self, leaf_digest: Digest) -> Digest | None:
        """The shard fam root implied by folding ``leaf_digest`` up ``fam``."""
        return FamAccumulator.fold_full(leaf_digest, self.fam)

    def verify(self, leaf_digest: Digest, composite_root: Digest) -> bool:
        """Check the composed proof against a trusted composite root.

        Never raises: any malformed layer — bad fam fold, link addressing a
        different shard, wrong shard count — reads as False.
        """
        if not 0 <= self.shard_index < self.num_shards:
            return False
        if self.link.leaf_index != self.shard_index:
            return False
        if self.link.tree_size != self.num_shards:
            return False
        implied = self.shard_root(leaf_digest)
        if implied is None:
            return False
        return self.link.verify(implied, composite_root)

    def to_bytes(self) -> bytes:
        return encode(
            {
                "shard_index": self.shard_index,
                "num_shards": self.num_shards,
                "fam": self.fam.to_bytes(),
                "link": self.link.to_bytes(),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardProof":
        obj = decode(data)
        return cls(
            shard_index=int(obj["shard_index"]),
            num_shards=int(obj["num_shards"]),
            fam=FamProof.from_bytes(bytes(obj["fam"])),
            link=MembershipProof.from_bytes(bytes(obj["link"])),
        )


@dataclass(frozen=True)
class ShardClueProof:
    """Cross-shard clue lineage proof: CM-Tree proof + shard→root link.

    ``shard_state_root`` is the *claimed* per-shard CM-Tree1 root the clue
    proof verifies against; the claim is authenticated by ``link`` folding
    it into the trusted composite state root, so a lying shard root fails
    the link, not the caller.
    """

    shard_index: int
    num_shards: int
    clue_proof: ClueProof
    shard_state_root: Digest
    link: MembershipProof

    def verify(self, journal_digests: dict[int, Digest], composite_state_root: Digest) -> bool:
        """Two-layer check: lineage within the shard, shard within the map."""
        if self.link.leaf_index != self.shard_index:
            return False
        if self.link.tree_size != self.num_shards:
            return False
        if not self.link.verify(self.shard_state_root, composite_state_root):
            return False
        return self.clue_proof.verify(journal_digests, self.shard_state_root)


@dataclass(frozen=True)
class ShardedAuditReport:
    """Per-shard Dasein audits plus the deployment-level conjunction."""

    passed: bool
    reports: list[Any] = field(default_factory=list)  # AuditReport per shard

    def __bool__(self) -> bool:
        return self.passed

    @property
    def failed_shards(self) -> list[int]:
        return [k for k, report in enumerate(self.reports) if not report.passed]

    @property
    def journals_replayed(self) -> int:
        return sum(report.journals_replayed for report in self.reports)

    @property
    def blocks_verified(self) -> int:
        return sum(report.blocks_verified for report in self.reports)

    @property
    def time_journals_verified(self) -> int:
        return sum(report.time_journals_verified for report in self.reports)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "num_shards": len(self.reports),
            "failed_shards": self.failed_shards,
            "shards": [report.to_dict() for report in self.reports],
        }


class ShardedLedger:
    """N hash-partitioned :class:`Ledger` shards under one composite root.

    Mirrors the single-ledger read/append surface closely enough that
    :class:`repro.api.LedgerSession` binds to it directly; jsn-addressed
    reads take *global* jsns (see module docstring).  Appends route by
    clue/owner; for concurrent workloads front each shard with its own
    writer loop via :class:`~repro.shard.service.ShardedLedgerService`.
    """

    def __init__(
        self,
        config: LedgerConfig | None = None,
        clock: Clock | None = None,
        registry: MemberRegistry | None = None,
        lsp_keypair: KeyPair | None = None,
        stream_factory: Any = None,
    ) -> None:
        self.config = config or LedgerConfig(shards=2)
        if self.config.shards < 1:
            raise UsageError(f"shards must be >= 1, got {self.config.shards}")
        self.num_shards = self.config.shards
        self.clock = clock or SimClock()
        self.registry = registry or MemberRegistry()
        self._lsp_keypair = lsp_keypair or KeyPair.generate(seed=f"lsp:{self.config.uri}")
        base = Path(self.config.data_dir) if self.config.data_dir else None
        if base is not None:
            base.mkdir(parents=True, exist_ok=True)
            write_config_file(base / CONFIG_FILE, self.config)
        self._shards: list[Ledger] = []
        for index in range(self.num_shards):
            shard_dir = str(base / SHARD_DIR_FORMAT.format(index)) if base else None
            shard_config = replace(self.config, shards=1, data_dir=shard_dir)
            # stream_factory(shard_index, shard_dir) -> Stream lets callers
            # substitute each shard's journal stream (fault injection,
            # device-latency modelling); None keeps Ledger's own default.
            stream = None
            if stream_factory is not None:
                if shard_dir is not None:
                    Path(shard_dir).mkdir(parents=True, exist_ok=True)
                stream = stream_factory(index, shard_dir)
            shard = Ledger(
                config=shard_config,
                clock=self.clock,
                registry=self.registry,
                lsp_keypair=self._lsp_keypair,
                journal_stream=stream,
            )
            # Shards share the deployment uri and LSP key; the stamped index
            # is what keeps sibling shards' signed tree heads from reading
            # as forks of one stream (DESIGN.md §16).
            shard.sth_shard_index = index
            self._shards.append(shard)

    @classmethod
    def open(
        cls,
        data_dir: str,
        registry: MemberRegistry,
        lsp_keypair: KeyPair,
        clock: Clock | None = None,
        force_rebuild: bool = False,
    ) -> "ShardedLedger":
        """Reopen a persistent sharded deployment from its ``data_dir``.

        Each shard reopens through :meth:`Ledger.open` (snapshot fast path,
        full-replay fallback) from its own subdirectory.
        """
        base = Path(data_dir)
        config = load_config_file(base / CONFIG_FILE, data_dir=str(base))
        if config.shards < 2:
            raise UsageError(
                f"{data_dir} holds a single-shard ledger; reopen it with "
                f"Ledger.open(...)"
            )
        sharded = cls.__new__(cls)
        sharded.config = config
        sharded.num_shards = config.shards
        sharded.clock = clock or SimClock()
        sharded.registry = registry
        sharded._lsp_keypair = lsp_keypair
        sharded._shards = []
        for index in range(config.shards):
            shard = Ledger.open(
                str(base / SHARD_DIR_FORMAT.format(index)),
                registry,
                lsp_keypair,
                clock=sharded.clock,
                force_rebuild=force_rebuild,
            )
            shard.sth_shard_index = index
            sharded._shards.append(shard)
        return sharded

    # -------------------------------------------------------------- routing

    @property
    def shards(self) -> list[Ledger]:
        """The per-shard ledgers, by shard index (treat as read-only)."""
        return list(self._shards)

    def shard_of_key(self, key: str) -> int:
        return shard_of_key(key, self.num_shards)

    def shard_of_request(self, request: ClientRequest) -> int:
        return self.shard_of_key(_route_key(request.clues, request.client_id))

    def shard_of_journal(self, journal: Journal) -> int:
        return self.shard_of_key(_route_key(journal.clues, journal.client_id))

    def global_jsn(self, shard_index: int, local_jsn: int) -> int:
        """Interleave a shard-local jsn into the global sequence."""
        if not 0 <= shard_index < self.num_shards:
            raise UsageError(f"shard {shard_index} out of range 0..{self.num_shards - 1}")
        return local_jsn * self.num_shards + shard_index

    def locate(self, gsn: int) -> tuple[int, int]:
        """Global jsn → ``(shard_index, local_jsn)`` (inverse of global_jsn)."""
        if gsn < 0:
            raise UsageError(f"global jsn must be >= 0, got {gsn}")
        return gsn % self.num_shards, gsn // self.num_shards

    # -------------------------------------------------------------- appends

    def append(self, request: ClientRequest) -> Receipt:
        """Route one request to its shard; returns the shard's LSP receipt.

        The receipt's ``jsn`` is shard-local (it is a signed field);
        recover the global address with
        ``global_jsn(shard_of_request(request), receipt.jsn)``.
        """
        return self._shards[self.shard_of_request(request)].append(request)

    def append_batch(
        self, requests: list[ClientRequest], max_workers: int | None = None
    ) -> list[Receipt]:
        """Partition a batch by shard and commit each group atomically.

        Atomicity is per shard group (each group is one
        :meth:`Ledger.append_batch`): a bad request rejects its own shard's
        group with that shard untouched, but groups already committed on
        other shards stay committed.
        """
        groups: dict[int, list[int]] = {}
        for position, request in enumerate(requests):
            groups.setdefault(self.shard_of_request(request), []).append(position)
        receipts: list[Receipt | None] = [None] * len(requests)
        for shard_index in sorted(groups):
            positions = groups[shard_index]
            shard_receipts = self._shards[shard_index].append_batch(
                [requests[position] for position in positions], max_workers=max_workers
            )
            for position, receipt in zip(positions, shard_receipts):
                receipts[position] = receipt
        return receipts  # type: ignore[return-value]

    def admit(self, request: ClientRequest) -> None:
        """Admission-check a request against its routed shard."""
        self._shards[self.shard_of_request(request)].admit(request)

    def commit_block(self) -> list:
        return [shard.commit_block() for shard in self._shards]

    # ---------------------------------------------------------------- reads

    def __len__(self) -> int:
        return self.size

    @property
    def size(self) -> int:
        """Total journals across all shards (genesis journals included)."""
        return sum(shard.size for shard in self._shards)

    @property
    def latest_receipt(self) -> Receipt | None:
        """None: no single shard receipt speaks for the whole deployment.

        Per-shard receipts remain available via ``shards[k].latest_receipt``;
        deployment-level trust lives in :meth:`composite_root`.
        """
        return None

    def receipt_for(self, gsn: int) -> Receipt | None:
        shard_index, local_jsn = self.locate(gsn)
        return self._shards[shard_index].receipt_for(local_jsn)

    def get_journal(self, gsn: int) -> Journal:
        shard_index, local_jsn = self.locate(gsn)
        return self._shards[shard_index].get_journal(local_jsn)

    def retained_hash(self, gsn: int) -> Digest:
        shard_index, local_jsn = self.locate(gsn)
        return self._shards[shard_index].retained_hash(local_jsn)

    def list_tx(self, clue: str) -> list[int]:
        """Global jsns of every journal carrying ``clue``, across all shards.

        A clue used as a *secondary* clue may appear on shards other than
        its routing shard, so the lookup sweeps every shard's cSL index.
        """
        out: list[int] = []
        for shard_index, shard in enumerate(self._shards):
            out.extend(self.global_jsn(shard_index, jsn) for jsn in shard.list_tx(clue))
        return sorted(out)

    # ---------------------------------------------------------------- roots

    def shard_roots(self) -> list[Digest]:
        """Live fam root per shard — the shard map's leaves."""
        return [shard.current_root() for shard in self._shards]

    def composite_root(self) -> Digest:
        """The one trusted digest covering every shard's journal history."""
        return _shard_map(self.shard_roots()).root()

    def current_root(self) -> Digest:
        return self.composite_root()

    def shard_state_roots(self) -> list[Digest]:
        return [shard.state_root() for shard in self._shards]

    def state_root(self) -> Digest:
        """Composite CM-Tree1 commitment (world state across shards)."""
        return _shard_map(self.shard_state_roots()).root()

    def shard_link(self, shard_index: int, roots: list[Digest] | None = None) -> MembershipProof:
        """Inclusion proof of shard ``shard_index``'s root in the shard map."""
        if not 0 <= shard_index < self.num_shards:
            raise UsageError(f"shard {shard_index} out of range 0..{self.num_shards - 1}")
        return _shard_map(roots if roots is not None else self.shard_roots()).prove(shard_index)

    # --------------------------------------------------------------- proofs

    def get_proof(self, gsn: int, anchored: bool = True) -> ShardProof:
        """Cross-shard existence proof for the journal at global jsn ``gsn``.

        ``anchored`` is accepted for signature compatibility but the fam leg
        is always full-chain: the shard→root link commits the shard's *live*
        root, so the journal must fold all the way up to it.
        """
        return self.get_proofs([gsn], anchored=anchored)[0]

    def get_proofs(self, gsns: list[int], anchored: bool = True) -> list[ShardProof]:
        """Bulk cross-shard proofs sharing one shard-map snapshot per group."""
        del anchored  # see get_proof: the composed form needs the full chain
        groups: dict[int, list[tuple[int, int]]] = {}
        for position, gsn in enumerate(gsns):
            shard_index, local_jsn = self.locate(gsn)
            groups.setdefault(shard_index, []).append((position, local_jsn))
        proofs: list[ShardProof | None] = [None] * len(gsns)
        for shard_index, members in groups.items():
            fam_proofs, roots = self._consistent_shard_proofs(
                shard_index, [local for _, local in members]
            )
            link = self.shard_link(shard_index, roots)
            for (position, _), fam_proof in zip(members, fam_proofs):
                proofs[position] = ShardProof(
                    shard_index=shard_index,
                    num_shards=self.num_shards,
                    fam=fam_proof,
                    link=link,
                )
        return proofs  # type: ignore[return-value]

    def _consistent_shard_proofs(
        self, shard_index: int, local_jsns: list[int]
    ) -> tuple[list[FamProof], list[Digest]]:
        """Fam proofs plus a shard-root snapshot they actually fold to.

        Reads race concurrent shard writers, so the snapshot is validated:
        every proof must imply the root recorded for its shard, else the
        bundle is rebuilt (a torn bundle would verify as False, never as a
        forgery — this retry is about availability, not soundness).
        """
        shard = self._shards[shard_index]
        for _attempt in range(4):
            fam_proofs = shard.get_proofs(local_jsns, anchored=False)
            roots = self.shard_roots()
            implied = [
                FamAccumulator.fold_full(shard.retained_hash(jsn), proof)
                for jsn, proof in zip(local_jsns, fam_proofs)
            ]
            if all(root == roots[shard_index] for root in implied):
                return fam_proofs, roots
        raise LedgerError(
            f"shard {shard_index} kept advancing mid-proof; quiesce appends "
            f"or retry"
        )

    def proof_for_journal(self, journal: Journal, anchored: bool = True) -> ShardProof:
        """Cross-shard proof for a presented journal (route by its content)."""
        shard_index = self.shard_of_journal(journal)
        return self.get_proof(self.global_jsn(shard_index, journal.jsn), anchored=anchored)

    def verify_journal(self, journal: Journal, proof: ShardProof | FamProof | None = None) -> bool:
        """Deployment-level *what* verification of a presented journal."""
        shard_index = self.shard_of_journal(journal)
        if proof is None:
            return self._shards[shard_index].verify_journal(journal)
        if isinstance(proof, ShardProof):
            return proof.verify(journal.tx_hash(), self.composite_root())
        return self._shards[shard_index].verify_journal(journal, proof)

    def prove_clue(
        self, clue: str, version_start: int = 0, version_end: int | None = None
    ) -> ShardClueProof:
        """Clue lineage proof on the clue's routing shard, linked to the
        composite state root.  Covers the clue's lineage *as a routing key*
        (see module docstring for the shard-map lineage contract)."""
        shard_index = self.shard_of_key(clue)
        clue_proof = self._shards[shard_index].prove_clue(clue, version_start, version_end)
        state_roots = self.shard_state_roots()
        return ShardClueProof(
            shard_index=shard_index,
            num_shards=self.num_shards,
            clue_proof=clue_proof,
            shard_state_root=state_roots[shard_index],
            link=_shard_map(state_roots).prove(shard_index),
        )

    def verify_clue(self, clue: str, journals: list[Journal]) -> bool:
        """Server-side lineage check on the clue's routing shard."""
        return self._shards[self.shard_of_key(clue)].verify_clue(clue, journals)

    # --------------------------------------------- transparency (DESIGN §16)

    @property
    def lsp_public_key(self):
        return self._lsp_keypair.public

    def get_sth(self) -> SignedTreeHead:
        """The deployment's signed *composite* head.

        Commits the shard map built from the per-shard heads it embeds, so
        any holder can re-fold the composite root
        (:meth:`SignedTreeHead.composite_consistent`) and cross-check each
        embedded entry against independently gossiped per-shard heads.
        """
        heads = [shard.get_sth() for shard in self._shards]
        shard_heads = tuple(
            (index, head.epoch, head.tree_size, head.live_size, head.root)
            for index, head in enumerate(heads)
        )
        # The composite root folds the embedded heads' own roots — one
        # atomic claim, internally consistent even while shards commit.
        composite = _shard_map([head.root for head in heads]).root()
        return SignedTreeHead(
            ledger_uri=self.config.uri,
            epoch=COMPOSITE_EPOCH,
            tree_size=sum(head.tree_size for head in heads),
            live_size=self.num_shards,
            root=composite,
            timestamp=self.clock.now(),
            fractal_height=self.config.fractal_height,
            shard_index=SOLO_SHARD,
            shard_heads=shard_heads,
        ).signed_by(self._lsp_keypair)

    def get_sth_shard(self, shard_index: int) -> SignedTreeHead:
        """A fresh per-shard head (its ``shard_index`` names the stream)."""
        if not 0 <= shard_index < self.num_shards:
            raise UsageError(
                f"shard {shard_index} out of range 0..{self.num_shards - 1}"
            )
        return self._shards[shard_index].get_sth()

    def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        """Stored epoch-close heads across all shards, ordered by
        ``(epoch, shard_index)``."""
        heads: list[SignedTreeHead] = []
        for shard in self._shards:
            heads.extend(shard.get_sth_range(start, end))
        heads.sort(key=lambda head: (head.epoch, head.shard_index))
        return heads

    def get_consistency(self, old: SignedTreeHead, new: SignedTreeHead):
        """Route a per-shard consistency request to the shard it names.

        Composite heads carry no epoch tree — their append-only story is
        the conjunction of their embedded per-shard streams, each provable
        here by shard index.
        """
        if old.is_composite or new.is_composite:
            raise UsageError(
                "composite heads have no epoch tree; request consistency "
                "per shard (the composite head embeds each shard's "
                "coordinates)"
            )
        if old.shard_index != new.shard_index:
            raise UsageError(
                f"heads name different shards ({old.shard_index} vs "
                f"{new.shard_index}); consistency is per stream"
            )
        if not 0 <= old.shard_index < self.num_shards:
            raise UsageError(
                f"shard {old.shard_index} out of range 0..{self.num_shards - 1}"
            )
        return self._shards[old.shard_index].get_consistency(old, new)

    def issue_ack(self, request: ClientRequest, deadline_epochs: int | None = None):
        """Sign a submission ack on the shard the request routes to."""
        shard = self._shards[self.shard_of_request(request)]
        if deadline_epochs is None:
            return shard.issue_ack(request)
        return shard.issue_ack(request, deadline_epochs)

    # ------------------------------------------------------- time anchoring

    def attach_time_ledger(self, tledger) -> None:
        for shard in self._shards:
            shard.attach_time_ledger(tledger)

    def attach_tsa(self, tsa) -> None:
        for shard in self._shards:
            shard.attach_tsa(tsa)

    def anchor_time(self) -> list[int]:
        return [shard.anchor_time() for shard in self._shards]

    def collect_time_evidence(self) -> int:
        return sum(shard.collect_time_evidence() for shard in self._shards)

    # ---------------------------------------------------------------- audit

    def export_view(self) -> LedgerView:
        raise UsageError(
            "a sharded deployment has one view per shard — use "
            "export_views() and audit each (or ShardedLedger.audit())"
        )

    def export_views(self) -> list[LedgerView]:
        """One auditor view per shard, by shard index."""
        return [shard.export_view() for shard in self._shards]

    def audit(
        self,
        *,
        tsa_keys: dict | None = None,
        workers: int = 0,
        checkpoint: str | None = None,
        shard_parallelism: int | None = None,
        **kwargs: Any,
    ) -> ShardedAuditReport:
        """Run the §V Dasein-complete audit over every shard, in parallel.

        Shards audit concurrently on a thread pool (``shard_parallelism``
        threads, default one per shard); ``workers`` additionally enables
        each shard audit's own signature-chunk pool.  ``checkpoint`` must be
        a directory-style path prefix: shard ``k`` checkpoints to
        ``<checkpoint>.shard-k``.
        """
        from concurrent.futures import ThreadPoolExecutor

        from ..audit import dasein_audit

        if checkpoint is not None and not isinstance(checkpoint, str):
            raise UsageError(
                "sharded audits checkpoint per shard: pass a string path "
                "prefix, not a CheckpointStore"
            )
        views = self.export_views()

        def _one(indexed_view: tuple[int, LedgerView]):
            index, view = indexed_view
            shard_checkpoint = f"{checkpoint}.shard-{index}" if checkpoint else None
            return dasein_audit(
                view,
                tsa_keys=tsa_keys,
                workers=workers,
                checkpoint=shard_checkpoint,
                **kwargs,
            )

        pool_size = shard_parallelism or self.num_shards
        with ThreadPoolExecutor(max_workers=max(1, pool_size)) as pool:
            reports = list(pool.map(_one, enumerate(views)))
        return ShardedAuditReport(passed=all(r.passed for r in reports), reports=reports)

    # ------------------------------------------------------------ lifecycle

    def checkpoint(self) -> list[str]:
        """Checkpoint every persistent shard; returns the snapshot paths."""
        return [shard.checkpoint() for shard in self._shards]

    def close(self, checkpoint: bool = True) -> None:
        """Close every shard (checkpointing persistent ones first)."""
        errors: list[Exception] = []
        for shard in self._shards:
            try:
                shard.close(checkpoint=checkpoint)
            except Exception as exc:  # close the rest before re-raising
                errors.append(exc)
        if errors:
            raise errors[0]

    # ------------------------------------------------------------- metrics

    def metrics_snapshot(self) -> dict:
        from .. import obs

        return obs.snapshot()

    def storage_stats(self) -> dict:
        return {
            "shards": [shard.storage_stats() for shard in self._shards],
            "size": self.size,
        }

    def node_store_stats(self) -> dict:
        return {
            f"shard-{index}": shard.node_store_stats()
            for index, shard in enumerate(self._shards)
        }

    def compact_node_store(self) -> list[dict]:
        return [shard.compact_node_store() for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"<ShardedLedger {self.config.uri} shards={self.num_shards} "
            f"size={self.size}>"
        )


def iter_shard_dirs(data_dir: str | Path) -> Iterable[Path]:
    """The existing shard subdirectories of a sharded ``data_dir``, in order."""
    base = Path(data_dir)
    index = 0
    while True:
        shard_dir = base / SHARD_DIR_FORMAT.format(index)
        if not shard_dir.exists():
            return
        yield shard_dir
        index += 1
