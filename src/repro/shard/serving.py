"""Serve a sharded deployment: one listener per shard, one trust root.

:class:`ShardedServerThread` hosts N :class:`~repro.net.server.ServerThread`
instances — shard ``k`` listens on ``port + k`` (or an ephemeral port each
when ``port=0``) and fronts that shard's :class:`~repro.service.LedgerService`
from a shared :class:`~repro.shard.service.ShardedLedgerService`.

Each listener speaks the ordinary single-ledger protocol, so the existing
:class:`~repro.net.client.RemoteLedgerClient` appends to a shard, tracks its
anchors, and verifies its receipts and proofs *unchanged*.  The one addition
is the ``shard_info`` op (every server answers it): the shard's live root,
the deployment's composite root, and the Merkle link between them — so a
client holding proofs from several shards can fold them all up to the single
composite root (DESIGN.md §15).

Routing lives client-side for remote deployments: callers pick a shard with
:meth:`ShardedServerThread.address_for` (the same public hash partition the
in-process facade uses), or just pin one shard per tenant.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import UsageError
from ..net.server import ServerThread
from ..service import ServiceConfig
from .service import ShardedLedgerService
from .sharded import ShardedLedger, shard_of_key

__all__ = ["ShardedServerThread"]


class ShardedServerThread:
    """N per-shard :class:`ServerThread` listeners over one sharded ledger.

    Pass a :class:`ShardedLedger` (a :class:`ShardedLedgerService` is built
    and owned — closed with the servers) or an existing
    :class:`ShardedLedgerService` (shared; caller keeps ownership).
    """

    def __init__(
        self,
        target: ShardedLedger | ShardedLedgerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        service_config: ServiceConfig | None = None,
        **kwargs: Any,
    ) -> None:
        if isinstance(target, ShardedLedgerService):
            if service_config is not None:
                raise UsageError("service_config only applies when passing a ShardedLedger")
            self.service = target
            self._owns_service = False
        elif isinstance(target, ShardedLedger):
            self.service = ShardedLedgerService(target, service_config)
            self._owns_service = True
        else:
            raise UsageError(
                "serve a ShardedLedger or a ShardedLedgerService, "
                f"not {type(target).__name__}"
            )
        self.ledger = self.service.ledger
        self.host = host
        self.servers: list[ServerThread] = []
        try:
            for index, shard_service in enumerate(self.service.services):
                self.servers.append(
                    ServerThread(
                        shard_service,
                        host,
                        0 if port == 0 else port + index,
                        close_service=False,
                        shard_context=(self.ledger, index),
                        **kwargs,
                    )
                )
        except BaseException:
            for server in self.servers:
                server.kill()
            if self._owns_service:
                self.service.close(drain=False)
            raise

    @property
    def num_shards(self) -> int:
        return self.ledger.num_shards

    @property
    def addresses(self) -> list[tuple[str, int]]:
        """``(host, port)`` per shard, by shard index."""
        return [server.address for server in self.servers]

    def address_for(self, key: str) -> tuple[str, int]:
        """The listener that owns ``key`` under the public routing contract."""
        return self.servers[shard_of_key(key, self.num_shards)].address

    def uris(self) -> list[str]:
        """``ledger://host:port`` per shard — feed to :func:`repro.api.connect`."""
        return [f"ledger://{host}:{port}" for host, port in self.addresses]

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Close every listener (then the owned service); first error re-raised."""
        errors: list[Exception] = []
        for server in self.servers:
            try:
                server.close(drain=drain, timeout=timeout)
            except Exception as exc:
                errors.append(exc)
        if self._owns_service and not self.service.closed:
            try:
                self.service.close(drain=drain)
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise errors[0]

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt shutdown of every listener — simulated deployment crash."""
        self.close(drain=False, timeout=timeout)

    def __enter__(self) -> "ShardedServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedServerThread {self.ledger.config.uri} "
            f"shards={self.num_shards} {self.addresses}>"
        )
