"""Hash-partitioned multi-shard deployments under one trusted root.

A :class:`ShardedLedger` runs N independent :class:`~repro.core.ledger.Ledger`
instances (own journal stream, own writer loop, own ``data_dir`` subdirectory)
and folds their live fam roots into one composite root via the same shrubs
accumulator the T-Ledger layering uses — so verifiers trust a single digest
for the whole deployment.  See DESIGN.md §15.

- :class:`ShardedLedger` — the facade: routing, proofs, audit, lifecycle.
- :class:`ShardedLedgerService` — one group-commit pipeline per shard.
- :class:`ShardedServerThread` — one network listener per shard.
- :class:`ShardProof` / :class:`ShardClueProof` — per-shard proof composed
  with the shard→root inclusion link.
"""

from .serving import ShardedServerThread
from .service import ShardedLedgerService
from .sharded import (
    SHARD_DIR_FORMAT,
    ShardClueProof,
    ShardProof,
    ShardedAuditReport,
    ShardedLedger,
    iter_shard_dirs,
    shard_of_key,
)

__all__ = [
    "SHARD_DIR_FORMAT",
    "ShardClueProof",
    "ShardProof",
    "ShardedAuditReport",
    "ShardedLedger",
    "ShardedLedgerService",
    "ShardedServerThread",
    "iter_shard_dirs",
    "shard_of_key",
]
