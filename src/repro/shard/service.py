"""Group commit across shards: one writer loop (and one fsync pipeline) each.

:class:`ShardedLedgerService` fronts a :class:`~repro.shard.sharded.ShardedLedger`
with one :class:`~repro.service.LedgerService` per shard.  Each shard's
writer thread coalesces its own admission queue into its own
``append_batch`` — so the deployment runs N concurrent group-commit
pipelines whose stream fsyncs overlap in real time, instead of serialising
behind a single writer.  This is what breaks the single-ledger fsync
ceiling (BENCH_shards.json).

The public surface mirrors :class:`LedgerService` (``submit`` /
``submit_many`` / ``append`` / ``stats`` / ``close``), with requests routed
by the same public hash partition the ledger uses, so the network server
and the v2 session API front a sharded deployment unchanged.
"""

from __future__ import annotations

from concurrent.futures import Future

from ..core.journal import ClientRequest
from ..core.receipt import Receipt
from ..service import LedgerService, ServiceConfig
from .sharded import ShardedLedger

__all__ = ["ShardedLedgerService"]


class ShardedLedgerService:
    """One group-commit front end per shard, behind one submit surface.

    Shard ``k``'s service is named ``shard-k``, so its observability
    families are per-shard (``service.queue.depth{name=shard-k}`` …) and N
    writer loops never clobber one another's metrics.
    """

    def __init__(
        self, sharded: ShardedLedger, config: ServiceConfig | None = None
    ) -> None:
        self.ledger = sharded
        self.config = config or ServiceConfig()
        self._services = [
            LedgerService(shard, self.config, name=f"shard-{index}")
            for index, shard in enumerate(sharded.shards)
        ]

    @property
    def services(self) -> list[LedgerService]:
        """The per-shard services, by shard index (treat as read-only)."""
        return list(self._services)

    def service_for(self, request: ClientRequest) -> LedgerService:
        return self._services[self.ledger.shard_of_request(request)]

    # ------------------------------------------------------------ admission

    def submit(self, request: ClientRequest, *, timeout: float | None | object = ...) -> Future:
        """Queue one request on its shard's writer; semantics of
        :meth:`LedgerService.submit` (backpressure per shard queue)."""
        return self.service_for(request).submit(request, timeout=timeout)

    def submit_many(
        self,
        requests: list[ClientRequest],
        *,
        timeout: float | None | object = ...,
    ) -> list[Future]:
        """Admit a batch across shards; futures in the requests' order.

        All-or-nothing holds for the *first* shard group touched (nothing
        is admitted anywhere if it has no room), matching the retry
        contract callers rely on.  Later groups block for room rather than
        raise — a mid-batch overload must not leave a retryable-looking
        exception behind requests that are already queued elsewhere.
        """
        groups: dict[int, list[int]] = {}
        for position, request in enumerate(requests):
            groups.setdefault(self.ledger.shard_of_request(request), []).append(position)
        futures: list[Future | None] = [None] * len(requests)
        for order, shard_index in enumerate(sorted(groups)):
            positions = groups[shard_index]
            group_futures = self._services[shard_index].submit_many(
                [requests[position] for position in positions],
                timeout=timeout if order == 0 else None,
            )
            for position, future in zip(positions, group_futures):
                futures[position] = future
        return futures  # type: ignore[return-value]

    def append(self, request: ClientRequest, *, timeout: float | None = None) -> Receipt:
        return self.service_for(request).append(request, timeout=timeout)

    # ------------------------------------------------------------- shutdown

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Close every shard service; first failure re-raised after all."""
        errors: list[Exception] = []
        for service in self._services:
            try:
                service.close(drain=drain, timeout=timeout)
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise errors[0]

    @property
    def closed(self) -> bool:
        return all(service.closed for service in self._services)

    def __enter__(self) -> "ShardedLedgerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Aggregate lifetime counters plus the per-shard breakdown."""
        per_shard = [service.stats() for service in self._services]
        totals = {
            key: sum(stats[key] for stats in per_shard)
            for key in ("submitted", "committed", "rejected", "batches", "salvaged_batches", "queued")
        }
        totals["mean_batch_size"] = (
            totals["committed"] / totals["batches"] if totals["batches"] else 0.0
        )
        totals["shards"] = per_shard
        return totals

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"<ShardedLedgerService {self.ledger.config.uri} "
            f"shards={self.ledger.num_shards} {state}>"
        )
