"""LSP receipts — the pi_s non-repudiation proof (§III-C).

After committing a journal, the LSP packs the three digests (*request-hash*,
*tx-hash*, *block-hash*) together with the jsn and commit timestamp into a
receipt, signs it, and hands it to the client.  The client keeps the receipt
*externally*: if the LSP later deletes or rewrites the journal, the receipt
is the evidence that convicts it (threat-B / threat-C defence).

``ledger_root`` additionally entangles the fam commitment as of this commit,
giving the receipt tim-style fine-grained coverage of the whole prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair, PublicKey
from ..encoding import decode, encode

__all__ = ["Receipt"]


@dataclass(frozen=True)
class Receipt:
    """A signed acknowledgement of one committed journal."""

    ledger_uri: str
    jsn: int
    request_hash: Digest
    tx_hash: Digest
    block_hash: Digest  # latest committed block at issue time
    block_height: int
    ledger_root: Digest  # fam commitment immediately after this commit
    timestamp: float
    lsp_signature: Signature | None = None

    def signing_payload(self) -> bytes:
        return encode(
            {
                "scheme": "repro.receipt.v1",
                "ledger_uri": self.ledger_uri,
                "jsn": self.jsn,
                "request_hash": self.request_hash,
                "tx_hash": self.tx_hash,
                "block_hash": self.block_hash,
                "block_height": self.block_height,
                "ledger_root": self.ledger_root,
                "timestamp": self.timestamp,
            }
        )

    def signed_by(self, lsp_keypair: KeyPair) -> "Receipt":
        """Return a copy carrying the LSP's signature pi_s."""
        return replace(self, lsp_signature=lsp_keypair.sign(sha256(self.signing_payload())))

    @classmethod
    def sign_batch(cls, receipts: list["Receipt"], lsp_keypair: KeyPair) -> list["Receipt"]:
        """Sign many receipts in one pass with shared batch inversions.

        Signatures are bit-identical to :meth:`signed_by` per receipt, so
        batched admission hands out exactly the pi_s a sequential commit
        would have.
        """
        digests = [sha256(receipt.signing_payload()) for receipt in receipts]
        signatures = lsp_keypair.sign_batch(digests)
        return [
            replace(receipt, lsp_signature=signature)
            for receipt, signature in zip(receipts, signatures)
        ]

    def verify(self, lsp_public_key: PublicKey) -> bool:
        """Check the LSP's signature.  Never raises."""
        if self.lsp_signature is None:
            return False
        return lsp_public_key.verify(sha256(self.signing_payload()), self.lsp_signature)

    def to_bytes(self) -> bytes:
        return encode(
            {
                "ledger_uri": self.ledger_uri,
                "jsn": self.jsn,
                "request_hash": self.request_hash,
                "tx_hash": self.tx_hash,
                "block_hash": self.block_hash,
                "block_height": self.block_height,
                "ledger_root": self.ledger_root,
                "timestamp": self.timestamp,
                "lsp_signature": (
                    self.lsp_signature.to_bytes() if self.lsp_signature else b""
                ),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Receipt":
        obj = decode(data)
        signature_bytes = bytes(obj["lsp_signature"])
        return cls(
            ledger_uri=obj["ledger_uri"],
            jsn=obj["jsn"],
            request_hash=bytes(obj["request_hash"]),
            tx_hash=bytes(obj["tx_hash"]),
            block_hash=bytes(obj["block_hash"]),
            block_height=obj["block_height"],
            ledger_root=bytes(obj["ledger_root"]),
            timestamp=obj["timestamp"],
            lsp_signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )
