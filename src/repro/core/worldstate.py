"""World-state — the single-layer state accumulator of Figure 2.

Besides the per-clue CM-Tree, LedgerDB maintains a *world-state*: the
current value of every business key, "maintained by a single-layer state
accumulator without clue accumulator" (§II-C).  This module implements that
component: an authenticated key-value map over the MPT whose 32-byte root
is a verifiable snapshot of the entire current state.

Each key's MPT value commits the *value digest*, the key's version count,
and the jsn of the journal that last wrote it — so a state proof pins a
value to a specific ledger position, and historical roots (captured in
block headers) remain queryable and provable thanks to the MPT's
persistence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, sha256
from ..encoding import decode, encode
from ..merkle.mpt import MPT, MPTProof
from ..storage.kv import KVStore

__all__ = ["StateEntry", "StateProof", "WorldState"]


@dataclass(frozen=True)
class StateEntry:
    """The committed metadata for one key."""

    key: bytes
    value_digest: Digest
    version: int  # number of writes to this key, minus one
    jsn: int  # journal that performed the latest write

    def to_value_bytes(self) -> bytes:
        return encode(
            {
                "value_digest": self.value_digest,
                "version": self.version,
                "jsn": self.jsn,
            }
        )

    @classmethod
    def from_value_bytes(cls, key: bytes, data: bytes) -> "StateEntry":
        obj = decode(data)
        return cls(
            key=key,
            value_digest=bytes(obj["value_digest"]),
            version=obj["version"],
            jsn=obj["jsn"],
        )


@dataclass(frozen=True)
class StateProof:
    """Proof that a key has (or does not have) a given current state."""

    entry: StateEntry | None  # None asserts non-membership
    mpt_proof: MPTProof

    def verify(self, state_root: Digest, value: bytes | None = None) -> bool:
        """Check against a trusted state root; optionally bind the raw value.

        With ``value`` supplied, also checks the value digest — the full
        "this exact value is the key's current state" statement.
        """
        if self.entry is None:
            return self.mpt_proof.value is None and self.mpt_proof.verify(state_root)
        if self.mpt_proof.key != self.entry.key:
            return False
        if self.mpt_proof.value != self.entry.to_value_bytes():
            return False
        if value is not None and sha256(value) != self.entry.value_digest:
            return False
        return self.mpt_proof.verify(state_root)


class WorldState:
    """Authenticated current-state KV map with verifiable snapshots."""

    def __init__(self, store: KVStore | None = None) -> None:
        self._mpt = MPT(store)
        self._values: dict[bytes, bytes] = {}  # raw payloads for retrieval
        self._versions: dict[bytes, int] = {}

    @property
    def root(self) -> Digest:
        """The snapshot commitment (recorded per block in LedgerDB)."""
        return self._mpt.root

    def put(self, key: bytes, value: bytes, jsn: int) -> Digest:
        """Write ``key`` from journal ``jsn``; returns the new state root."""
        version = self._versions.get(key, -1) + 1
        self._versions[key] = version
        entry = StateEntry(key=key, value_digest=sha256(value), version=version, jsn=jsn)
        self._values[key] = value
        return self._mpt.put(key, entry.to_value_bytes())

    def get(self, key: bytes) -> bytes:
        """The key's current raw value (KeyError if absent)."""
        if key not in self._values:
            raise KeyError(key)
        return self._values[key]

    def entry(self, key: bytes) -> StateEntry | None:
        data = self._mpt.get_default(key)
        if data is None:
            return None
        return StateEntry.from_value_bytes(key, data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._values

    def version(self, key: bytes) -> int:
        """Number of writes minus one (-1 if never written)."""
        return self._versions.get(key, -1)

    def prove(self, key: bytes, root: Digest | None = None) -> StateProof:
        """Membership/non-membership proof at the current (or a historical) root."""
        mpt_proof = self._mpt.prove(key, root=root)
        if mpt_proof.value is None:
            return StateProof(entry=None, mpt_proof=mpt_proof)
        return StateProof(
            entry=StateEntry.from_value_bytes(key, mpt_proof.value),
            mpt_proof=mpt_proof,
        )

    def historical_entry(self, key: bytes, root: Digest) -> StateEntry | None:
        """The key's committed entry under a historical state root."""
        data = self._mpt.get_at(root, key)
        if data is None:
            return None
        return StateEntry.from_value_bytes(key, data)
