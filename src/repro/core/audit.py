"""Dasein-complete audit (§V): full-ledger replay with 3w validation.

The audit consumes an exported :class:`~repro.core.ledger.LedgerView` plus
out-of-band trust anchors (CA public key from the view, TSA public keys) and
re-derives everything else itself:

1. **Π1** — every purge journal's Prerequisite-1 multi-signature validates;
2. **Π2** — every occult journal's Prerequisite-2 multi-signature validates
   (DBA + regulator);
3. **replay (V)** — every journal's digest is recomputed (Protocol 2
   substitutes the retained hash for occulted journals; Protocol 1 starts the
   replay from the pseudo genesis after a purge) and folded through a
   :class:`~repro.merkle.fam.FamReplayer` and a CM-Tree state replay; every
   block's ``journal_root`` / ``state_root`` must match;
4. **boundary (V')** — adjacent blocks chain by hash and journal ranges are
   gapless;
5. **time journals** — each anchored root must equal the replayed commitment
   at its jsn, and its TSA evidence must verify; timestamps must be
   monotone;
6. **Π3** — the LSP's latest receipt signature, tx-hash, and ledger root all
   match the replayed state.

The final proof is the conjunction; any sub-proof failure terminates the
audit early with a failed report, as Definition 1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import EMPTY_DIGEST, Digest
from ..crypto.keys import PublicKey
from ..crypto.multisig import MultiSignatureError
from ..merkle.cmtree import encode_clue_value
from ..merkle.fam import FamReplayer
from ..merkle.mpt import MPT
from ..merkle.shrubs import FrontierAccumulator
from ..crypto.hashing import clue_key_hash
from .journal import Journal, JournalType
from .ledger import LedgerView
from .verification import DaseinVerifier, parse_time_journal

__all__ = ["AuditStep", "AuditReport", "dasein_audit"]


@dataclass(frozen=True)
class AuditStep:
    """One verification sub-task and its outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class AuditReport:
    """The conjunction of every audit sub-proof (§V step 6)."""

    passed: bool
    steps: list[AuditStep] = field(default_factory=list)
    journals_replayed: int = 0
    blocks_verified: int = 0
    time_journals_verified: int = 0

    def failures(self) -> list[AuditStep]:
        return [step for step in self.steps if not step.passed]


class _Auditor:
    def __init__(
        self,
        view: LedgerView,
        tsa_keys: dict[str, PublicKey],
        temporal_range: tuple[float, float] | None,
        verify_client_signatures: bool,
    ) -> None:
        self.view = view
        self.tsa_keys = tsa_keys
        self.temporal_range = temporal_range
        self.verify_client_signatures = verify_client_signatures
        self.report = AuditReport(passed=True)
        self._roots_after: dict[int, Digest] = {}
        self._time_entries: list[tuple[int, dict]] = []

    def _step(self, name: str, passed: bool, detail: str = "") -> bool:
        self.report.steps.append(AuditStep(name=name, passed=passed, detail=detail))
        if not passed:
            self.report.passed = False
        return passed

    # ------------------------------------------------------------ sub-proofs

    def check_certificates(self) -> bool:
        for member_id, certificate in self.view.certificates.items():
            if not certificate.verify(self.view.ca_public_key):
                return self._step(
                    "certificates", False, f"CA signature invalid for {member_id!r}"
                )
            if certificate.member_id != member_id:
                return self._step(
                    "certificates", False, f"certificate id mismatch for {member_id!r}"
                )
        return self._step("certificates", True, f"{len(self.view.certificates)} members")

    def check_purge_approvals(self) -> bool:
        """Π1: purge journals carry valid multi-signatures incl. a DBA."""
        from ..crypto.ca import Role

        for jsn, record, approvals in self.view.purge_approvals:
            if approvals.digest != record.approval_digest():
                return self._step(
                    "purge-approvals", False, f"purge@{jsn}: signatures cover wrong record"
                )
            signer_certs = {}
            has_dba = False
            for member_id in approvals.signer_ids():
                certificate = self.view.certificates.get(member_id)
                if certificate is None:
                    return self._step(
                        "purge-approvals", False, f"purge@{jsn}: unknown signer {member_id!r}"
                    )
                signer_certs[member_id] = certificate
                has_dba = has_dba or certificate.role is Role.DBA
            if not has_dba:
                return self._step(
                    "purge-approvals", False, f"purge@{jsn}: no DBA among signers"
                )
            try:
                approvals.verify(signer_certs)
            except MultiSignatureError as exc:
                return self._step("purge-approvals", False, f"purge@{jsn}: {exc}")
            # Prerequisite 1 coverage: every *related* member (owner of a
            # purged journal, as recorded in the pseudo genesis) must have
            # signed, in addition to the DBA checked above.
            pseudo = self.view.pseudo_genesis
            if pseudo is not None and record.pseudo_genesis_hash == pseudo.hash():
                missing = sorted(
                    member_id
                    for member_id in pseudo.related_member_ids
                    if member_id not in approvals.signer_ids()
                )
                if missing:
                    return self._step(
                        "purge-approvals",
                        False,
                        f"purge@{jsn}: related members did not sign: {missing}",
                    )
        return self._step(
            "purge-approvals", True, f"{len(self.view.purge_approvals)} purge journal(s)"
        )

    def check_occult_approvals(self) -> bool:
        """Π2: occult journals carry valid DBA + regulator multi-signatures."""
        from ..crypto.ca import Role

        for jsn, record, approvals in self.view.occult_approvals:
            if approvals.digest != record.approval_digest():
                return self._step(
                    "occult-approvals", False, f"occult@{jsn}: signatures cover wrong record"
                )
            signer_certs = {}
            roles = set()
            for member_id in approvals.signer_ids():
                certificate = self.view.certificates.get(member_id)
                if certificate is None:
                    return self._step(
                        "occult-approvals", False, f"occult@{jsn}: unknown signer {member_id!r}"
                    )
                signer_certs[member_id] = certificate
                roles.add(certificate.role)
            if Role.DBA not in roles or Role.REGULATOR not in roles:
                return self._step(
                    "occult-approvals",
                    False,
                    f"occult@{jsn}: requires DBA and regulator signatures",
                )
            try:
                approvals.verify(signer_certs)
            except MultiSignatureError as exc:
                return self._step("occult-approvals", False, f"occult@{jsn}: {exc}")
        return self._step(
            "occult-approvals", True, f"{len(self.view.occult_approvals)} occult journal(s)"
        )

    # ---------------------------------------------------------------- replay

    def replay(self) -> bool:
        """V and V': full journal replay with block-root and chain checks."""
        view = self.view
        pseudo = view.pseudo_genesis

        if pseudo is not None and view.genesis_start > 0:
            if view.genesis_start != pseudo.purge_point:
                return self._step(
                    "replay", False, "view genesis does not match pseudo genesis purge point"
                )
            fam = FamReplayer.from_snapshot(
                view.fractal_height,
                pseudo.fam_epoch_roots,
                pseudo.fam_live_epoch[0],
                list(pseudo.fam_live_epoch[1]),
                journal_count=pseudo.purge_point,
            )
            if fam.current_root() != pseudo.fam_root:
                return self._step(
                    "replay", False, "pseudo genesis fam snapshot does not bag to its root"
                )
            state = MPT()
            clue_frontiers: dict[str, FrontierAccumulator] = {}
            for clue, size, peaks in pseudo.clue_snapshot:
                frontier = FrontierAccumulator(size, list(peaks))
                clue_frontiers[clue] = frontier
                state.put(clue_key_hash(clue), encode_clue_value(size, frontier.peaks()))
            if state.root != pseudo.state_root:
                return self._step(
                    "replay", False, "pseudo genesis clue snapshot does not rebuild its state root"
                )
        else:
            fam = FamReplayer(view.fractal_height)
            state = MPT()
            clue_frontiers = {}

        occult_by_target = {
            record.target_jsn: record for _jsn, record, _sig in view.occult_approvals
        }

        blocks = [b for b in view.blocks if b.end_jsn > view.genesis_start]
        block_index = 0
        previous_block_hash = (
            blocks[0].previous_hash if blocks else EMPTY_DIGEST
        )
        lsp_cert = view.certificates.get(view.lsp_member_id)
        if lsp_cert is None:
            return self._step("replay", False, "LSP certificate missing from view")

        time_entries: list[tuple[int, dict]] = []
        roots_after: dict[int, Digest] = {}

        for entry in view.entries:
            jsn = entry.jsn
            if entry.data is not None:
                try:
                    journal = Journal.from_bytes(entry.data)
                except Exception as exc:
                    return self._step("replay", False, f"jsn {jsn}: undecodable: {exc}")
                if journal.jsn != jsn:
                    return self._step("replay", False, f"jsn {jsn}: journal claims {journal.jsn}")
                digest = journal.tx_hash()
                if digest != entry.retained_hash:
                    return self._step(
                        "replay", False, f"jsn {jsn}: digest mismatch with retained hash"
                    )
                if self.verify_client_signatures:
                    certificate = view.certificates.get(journal.client_id)
                    if certificate is None:
                        return self._step(
                            "replay", False, f"jsn {jsn}: unknown member {journal.client_id!r}"
                        )
                    if journal.client_signature is None or not certificate.public_key.verify(
                        journal.request_hash, journal.client_signature
                    ):
                        return self._step(
                            "replay", False, f"jsn {jsn}: invalid issuer signature"
                        )
                if journal.journal_type is JournalType.TIME:
                    info = parse_time_journal(journal)
                    # The anchor was taken immediately before this journal
                    # was appended, so it must equal the running commitment.
                    if info["as_of_jsn"] != jsn:
                        return self._step(
                            "replay", False, f"time journal {jsn}: as_of_jsn mismatch"
                        )
                    if info["anchored_root"] != fam.current_root():
                        return self._step(
                            "replay",
                            False,
                            f"time journal {jsn}: anchored root does not match replay",
                        )
                    time_entries.append((jsn, info))
                clues = journal.clues
            else:
                # Mutated journal: Protocol 1/2 — use the retained digest.
                digest = entry.retained_hash
                clues = ()
                if entry.occulted:
                    record = occult_by_target.get(jsn)
                    if record is None:
                        return self._step(
                            "replay", False, f"jsn {jsn}: occulted without an occult record"
                        )
                    if record.retained_hash != digest:
                        return self._step(
                            "replay", False, f"jsn {jsn}: retained hash disagrees with record"
                        )
                    # The occult record retains the clue labels so lineage
                    # state replay stays complete after the payload is gone.
                    clues = record.retained_clues

            fam.append(digest)
            roots_after[jsn] = fam.current_root()
            for clue in clues:
                frontier = clue_frontiers.get(clue)
                if frontier is None:
                    frontier = FrontierAccumulator()
                    clue_frontiers[clue] = frontier
                frontier.append_leaf(digest)
                state.put(clue_key_hash(clue), encode_clue_value(frontier.size, frontier.peaks()))

            # Block boundary checks (V at boundaries, V' across them).
            if block_index < len(blocks) and jsn + 1 == blocks[block_index].end_jsn:
                block = blocks[block_index]
                if block.previous_hash != previous_block_hash:
                    return self._step(
                        "replay", False, f"block {block.height}: broken chain link"
                    )
                if block.journal_root != fam.current_root():
                    return self._step(
                        "replay", False, f"block {block.height}: journal root mismatch"
                    )
                if block.state_root != state.root:
                    return self._step(
                        "replay", False, f"block {block.height}: state root mismatch"
                    )
                previous_block_hash = block.hash()
                block_index += 1
                self.report.blocks_verified += 1

            self.report.journals_replayed += 1

        if block_index != len(blocks):
            return self._step(
                "replay", False, f"{len(blocks) - block_index} block(s) had no matching journals"
            )
        self._roots_after = roots_after
        self._time_entries = time_entries
        return self._step(
            "replay",
            True,
            f"{self.report.journals_replayed} journals, {self.report.blocks_verified} blocks",
        )

    # ------------------------------------------------------------------ when

    def check_time_journals(self) -> bool:
        """TSA evidence for every (in-range) time journal, plus monotonicity."""
        verifier = DaseinVerifier(
            self.view,
            tsa_keys=self.tsa_keys,
            trusted_root=EMPTY_DIGEST,  # what-datum unused here
        )
        previous_timestamp = float("-inf")
        verified = 0
        for jsn, info in self._time_entries:
            evidence = self.view.time_evidence.get(jsn)
            timestamp, valid = verifier._check_time_evidence(info, evidence)
            if self.temporal_range is not None:
                low, high = self.temporal_range
                if not low <= timestamp <= high:
                    continue  # outside the audit's temporal predicate
            if not valid:
                return self._step(
                    "time-journals", False, f"time journal {jsn}: evidence failed"
                )
            if timestamp < previous_timestamp:
                return self._step(
                    "time-journals", False, f"time journal {jsn}: timestamp regression"
                )
            previous_timestamp = timestamp
            verified += 1
        self.report.time_journals_verified = verified
        return self._step("time-journals", True, f"{verified} anchors verified")

    # ------------------------------------------------------------------- Π3

    def check_receipt(self) -> bool:
        receipt = self.view.latest_receipt
        if receipt is None:
            return self._step("receipt", False, "no receipt supplied")
        lsp_cert = self.view.certificates.get(self.view.lsp_member_id)
        if lsp_cert is None or not receipt.verify(lsp_cert.public_key):
            return self._step("receipt", False, "LSP signature invalid")
        if receipt.jsn >= self.view.genesis_start:
            entry = self.view.entry(receipt.jsn)
            if entry.retained_hash != receipt.tx_hash:
                return self._step("receipt", False, "receipt tx-hash mismatch")
            expected_root = self._roots_after.get(receipt.jsn)
            if expected_root is not None and receipt.ledger_root != expected_root:
                return self._step("receipt", False, "receipt ledger root mismatch")
        return self._step("receipt", True, f"receipt for jsn {receipt.jsn}")


def dasein_audit(
    view: LedgerView,
    tsa_keys: dict[str, PublicKey] | None = None,
    temporal_range: tuple[float, float] | None = None,
    verify_client_signatures: bool = True,
    early_terminate: bool = True,
) -> AuditReport:
    """Run the full §V Dasein-complete audit over an exported view.

    ``temporal_range`` optionally limits which time anchors are validated
    (the §V closing example: "audit all transactions committed before
    2018-12-31"); replay integrity is always checked end to end because root
    continuity requires it.

    With ``early_terminate`` (the paper's default semantics) the audit stops
    at the first failed sub-proof; disable it to collect every failure.
    """
    auditor = _Auditor(
        view,
        tsa_keys or {},
        temporal_range,
        verify_client_signatures,
    )
    steps = (
        auditor.check_certificates,
        auditor.check_purge_approvals,
        auditor.check_occult_approvals,
        auditor.replay,
        auditor.check_time_journals,
        auditor.check_receipt,
    )
    for step in steps:
        ok = step()
        if not ok and early_terminate:
            break
    return auditor.report
