"""Compatibility shim — the audit engine moved to :mod:`repro.audit`.

The Dasein-complete audit (§V, Definition 1) outgrew ``repro.core`` when it
gained a parallel signature pipeline, resumable checkpoints, and its own
worker module; it now lives in the :mod:`repro.audit` package.  This module
re-exports the public surface so existing ``from repro.core.audit import
dasein_audit`` (and ``repro.core.dasein_audit``) call sites keep working —
the function itself is unchanged and not deprecated, only relocated.
"""

from __future__ import annotations

from ..audit import AuditReport, AuditStep, dasein_audit

__all__ = ["AuditStep", "AuditReport", "dasein_audit"]
