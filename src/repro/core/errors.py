"""Exception hierarchy for the ledger kernel."""

from __future__ import annotations

__all__ = [
    "LedgerError",
    "UsageError",
    "AuthenticationError",
    "AuthorizationError",
    "VerificationFailure",
    "IntegrityError",
    "MutationError",
    "RecoveryError",
    "JournalNotFoundError",
    "JournalOccultedError",
    "JournalPurgedError",
]


class LedgerError(Exception):
    """Base class for all ledger-kernel errors."""


class UsageError(LedgerError, ValueError):
    """The caller misused an API: bad arguments, wrong state, wrong types.

    Facade-level argument mistakes (a missing keypair, an unknown ``lgid``,
    an empty ``txdata``) raise this instead of a bare :class:`LedgerError`,
    so callers can tell "you called it wrong" apart from "the ledger said
    no".  Also a :class:`ValueError`, matching what stdlib-minded callers
    expect for bad arguments.
    """


class AuthenticationError(LedgerError):
    """A request's signature or certificate failed validation (threat-A)."""


class AuthorizationError(LedgerError):
    """The acting member lacks the role a privileged operation requires."""


class VerificationFailure(LedgerError):
    """A verification that should pass on honest data did not."""


class IntegrityError(LedgerError):
    """Internal ledger structures desynchronised (stream vs. jsn counter).

    Unlike an ``assert`` this survives ``python -O``; it indicates a bug or
    on-disk corruption, never a recoverable client error.
    """


class MutationError(LedgerError):
    """A purge/occult operation violated its prerequisite or protocol."""


class RecoveryError(LedgerError):
    """Rebuilding a ledger from its durable stream is impossible as asked.

    Raised when the stream is empty, when a replayed journal contradicts its
    slot (jsn mismatch), or when state the stream alone cannot reconstruct
    (a purged prefix without its pseudo-genesis) is required.  Storage-level
    damage surfaces separately as
    :class:`repro.storage.stream.StreamCorruptionError` — that one means the
    bytes are bad, this one means the bytes are fine but insufficient.
    """


class SnapshotError(LedgerError):
    """A checkpoint snapshot is unusable — missing, corrupt, from a different
    ledger, or ahead of the journal stream it claims to summarise.

    Deliberately *recoverable*: :meth:`repro.core.ledger.Ledger.open` treats
    it as "no usable snapshot" and falls back to a full stream replay, because
    a snapshot is derived state — the journal stream remains the truth.
    """


class JournalNotFoundError(LedgerError):
    """No journal exists at the requested jsn."""

    def __init__(self, jsn: int) -> None:
        super().__init__(f"no journal at jsn {jsn}")
        self.jsn = jsn


class JournalOccultedError(LedgerError):
    """The journal was occulted: its payload is unretrievable by design."""

    def __init__(self, jsn: int) -> None:
        super().__init__(f"journal {jsn} has been occulted; only its digest remains")
        self.jsn = jsn


class JournalPurgedError(LedgerError):
    """The journal was erased by a purge operation."""

    def __init__(self, jsn: int) -> None:
        super().__init__(f"journal {jsn} was purged from the ledger")
        self.jsn = jsn
