"""cSL — the write-optimised clue SkipList index (§IV-A).

The cSL maps each clue to the ordered list of jsns that carry it.  It is a
retrieval *index*, not an authenticated structure — clue verification always
re-validates retrieved journals against CM-Tree — so it is free to optimise
for writes: "fast O(1) insertion and O(log n) read".

Implementation: a classic probabilistic skip list over clue keys (ordered,
supporting range scans over clue names) whose nodes hold append-only jsn
lists.  A hot-path hash cache makes repeat insertions for a known clue O(1);
first-touch insertion pays the O(log c) tower walk once per clue.  The coin
flips derive deterministically from the clue name, so structures are
reproducible across runs.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

__all__ = ["ClueSkipList"]

_MAX_LEVEL = 16


class _Node:
    __slots__ = ("clue", "jsns", "forward")

    def __init__(self, clue: str, level: int) -> None:
        self.clue = clue
        self.jsns: list[int] = []
        self.forward: list["_Node | None"] = [None] * level


def _tower_height(clue: str) -> int:
    """Deterministic geometric(1/2) level draw from the clue name."""
    digest = hashlib.sha256(b"cSL:" + clue.encode("utf-8")).digest()
    bits = int.from_bytes(digest[:8], "big")
    level = 1
    while level < _MAX_LEVEL and (bits & 1):
        level += 1
        bits >>= 1
    return level


class ClueSkipList:
    """Ordered clue -> [jsn, ...] index."""

    def __init__(self) -> None:
        self._head = _Node("", _MAX_LEVEL)
        self._level = 1
        self._fastpath: dict[str, _Node] = {}
        self._size = 0  # total (clue, jsn) pairs

    # ---------------------------------------------------------------- insert

    def insert(self, clue: str, jsn: int) -> None:
        """Record that journal ``jsn`` carries ``clue`` (O(1) for known clues)."""
        node = self._fastpath.get(clue)
        if node is None:
            node = self._insert_node(clue)
            self._fastpath[clue] = node
        if node.jsns and jsn <= node.jsns[-1]:
            raise ValueError(
                f"jsn {jsn} not monotonically increasing for clue {clue!r} "
                f"(last was {node.jsns[-1]})"
            )
        node.jsns.append(jsn)
        self._size += 1

    def _insert_node(self, clue: str) -> _Node:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        current = self._head
        for level in range(self._level - 1, -1, -1):
            while current.forward[level] is not None and current.forward[level].clue < clue:
                current = current.forward[level]
            update[level] = current
        candidate = current.forward[0]
        if candidate is not None and candidate.clue == clue:
            return candidate
        height = _tower_height(clue)
        self._level = max(self._level, height)
        node = _Node(clue, height)
        for level in range(height):
            node.forward[level] = update[level].forward[level]
            update[level].forward[level] = node
        return node

    # ----------------------------------------------------------------- reads

    def _find(self, clue: str) -> _Node | None:
        node = self._fastpath.get(clue)
        if node is not None:
            return node
        current = self._head
        for level in range(self._level - 1, -1, -1):
            while current.forward[level] is not None and current.forward[level].clue < clue:
                current = current.forward[level]
        candidate = current.forward[0]
        return candidate if candidate is not None and candidate.clue == clue else None

    def get(self, clue: str) -> list[int]:
        """All jsns recorded for ``clue``, in append order ([] if unknown)."""
        node = self._find(clue)
        return list(node.jsns) if node is not None else []

    def count(self, clue: str) -> int:
        node = self._find(clue)
        return len(node.jsns) if node is not None else 0

    def __contains__(self, clue: str) -> bool:
        return self._find(clue) is not None

    def __len__(self) -> int:
        """Total number of (clue, jsn) pairs indexed."""
        return self._size

    def num_clues(self) -> int:
        return len(self._fastpath)

    def clues(self) -> Iterator[str]:
        """All clue names in lexicographic order (skip-list level-0 walk)."""
        node = self._head.forward[0]
        while node is not None:
            yield node.clue
            node = node.forward[0]

    def range(self, low: str, high: str) -> Iterator[tuple[str, list[int]]]:
        """Clues in ``[low, high)`` with their jsn lists (ordered scan)."""
        current = self._head
        for level in range(self._level - 1, -1, -1):
            while current.forward[level] is not None and current.forward[level].clue < low:
                current = current.forward[level]
        node = current.forward[0]
        while node is not None and node.clue < high:
            yield node.clue, list(node.jsns)
            node = node.forward[0]
