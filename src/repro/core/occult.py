"""Occult — regulation-driven hiding with retained verifiability (§III-A3).

An occult operation hides the journal at a designated jsn and *retains its
hash digest* on the ledger, so the accumulator (and therefore every later
proof) remains intact: "the retained hash in an occulted journal is viewed as
the original journal when verifying subsequent journals" (Protocol 2).

Prerequisite 2: multi-signatures from the DBA and the regulator role holder.

Execution is synchronous (payload erased immediately) or asynchronous: the
occult *bit* is set at once — the journal is unretrievable from that moment —
while physical erasure is deferred to the data-reorganisation utility
(:meth:`repro.core.ledger.Ledger.reorganize`), mirroring the paper's
idle-batch erasure from the *occulted* anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..crypto.hashing import Digest, sha256
from ..crypto.multisig import MultiSignature
from ..encoding import decode, encode

__all__ = ["OccultMode", "OccultRecord", "OccultBitmap"]


class OccultMode(Enum):
    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class OccultRecord:
    """The content of an occult journal's payload."""

    target_jsn: int
    retained_hash: Digest  # the original journal's tx-hash, kept forever
    mode: OccultMode
    reason: str
    #: The occulted journal's clue labels are retained (the *payload* is the
    #: regulated content; the business key is needed so lineage counts and
    #: state-root replay remain verifiable after the occult — Protocol 2).
    retained_clues: tuple[str, ...] = ()

    def approval_digest(self) -> Digest:
        """What the DBA and regulator multi-sign (Prerequisite 2)."""
        return sha256(
            encode(
                {
                    "scheme": "repro.occult.v1",
                    "target_jsn": self.target_jsn,
                    "retained_hash": self.retained_hash,
                    "mode": self.mode.value,
                    "reason": self.reason,
                    "retained_clues": list(self.retained_clues),
                }
            )
        )

    def to_bytes(self) -> bytes:
        return encode(
            {
                "target_jsn": self.target_jsn,
                "retained_hash": self.retained_hash,
                "mode": self.mode.value,
                "reason": self.reason,
                "retained_clues": list(self.retained_clues),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "OccultRecord":
        obj = decode(data)
        return cls(
            target_jsn=obj["target_jsn"],
            retained_hash=bytes(obj["retained_hash"]),
            mode=OccultMode(obj["mode"]),
            reason=obj["reason"],
            retained_clues=tuple(obj["retained_clues"]),
        )


class OccultBitmap:
    """The occult bitmap index: one bit per jsn, set = occulted.

    Setting the bit is the logical deletion — retrieval checks it before
    touching the stream — independent of when physical erasure happens.
    """

    def __init__(self) -> None:
        self._bits = bytearray()
        self._count = 0

    def set(self, jsn: int) -> None:
        if jsn < 0:
            raise IndexError("jsn must be non-negative")
        byte_index = jsn >> 3
        if byte_index >= len(self._bits):
            self._bits.extend(b"\x00" * (byte_index - len(self._bits) + 1))
        mask = 1 << (jsn & 7)
        if not self._bits[byte_index] & mask:
            self._bits[byte_index] |= mask
            self._count += 1

    def test(self, jsn: int) -> bool:
        if jsn < 0:
            raise IndexError("jsn must be non-negative")
        byte_index = jsn >> 3
        if byte_index >= len(self._bits):
            return False
        return bool(self._bits[byte_index] & (1 << (jsn & 7)))

    def __contains__(self, jsn: int) -> bool:
        return self.test(jsn)

    def __len__(self) -> int:
        """Number of occulted jsns."""
        return self._count

    def occulted_jsns(self) -> list[int]:
        out = []
        for byte_index, byte in enumerate(self._bits):
            if not byte:
                continue
            for bit in range(8):
                if byte & (1 << bit):
                    out.append((byte_index << 3) | bit)
        return out


def verify_occult_approvals(
    record: OccultRecord,
    approvals: MultiSignature,
    required_signers: dict,
) -> None:
    """Prerequisite 2 check: DBA + regulator signatures over the record.

    ``required_signers`` maps member id -> certificate for the DBA and the
    regulator.  Raises :class:`repro.crypto.MultiSignatureError` on failure.
    """
    if approvals.digest != record.approval_digest():
        from ..crypto.multisig import MultiSignatureError

        raise MultiSignatureError("approval signatures cover a different occult record")
    approvals.verify(required_signers)
