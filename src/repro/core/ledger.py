"""The LedgerDB kernel: Create / Append / GetProof / Verify plus mutations.

This module wires every substrate together into the system of Figure 1/2:

* journals land on an append-only **stream** and their tx-hashes in the
  **fam** accumulator (*what*);
* clue-tagged journals also enter the **CM-Tree** world-state and the **cSL**
  retrieval index (*N-lineage*);
* every ``block_size`` journals a **block** seals the fam commitment and the
  CM-Tree1 state root (audit / snapshot granularity);
* the LSP signs a **receipt** per commit (*who*, pi_s) and periodically
  anchors the fam root to a **TSA or T-Ledger** as time journals (*when*,
  pi_t);
* **purge** and **occult** provide the two verifiable mutations.

The server-side trust model: a client that trusts the LSP calls the
``verify_*`` convenience methods here; a distrusting auditor instead calls
:meth:`Ledger.export_view` and uses :mod:`repro.core.audit` /
:mod:`repro.core.verification` entirely client-side.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..crypto.ca import Role
from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, EMPTY_DIGEST, hexdigest
from ..crypto.keys import KeyPair, verify_batch
from ..crypto.multisig import MultiSignature, MultiSignatureError
from ..encoding import encode
from ..merkle.cmtree import ClueProof, CMTree
from ..merkle.fam import AnchorStore, FamAccumulator, FamProof
from ..storage.kv import KVStore
from ..storage.pagestore import PageCorruptionError, PagedNodeStore
from ..storage.stream import FileStream, MemoryStream, RecordErasedError, Stream
from ..timeauth.clock import Clock, SimClock
from ..timeauth.tledger import TimeEvidence, TimeLedger
from ..timeauth.tsa import TimeStampAuthority, TimeStampToken, TSAPool
from ..transparency.censorship import SubmissionAck
from ..transparency.sth import (
    SOLO_SHARD,
    ConsistencyAssertion,
    ConsistencyBundle,
    SignedTreeHead,
    SthStore,
)
from .blocks import Block
from .cluesl import ClueSkipList
from .errors import (
    AuthenticationError,
    IntegrityError,
    JournalNotFoundError,
    JournalOccultedError,
    JournalPurgedError,
    LedgerError,
    MutationError,
    RecoveryError,
    SnapshotError,
    UsageError,
)
from .journal import ClientRequest, Journal, JournalType
from .members import MemberRegistry
from .occult import OccultBitmap, OccultMode, OccultRecord
from .purge import PseudoGenesis, PurgeRecord
from .receipt import Receipt
from .snapshot import (
    SNAPSHOT_FORMAT,
    load_config_file,
    load_snapshot,
    write_config_file,
    write_snapshot,
)

__all__ = ["LedgerConfig", "Ledger", "LedgerView", "JournalEntryView", "LSP_MEMBER_ID"]

#: The LSP's reserved member id (registered automatically at Create).
LSP_MEMBER_ID = "__lsp__"

#: File names inside a persistent ledger's ``data_dir``.
CONFIG_FILE = "ledger.cfg"
JOURNAL_FILE = "journal.stream"
SNAPSHOT_FILE = "snapshot.ckpt"
NODES_DIR = "nodes"
STH_FILE = "sth.log"

#: How many epoch closes a :class:`SubmissionAck` grants the LSP before an
#: acked-but-absent request becomes provable censorship (DESIGN.md §16).
DEFAULT_ACK_DEADLINE_EPOCHS = 2


@dataclass(frozen=True)
class LedgerConfig:
    """Static configuration fixed at ledger creation."""

    uri: str = "ledger://default"
    fractal_height: int = 10  # fam delta (epoch capacity 2^delta)
    block_size: int = 16  # journals per committed block
    require_client_signature: bool = True
    #: Turn on the process-wide observability layer (DESIGN.md §10) when
    #: this ledger is created — equivalent to setting ``REPRO_OBS=1``.
    observability: bool = False
    #: Merkle node placement: ``"memory"`` keeps every MPT/CM-Tree node in a
    #: dict; ``"paged"`` stores them in an on-disk
    #: :class:`~repro.storage.pagestore.PagedNodeStore` under
    #: ``data_dir/nodes`` (§IV-B2's "bottom layers on disk").  Both backends
    #: produce byte-identical roots, proofs, and audit reports.
    node_store: str = "memory"
    #: LRU page-cache capacity (mmap'd pages) for the paged node store.
    cache_pages: int = 64
    #: Directory for durable state (journal stream, node pages, checkpoint
    #: snapshots).  Required for ``node_store="paged"``; when set and no
    #: explicit ``journal_stream`` is passed, journals land on a durable
    #: :class:`~repro.storage.stream.FileStream` in this directory.
    data_dir: str | None = None
    #: Hash-partition appends across this many per-shard ledgers under one
    #: composite root (DESIGN.md §15).  ``1`` is a plain single ledger; for
    #: ``shards > 1`` build the deployment through
    #: :class:`repro.shard.ShardedLedger` (or ``repro.api.create``, which
    #: routes there) — the :class:`Ledger` kernel itself stays single-shard.
    shards: int = 1


@dataclass(frozen=True)
class JournalEntryView:
    """One slot of an exported ledger view.

    ``data`` is the serialized journal, or ``None`` when the payload is gone
    (purged or occulted); ``retained_hash`` is always present — it is the fam
    leaf digest, which survives every mutation by design.
    """

    jsn: int
    data: bytes | None
    retained_hash: Digest
    occulted: bool
    purged: bool


@dataclass(frozen=True)
class LedgerView:
    """Everything an external (distrusting) auditor downloads.

    Contains no secrets: journal bytes, block headers, certificates, mutation
    records with their multi-signatures, time-journal evidence, and the
    pseudo-genesis (if any).  :mod:`repro.core.audit` consumes this.
    """

    uri: str
    fractal_height: int
    block_size: int
    entries: list[JournalEntryView]  # index 0 = jsn genesis_start
    genesis_start: int  # first jsn present (0, or pseudo-genesis purge point)
    blocks: list[Block]
    certificates: dict  # member_id -> Certificate
    ca_public_key: object  # PublicKey
    lsp_member_id: str
    latest_receipt: Receipt | None
    pseudo_genesis: PseudoGenesis | None
    purge_approvals: list[tuple[int, PurgeRecord, MultiSignature]]
    occult_approvals: list[tuple[int, OccultRecord, MultiSignature]]
    time_evidence: dict  # jsn -> TimeEvidence | TimeStampToken

    def entry(self, jsn: int) -> JournalEntryView:
        index = jsn - self.genesis_start
        if not 0 <= index < len(self.entries):
            raise JournalNotFoundError(jsn)
        return self.entries[index]


def _dump_multisig(sig: MultiSignature) -> dict:
    return {
        "digest": sig.digest,
        "signers": {mid: s.to_bytes() for mid, s in sorted(sig.signatures.items())},
    }


def _load_multisig(obj: dict) -> MultiSignature:
    sig = MultiSignature(digest=bytes(obj["digest"]))
    for member_id, raw in obj["signers"].items():
        sig.signatures[str(member_id)] = Signature.from_bytes(bytes(raw))
    return sig


def _make_node_store(config: LedgerConfig) -> KVStore | None:
    """Build the Merkle-node backend ``config`` asks for (None = in-memory)."""
    if config.node_store == "memory":
        return None
    if config.node_store == "paged":
        if not config.data_dir:
            raise UsageError('node_store="paged" requires LedgerConfig(data_dir=...)')
        return PagedNodeStore(
            Path(config.data_dir) / NODES_DIR, cache_pages=config.cache_pages
        )
    raise UsageError(f"unknown node_store backend: {config.node_store!r}")


class Ledger:
    """A LedgerDB instance (the LSP's server-side state)."""

    def __init__(
        self,
        config: LedgerConfig | None = None,
        clock: Clock | None = None,
        registry: MemberRegistry | None = None,
        lsp_keypair: KeyPair | None = None,
        journal_stream: Stream | None = None,
        node_store: KVStore | None = None,
    ) -> None:
        self.config = config or LedgerConfig()
        if self.config.shards != 1:
            raise UsageError(
                f"the Ledger kernel is single-shard; build a "
                f"LedgerConfig(shards={self.config.shards}) deployment through "
                f"repro.shard.ShardedLedger (or repro.api.create)"
            )
        if self.config.observability:
            obs.enable()
        self.clock = clock or SimClock()
        self.registry = registry or MemberRegistry()
        self._lsp_keypair = lsp_keypair or KeyPair.generate(seed=f"lsp:{self.config.uri}")
        # N in-process ledgers (e.g. the shards of one deployment) may share
        # one MemberRegistry and one LSP identity; re-registering the same
        # key is a no-op, a *different* key under the reserved id is refused.
        if LSP_MEMBER_ID in self.registry.all_members():
            registered = self.registry.public_key(LSP_MEMBER_ID)
            if registered.to_bytes() != self._lsp_keypair.public.to_bytes():
                raise UsageError(
                    "the shared registry already certifies a different LSP "
                    "key; ledgers sharing a registry must share the LSP "
                    "keypair (pass lsp_keypair=...)"
                )
        else:
            self.registry.register(LSP_MEMBER_ID, Role.LSP, self._lsp_keypair.public)

        data_dir = Path(self.config.data_dir) if self.config.data_dir else None
        if data_dir is not None:
            data_dir.mkdir(parents=True, exist_ok=True)
            if journal_stream is None:
                journal_stream = FileStream(data_dir / JOURNAL_FILE, durable=True)
        self._stream = journal_stream if journal_stream is not None else MemoryStream()
        if len(self._stream) > 0:
            raise UsageError(
                "journal stream is not empty — this looks like an existing "
                "ledger; reopen it with Ledger.open(...) instead of creating "
                "a new one on top"
            )
        #: What the stream's open-time scan did to a crashed tail (an
        #: OpenReport for FileStream backends, None otherwise).
        self.recovery_report = getattr(self._stream, "open_report", None)
        self._survival_stream = MemoryStream()
        # An explicit node_store (e.g. a fault-injecting store in tests)
        # overrides what the config would build.
        self._node_store = (
            node_store if node_store is not None else _make_node_store(self.config)
        )
        if data_dir is not None:
            write_config_file(data_dir / CONFIG_FILE, self.config)
        self._fam = FamAccumulator(self.config.fractal_height)
        self._cmtree = CMTree(self._node_store)
        self._cluesl = ClueSkipList()
        self._blocks: list[Block] = []
        self._pending_start = 0  # first jsn not yet sealed in a block

        self._occult_bitmap = OccultBitmap()
        self._occult_records: list[tuple[int, OccultRecord, MultiSignature]] = []
        self._erase_queue: list[int] = []  # async occult backlog
        self._purge_records: list[tuple[int, PurgeRecord, MultiSignature]] = []
        self._pseudo_genesis: PseudoGenesis | None = None
        self._genesis_start = 0  # first retrievable jsn (moves on purge)
        self._survivors: dict[int, int] = {}  # jsn -> survival stream offset

        self._time_journals: list[int] = []
        self._time_evidence: dict[int, TimeEvidence | TimeStampToken] = {}
        self._tledger: TimeLedger | None = None
        self._tsa: TimeStampAuthority | TSAPool | None = None
        self._pending_tledger: list[tuple[int, int]] = []  # (time jsn, notary seq)

        self._latest_receipt: Receipt | None = None
        self._receipts: dict[int, Receipt] = {}
        self._anchor_cache: AnchorStore = AnchorStore()
        self._anchor_cache_epochs = 0  # completed epochs already seeded

        #: Stamped by ShardedLedger so per-shard heads are distinguishable
        #: (shards share the deployment uri and LSP key).
        self.sth_shard_index = SOLO_SHARD
        self._sth_store = SthStore((data_dir / STH_FILE) if data_dir else None)
        self._sth_cache: dict[int, SignedTreeHead] = {}
        self._sth_epochs = self._fam.num_epochs

        self._append_genesis()

    # ------------------------------------------------------------- creation

    @classmethod
    def create(cls, uri: str, **kwargs) -> "Ledger":
        """The Create API: a fresh ledger with a genesis journal."""
        config = kwargs.pop("config", None) or LedgerConfig(uri=uri)
        if config.uri != uri:
            raise LedgerError("config uri does not match")
        return cls(config=config, **kwargs)

    @classmethod
    def recover(
        cls,
        config: LedgerConfig,
        journal_stream: Stream,
        registry: MemberRegistry,
        lsp_keypair: KeyPair,
        clock: Clock | None = None,
        node_store: KVStore | None = None,
    ) -> "Ledger":
        """Rebuild a ledger from its durable journal stream.

        Every derived structure — fam accumulator, CM-Tree, cSL index,
        blocks, occult bitmap, purge state — is reconstructed by replaying
        the stream.  Mutation state recovers from the *system journals on
        the ledger itself*: occult journals re-set the bitmap, the last
        purge journal re-installs its recorded state.  Erased slots
        (purged/occulted payloads) contribute their digests via the
        adjacent mutation records, which is exactly Protocol 1/2 replayed.

        The registry and LSP key pair are deployment secrets/PKI state kept
        outside the stream (as in any real system) and must be supplied.

        Crash handling: a durable :class:`~repro.storage.stream.FileStream`
        already rolled back any torn or uncommitted tail when it was opened
        (DESIGN.md §9), so this replay sees only committed records — the
        recovered ledger is the exact pre-crash commit point.  What the
        stream did to the tail is surfaced as :attr:`recovery_report`
        (``None`` for backends without an open-time scan) so operators can
        log how many in-flight records a crash rolled back; corruption
        surfaces from the stream itself as ``StreamCorruptionError``, and
        states the stream alone cannot rebuild raise :class:`RecoveryError`.

        A fresh receipt for the last journal is issued after recovery so
        clients and audits have a current pi_s.
        """
        if len(journal_stream) == 0:
            raise RecoveryError("cannot recover from an empty stream")
        ledger = cls.__new__(cls)
        ledger.config = config
        ledger.clock = clock or SimClock()
        ledger.registry = registry
        ledger._lsp_keypair = lsp_keypair
        if LSP_MEMBER_ID not in registry.all_members():
            registry.register(LSP_MEMBER_ID, Role.LSP, lsp_keypair.public)

        ledger._stream = journal_stream
        ledger.recovery_report = getattr(journal_stream, "open_report", None)
        ledger._survival_stream = MemoryStream()
        ledger._node_store = node_store
        ledger._fam = FamAccumulator(config.fractal_height)
        ledger._cmtree = CMTree(node_store)
        ledger._cluesl = ClueSkipList()
        ledger._blocks = []
        ledger._pending_start = 0
        ledger._occult_bitmap = OccultBitmap()
        ledger._occult_records = []
        ledger._erase_queue = []
        ledger._purge_records = []
        ledger._pseudo_genesis = None
        ledger._genesis_start = 0
        ledger._survivors = {}
        ledger._time_journals = []
        ledger._time_evidence = {}
        ledger._tledger = None
        ledger._tsa = None
        ledger._pending_tledger = []
        ledger._latest_receipt = None
        ledger._receipts = {}
        ledger._anchor_cache = AnchorStore()
        ledger._anchor_cache_epochs = 0
        recover_dir = Path(config.data_dir) if config.data_dir else None
        ledger.sth_shard_index = SOLO_SHARD
        ledger._sth_store = SthStore(
            (recover_dir / STH_FILE) if recover_dir else None
        )
        ledger._sth_cache = {}
        ledger._sth_epochs = 1

        # Pass 1: collect mutation records from intact system journals, so
        # erased slots' digests can be sourced during the replay.
        occult_by_target: dict[int, OccultRecord] = {}
        for offset in range(len(journal_stream)):
            if journal_stream.is_erased(offset):
                continue
            journal = Journal.from_bytes(journal_stream.read(offset))
            if journal.journal_type is JournalType.OCCULT:
                record = OccultRecord.from_bytes(journal.payload)
                occult_by_target[record.target_jsn] = record

        # Pass 2: sequential replay.
        for jsn in range(len(journal_stream)):
            erased = journal_stream.is_erased(jsn)
            if erased:
                record = occult_by_target.get(jsn)
                if record is None:
                    # Purged slot: its digest is irrecoverable from the
                    # stream alone — purge recovery needs the pseudo-genesis
                    # snapshot, which lives outside the journal stream.
                    raise RecoveryError(
                        f"slot {jsn} was purged; recovery from the stream "
                        "alone is only supported for unpurged ledgers"
                    )
                ledger._fam.append(record.retained_hash)
                ledger._occult_bitmap.set(jsn)
                for clue in record.retained_clues:
                    ledger._cmtree.add(clue, record.retained_hash)
                    ledger._cluesl.insert(clue, jsn)
                continue
            journal = Journal.from_bytes(journal_stream.read(jsn))
            if journal.jsn != jsn:
                raise RecoveryError(
                    f"stream corrupt: slot {jsn} holds jsn {journal.jsn}"
                )
            tx_hash = journal.tx_hash()
            ledger._fam.append(tx_hash)
            for clue in journal.clues:
                ledger._cmtree.add(clue, tx_hash)
                ledger._cluesl.insert(clue, jsn)
            if journal.journal_type is JournalType.TIME:
                ledger._time_journals.append(jsn)
            elif journal.journal_type is JournalType.OCCULT:
                record = OccultRecord.from_bytes(journal.payload)
                ledger._occult_records.append(
                    (jsn, record, MultiSignature(digest=record.approval_digest()))
                )
            elif journal.journal_type is JournalType.PURGE:
                precord = PurgeRecord.from_bytes(journal.payload)
                ledger._purge_records.append(
                    (jsn, precord, MultiSignature(digest=precord.approval_digest()))
                )
                ledger._genesis_start = max(ledger._genesis_start, precord.purge_point)
            if (jsn + 1) % config.block_size == 0:
                ledger._seal_recovered_block(jsn + 1)
        ledger._pending_start = (len(journal_stream) // config.block_size) * config.block_size
        ledger.commit_block()
        # Replay appended straight onto the fam, bypassing _commit's STH
        # emission; re-arm the epoch watermark at the recovered position.
        ledger._sth_epochs = ledger._fam.num_epochs

        # Re-issue a current receipt so clients/audits have a fresh pi_s.
        last = ledger._fam.size - 1
        receipt = Receipt(
            ledger_uri=config.uri,
            jsn=last,
            request_hash=EMPTY_DIGEST,
            tx_hash=ledger._fam.leaf_digest(last),
            block_hash=ledger._blocks[-1].hash() if ledger._blocks else EMPTY_DIGEST,
            block_height=len(ledger._blocks) - 1,
            ledger_root=ledger._fam.current_root(),
            timestamp=ledger.clock.now(),
        ).signed_by(lsp_keypair)
        ledger._latest_receipt = receipt
        ledger._receipts[last] = receipt
        return ledger

    def _seal_recovered_block(self, end_jsn: int) -> None:
        block = Block(
            height=len(self._blocks),
            previous_hash=self._blocks[-1].hash() if self._blocks else EMPTY_DIGEST,
            start_jsn=self._pending_start,
            end_jsn=end_jsn,
            journal_root=self._fam.current_root(),
            state_root=self._cmtree.root,
            timestamp=self.clock.now(),
        )
        self._blocks.append(block)
        self._pending_start = end_jsn

    def _append_genesis(self) -> None:
        payload = encode({"uri": self.config.uri, "created_at": self.clock.now()})
        self._append_system(JournalType.GENESIS, payload)

    # --------------------------------------------------------------- append

    def append(self, request: ClientRequest) -> Receipt:
        """The Append API (Figure 1): admit a signed client transaction.

        Validates the client's certificate and pi_c signature before anything
        is written (the threat-A defence), commits the journal, and returns
        the LSP-signed receipt pi_s.
        """
        with obs.span("ledger.append"):
            if request.ledger_uri != self.config.uri:
                raise AuthenticationError(
                    f"request targets {request.ledger_uri!r}, this ledger is "
                    f"{self.config.uri!r}"
                )
            certificate = self.registry.certificate(request.client_id)
            if self.config.require_client_signature:
                if request.signature is None:
                    raise AuthenticationError("request is unsigned")
                if not certificate.public_key.verify(request.request_hash(), request.signature):
                    raise AuthenticationError(
                        f"invalid signature from {request.client_id!r}"
                    )
            if request.journal_type not in (JournalType.NORMAL,):
                raise AuthenticationError(
                    f"clients may only append normal journals, not "
                    f"{request.journal_type.value!r}"
                )
            return self._commit(request)

    def append_batch(
        self, requests: list[ClientRequest], max_workers: int | None = None
    ) -> list[Receipt]:
        """Admit many client transactions in one amortised pass.

        Produces state and receipts **byte-identical** to calling
        :meth:`append` once per request in order (same clock), but batches
        the expensive work:

        * phase 1 — *admission*: every certificate and pi_c signature is
          validated before anything is written, so a single bad request
          rejects the whole batch with the ledger untouched.  Public keys
          appearing more than once are table-precomputed first; with
          ``max_workers`` the signature checks fan out over threads (pure
          Python stays GIL-bound — the option exists for subinterpreter /
          free-threaded builds and keeps the API shape of the paper's
          pipelined verifier).
        * phase 2 — *commit*: one stream write (one fsync on durable
          streams), per-clue grouped CM-Tree insertion flushed at each block
          boundary, and fam/receipt work per journal.  Block seals land at
          exactly the jsns sequential appends would produce.
        """
        if not requests:
            return []
        with obs.span("ledger.append_batch") as span:
            span.add("journals", len(requests))
            with obs.span("ledger.admission"):
                self._admit_batch(requests, max_workers)
            with obs.span("ledger.commit_batch"):
                return self._commit_batch(requests)

    def admit(self, request: ClientRequest) -> None:
        """Run :meth:`append`'s admission checks without committing anything.

        Validates the target uri, the member certificate, the pi_c signature
        and the journal type exactly as :meth:`append` would; on success the
        ledger is untouched and the request would be accepted.  The group-
        commit front end (:mod:`repro.service`) uses this to isolate the
        offending request when a coalesced batch is rejected.

        Raises:
            AuthenticationError: the request would be rejected at admission.
        """
        self._admit_batch([request], None)

    def _admit_batch(
        self, requests: list[ClientRequest], max_workers: int | None
    ) -> None:
        """Phase 1 of :meth:`append_batch`: authenticate every request."""
        certificates = []
        for request in requests:
            if request.ledger_uri != self.config.uri:
                raise AuthenticationError(
                    f"request targets {request.ledger_uri!r}, this ledger is "
                    f"{self.config.uri!r}"
                )
            certificates.append(self.registry.certificate(request.client_id))
        if self.config.require_client_signature:
            for request in requests:
                if request.signature is None:
                    raise AuthenticationError("request is unsigned")
            counts: dict[str, int] = {}
            for request in requests:
                counts[request.client_id] = counts.get(request.client_id, 0) + 1
            warmed: set[str] = set()
            for request, certificate in zip(requests, certificates):
                if counts[request.client_id] > 1 and request.client_id not in warmed:
                    warmed.add(request.client_id)
                    try:
                        certificate.public_key.precompute()
                    except ValueError:
                        pass  # invalid key: the verify below rejects it
            checks = [
                (certificate.public_key, request.request_hash(), request.signature)
                for request, certificate in zip(requests, certificates)
            ]
            if max_workers is not None and max_workers > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    results = list(
                        pool.map(lambda c: c[0].verify(c[1], c[2]), checks)
                    )
            else:
                results = verify_batch(checks)
            for request, ok in zip(requests, results):
                if not ok:
                    raise AuthenticationError(
                        f"invalid signature from {request.client_id!r}"
                    )
        for request in requests:
            if request.journal_type not in (JournalType.NORMAL,):
                raise AuthenticationError(
                    f"clients may only append normal journals, not "
                    f"{request.journal_type.value!r}"
                )

    def _commit_batch(self, requests: list[ClientRequest]) -> list[Receipt]:
        """Phase 2 of :meth:`append_batch`: write, accumulate, sign."""
        start_jsn = self._fam.size
        journals = [
            Journal(
                jsn=start_jsn + index,
                journal_type=request.journal_type,
                client_id=request.client_id,
                payload=request.payload,
                clues=request.clues,
                timestamp=self.clock.now(),
                nonce=request.nonce,
                request_hash=request.request_hash(),
                client_signature=request.signature,
            )
            for index, request in enumerate(requests)
        ]
        offsets = self._stream.append_many([journal.to_bytes() for journal in journals])
        if offsets != list(range(start_jsn, start_jsn + len(journals))):
            raise IntegrityError(
                f"journal stream desynchronised from fam: batch offsets start "
                f"at {offsets[0]}, expected jsn {start_jsn}"
            )
        unsigned: list[Receipt] = []
        # Per-clue digests awaiting their (single) CM-Tree1 refresh, in first-
        # seen order so final MPT state matches the sequential interleaving.
        pending_clues: dict[str, list[Digest]] = {}
        block_size = self.config.block_size
        for journal in journals:
            jsn = journal.jsn
            tx_hash = journal.tx_hash()
            self._fam.append(tx_hash)
            for clue in journal.clues:
                pending_clues.setdefault(clue, []).append(tx_hash)
                self._cluesl.insert(clue, jsn)
            if jsn + 1 - self._pending_start >= block_size:
                for clue, digests in pending_clues.items():
                    self._cmtree.add_many(clue, digests)
                pending_clues.clear()
                self.commit_block()
            unsigned.append(
                Receipt(
                    ledger_uri=self.config.uri,
                    jsn=jsn,
                    request_hash=journal.request_hash,
                    tx_hash=tx_hash,
                    block_hash=self._blocks[-1].hash() if self._blocks else EMPTY_DIGEST,
                    block_height=len(self._blocks) - 1,
                    ledger_root=self._fam.current_root(),
                    timestamp=journal.timestamp,
                )
            )
        for clue, digests in pending_clues.items():
            self._cmtree.add_many(clue, digests)
        self._emit_epoch_heads()
        # pi_s issuance: every receipt's payload is frozen above, so the LSP
        # signatures batch into one shared-inversion pass.
        receipts = Receipt.sign_batch(unsigned, self._lsp_keypair)
        for receipt in receipts:
            self._receipts[receipt.jsn] = receipt
        self._latest_receipt = receipts[-1]
        return receipts

    def _append_system(
        self,
        journal_type: JournalType,
        payload: bytes,
        clues: tuple[str, ...] = (),
    ) -> Receipt:
        """Append an LSP-issued system journal (genesis/time/purge/occult)."""
        request = ClientRequest.build(
            ledger_uri=self.config.uri,
            client_id=LSP_MEMBER_ID,
            payload=payload,
            clues=clues,
            nonce=len(self).to_bytes(8, "big"),
            client_timestamp=self.clock.now(),
            journal_type=journal_type,
        ).signed_by(self._lsp_keypair)
        return self._commit(request)

    def _commit(self, request: ClientRequest) -> Receipt:
        with obs.span("ledger.commit"):
            jsn = self._fam.size
            journal = Journal(
                jsn=jsn,
                journal_type=request.journal_type,
                client_id=request.client_id,
                payload=request.payload,
                clues=request.clues,
                timestamp=self.clock.now(),
                nonce=request.nonce,
                request_hash=request.request_hash(),
                client_signature=request.signature,
            )
            data = journal.to_bytes()
            tx_hash = journal.tx_hash()
            offset = self._stream.append(data)
            if offset != jsn:
                raise IntegrityError(
                    f"journal stream desynchronised from fam: stream offset "
                    f"{offset}, expected jsn {jsn}"
                )
            self._fam.append(tx_hash)
            self._emit_epoch_heads()
            for clue in journal.clues:
                self._cmtree.add(clue, tx_hash)
                self._cluesl.insert(clue, jsn)
            if journal.journal_type == JournalType.TIME:
                self._time_journals.append(jsn)
            if jsn + 1 - self._pending_start >= self.config.block_size:
                self.commit_block()
            receipt = Receipt(
                ledger_uri=self.config.uri,
                jsn=jsn,
                request_hash=journal.request_hash,
                tx_hash=tx_hash,
                block_hash=self._blocks[-1].hash() if self._blocks else EMPTY_DIGEST,
                block_height=len(self._blocks) - 1,
                ledger_root=self._fam.current_root(),
                timestamp=journal.timestamp,
            ).signed_by(self._lsp_keypair)
            self._latest_receipt = receipt
            self._receipts[jsn] = receipt
            return receipt

    def commit_block(self) -> Block | None:
        """Seal all unsealed journals into a block (auto-run by append)."""
        end_jsn = self._fam.size
        if end_jsn <= self._pending_start:
            return None
        block = Block(
            height=len(self._blocks),
            previous_hash=self._blocks[-1].hash() if self._blocks else EMPTY_DIGEST,
            start_jsn=self._pending_start,
            end_jsn=end_jsn,
            journal_root=self._fam.current_root(),
            state_root=self._cmtree.root,
            timestamp=self.clock.now(),
        )
        self._blocks.append(block)
        self._pending_start = end_jsn
        if self._node_store is not None:
            # Write-behind discipline: dirty Merkle nodes hit disk at block
            # boundaries, matching the journal stream's durability horizon.
            self._node_store.flush()
        return block

    # ----------------------------------------------------------------- reads

    def __len__(self) -> int:
        """Total journals ever appended (including mutated ones)."""
        return self._fam.size

    @property
    def size(self) -> int:
        return self._fam.size

    @property
    def blocks(self) -> list[Block]:
        return list(self._blocks)

    @property
    def latest_receipt(self) -> Receipt | None:
        return self._latest_receipt

    def receipt_for(self, jsn: int) -> Receipt | None:
        return self._receipts.get(jsn)

    @property
    def pseudo_genesis(self) -> PseudoGenesis | None:
        return self._pseudo_genesis

    @property
    def genesis_start(self) -> int:
        """First retrievable jsn (0 until a purge moves it)."""
        return self._genesis_start

    def get_journal(self, jsn: int) -> Journal:
        """The GetJournal API.

        Raises :class:`JournalPurgedError` / :class:`JournalOccultedError`
        when the payload is gone by mutation — callers can still obtain the
        retained digest via :meth:`retained_hash`.
        """
        if not 0 <= jsn < self._fam.size:
            raise JournalNotFoundError(jsn)
        if jsn < self._genesis_start:
            if jsn in self._survivors:
                return Journal.from_bytes(self._survival_stream.read(self._survivors[jsn]))
            raise JournalPurgedError(jsn)
        if self._occult_bitmap.test(jsn):
            raise JournalOccultedError(jsn)
        try:
            return Journal.from_bytes(self._stream.read(jsn))
        except RecordErasedError:
            raise JournalPurgedError(jsn) from None

    def retained_hash(self, jsn: int) -> Digest:
        """The journal's tx-hash, retrievable regardless of mutation state."""
        if not 0 <= jsn < self._fam.size:
            raise JournalNotFoundError(jsn)
        try:
            return self._fam.leaf_digest(jsn)
        except KeyError:
            for _occult_jsn, record, _sig in self._occult_records:
                if record.target_jsn == jsn:
                    return record.retained_hash
            raise JournalPurgedError(jsn) from None

    def is_occulted(self, jsn: int) -> bool:
        return self._occult_bitmap.test(jsn)

    def list_tx(self, clue: str) -> list[int]:
        """The ListTx API: jsns carrying ``clue`` (cSL lookup, O(log n))."""
        return self._cluesl.get(clue)

    def iter_journals(self, start: int | None = None, stop: int | None = None):
        """Yield retrievable journals in ``[start, stop)`` (skips mutated)."""
        lo = self._genesis_start if start is None else max(start, self._genesis_start)
        hi = self._fam.size if stop is None else min(stop, self._fam.size)
        for jsn in range(lo, hi):
            try:
                yield self.get_journal(jsn)
            except (JournalOccultedError, JournalPurgedError):
                continue

    def journals_by_member(self, member_id: str) -> list[int]:
        """jsns of retrievable journals issued by ``member_id`` (scan)."""
        return [j.jsn for j in self.iter_journals() if j.client_id == member_id]

    def journals_in_time_range(self, low: float, high: float) -> list[int]:
        """jsns committed with server timestamps in ``[low, high)``.

        Server timestamps are non-authoritative (use Dasein *when*
        verification for credible bounds); this is the operational query —
        e.g. scoping an audit's temporal predicate.
        """
        return [j.jsn for j in self.iter_journals() if low <= j.timestamp < high]

    def clues_in_range(self, low: str, high: str) -> list[tuple[str, list[int]]]:
        """Ordered clue-range scan over the cSL index."""
        return list(self._cluesl.range(low, high))

    def block_of(self, jsn: int) -> Block | None:
        """The committed block containing ``jsn`` (None if still pending)."""
        for block in self._blocks:
            if block.contains_jsn(jsn):
                return block
        return None

    def clue_entry_count(self, clue: str) -> int:
        return self._cmtree.entry_count(clue)

    # -------------------------------------------------------------- proving

    def get_proof(self, jsn: int, anchored: bool = True) -> FamProof:
        """The GetProof API: fam existence proof for one journal."""
        with obs.span("ledger.get_proof"):
            return self._fam.get_proof(jsn, anchored=anchored)

    def get_proofs(self, jsns: list[int], anchored: bool = True) -> list[FamProof]:
        """Bulk GetProof: byte-identical to N single calls, but link chains to
        the current epoch are computed once per distinct epoch and shared."""
        with obs.span("ledger.get_proofs") as sp:
            sp.add("journals", len(jsns))
            return self._fam.get_proofs(jsns, anchored=anchored)

    def current_root(self) -> Digest:
        return self._fam.current_root()

    def state_root(self) -> Digest:
        return self._cmtree.root

    def epoch_anchors(self) -> AnchorStore:
        """Anchor store seeded with every completed epoch root (server-trusting).

        The store is cached and topped up incrementally: epochs only ever
        *close* (completed roots are immutable, and purge keeps them for the
        merged-leaf links), so the cache is extended by exactly the epochs
        that closed since the last call instead of rescanning all of them.
        The returned store is shared — treat it as read-only, or build a
        private one from :meth:`FamAccumulator.epoch_root` directly.
        """
        completed = self._fam.num_epochs - 1
        if self._anchor_cache_epochs < completed:
            obs.inc("ledger.epoch_anchors.refresh")
            for epoch in range(self._anchor_cache_epochs, completed):
                self._anchor_cache.add(epoch, self._fam.epoch_root(epoch))
            self._anchor_cache_epochs = completed
        else:
            obs.inc("ledger.epoch_anchors.hit")
        return self._anchor_cache

    def verify_journal(self, journal: Journal, proof: FamProof | None = None) -> bool:
        """Server-side *what* verification of a presented journal."""
        with obs.span("ledger.verify_journal"):
            if proof is None:
                try:
                    proof = self.get_proof(journal.jsn, anchored=False)
                except (IndexError, KeyError):
                    return False
            if proof.link_proofs:
                return FamAccumulator.verify_full(
                    journal.tx_hash(), proof, self.current_root()
                )
            anchors = self.epoch_anchors()
            return self._fam.verify_with_anchors(journal.tx_hash(), proof, anchors)

    def prove_clue(
        self, clue: str, version_start: int = 0, version_end: int | None = None
    ) -> ClueProof:
        """Build the client-side clue proof set (§IV-C, Verify API)."""
        return self._cmtree.prove_clue(clue, version_start, version_end)

    def verify_clue(self, clue: str, journals: list[Journal]) -> bool:
        """Server-side clue verification: all entries, in order, untampered."""
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        if len(digests) != self._cmtree.entry_count(clue):
            return False
        return self._cmtree.verify_clue_server(clue, digests)

    # --------------------------------------------- transparency (DESIGN §16)

    @property
    def lsp_public_key(self):
        """The LSP's public key — the trust anchor every head verifies against."""
        return self._lsp_keypair.public

    def _make_sth(
        self, epoch: int, tree_size: int, live_size: int, root: Digest
    ) -> SignedTreeHead:
        return SignedTreeHead(
            ledger_uri=self.config.uri,
            epoch=epoch,
            tree_size=tree_size,
            live_size=live_size,
            root=root,
            timestamp=self.clock.now(),
            fractal_height=self.config.fractal_height,
            shard_index=self.sth_shard_index,
        ).signed_by(self._lsp_keypair)

    def _emit_epoch_heads(self) -> None:
        """Mint and store one head per epoch roll since the last commit.

        Each stored head pins the moment its epoch became live: one merged
        leaf (Rule 1), zero journals of its own.  ``tree_size`` at that
        instant is determined by the fractal geometry — epoch 0 holds
        ``capacity`` journals, every later epoch ``capacity - 1`` (leaf 0 is
        the merged root, not a journal).
        """
        capacity = self._fam.epoch_capacity
        while self._sth_epochs < self._fam.num_epochs:
            epoch = self._sth_epochs
            head = self._make_sth(
                epoch=epoch,
                tree_size=capacity + (epoch - 1) * (capacity - 1),
                live_size=1,
                root=self._fam.head_root(epoch, 1),
            )
            self._sth_store.append(head)
            obs.inc("transparency.sth.emitted")
            self._sth_epochs = epoch + 1

    def get_sth(self) -> SignedTreeHead:
        """A fresh LSP-signed tree head for the current fam state."""
        tree_size = self._fam.size
        root = self._fam.current_root()
        cached = self._sth_cache.get(tree_size)
        if (
            cached is not None
            and cached.root == root
            and cached.shard_index == self.sth_shard_index
        ):
            return cached
        epoch = self._fam.num_epochs - 1
        head = self._make_sth(
            epoch=epoch,
            tree_size=tree_size,
            live_size=self._fam.live_size(epoch),
            root=root,
        )
        self._sth_cache.clear()
        self._sth_cache[tree_size] = head
        obs.inc("transparency.sth.served")
        return head

    def get_sth_range(self, start: int, end: int) -> list[SignedTreeHead]:
        """Stored epoch-close heads with ``start <= epoch < end``."""
        if start < 0 or end < start:
            raise UsageError(f"invalid STH epoch range [{start}, {end})")
        return self._sth_store.range(start, end)

    def get_consistency(
        self, old: SignedTreeHead, new: SignedTreeHead
    ) -> tuple[ConsistencyBundle, ConsistencyAssertion]:
        """Prove ``new`` append-only-extends ``old``, and sign the claim.

        The bundle is built from this ledger's own accumulator; the
        assertion signs this ledger's *own* roots at the requested
        coordinates (echoing the heads' claimed tree sizes).  An honest
        server's assertion therefore always agrees with its signed heads; a
        forked server asked to connect a head from the other fork signs a
        contradiction — offline-verifiable equivocation evidence.
        """
        with obs.span("ledger.get_consistency"):
            if old.is_composite or new.is_composite:
                raise UsageError(
                    "composite heads carry no epoch tree; request per-shard "
                    "consistency instead"
                )
            fam = self._fam
            try:
                bundle = ConsistencyBundle.build(
                    fam, old.epoch, old.live_size, new.epoch, new.live_size
                )
                assertion = ConsistencyAssertion(
                    ledger_uri=self.config.uri,
                    shard_index=self.sth_shard_index,
                    fractal_height=self.config.fractal_height,
                    old_epoch=old.epoch,
                    old_tree_size=old.tree_size,
                    old_live_size=old.live_size,
                    old_root=fam.head_root(old.epoch, old.live_size),
                    new_epoch=new.epoch,
                    new_tree_size=new.tree_size,
                    new_live_size=new.live_size,
                    new_root=fam.head_root(new.epoch, new.live_size),
                    timestamp=self.clock.now(),
                ).signed_by(self._lsp_keypair)
            except (ValueError, IndexError) as exc:
                raise UsageError(f"cannot connect heads: {exc}") from exc
            obs.inc("transparency.consistency.served")
            return bundle, assertion

    def issue_ack(
        self,
        request: ClientRequest,
        deadline_epochs: int = DEFAULT_ACK_DEADLINE_EPOCHS,
    ) -> SubmissionAck:
        """Sign the LSP's promise to include ``request`` within the deadline."""
        if deadline_epochs < 1:
            raise UsageError("ack deadline must be at least one epoch")
        if request.ledger_uri != self.config.uri:
            raise UsageError(
                f"request addressed to {request.ledger_uri!r}, not this "
                f"ledger ({self.config.uri!r})"
            )
        obs.inc("transparency.acks.issued")
        return SubmissionAck(
            ledger_uri=self.config.uri,
            request_hash=request.request_hash(),
            epoch=self._fam.num_epochs - 1,
            tree_size=self._fam.size,
            deadline_epochs=deadline_epochs,
            timestamp=self.clock.now(),
            shard_index=self.sth_shard_index,
        ).signed_by(self._lsp_keypair)

    # -------------------------------------------------------- time anchoring

    def attach_time_ledger(self, tledger: TimeLedger) -> None:
        self._tledger = tledger

    def attach_tsa(self, tsa: TimeStampAuthority | TSAPool) -> None:
        self._tsa = tsa

    def anchor_time(self) -> int:
        """Anchor the current fam root for *when* evidence; returns the
        resulting time journal's jsn.

        T-Ledger mode submits under Protocol 4 (evidence completes at the
        next finalization — call :meth:`collect_time_evidence` after Δτ);
        direct-TSA mode runs the two-way peg synchronously (Protocol 3).
        """
        root = self._fam.current_root()
        as_of = self._fam.size
        if self._tledger is not None:
            notary_receipt = self._tledger.submit(
                self.config.uri, root, client_timestamp=self.clock.now()
            )
            payload = encode(
                {
                    "mode": "tledger",
                    "seq": notary_receipt.seq,
                    "anchored_root": root,
                    "as_of_jsn": as_of,
                    "notary_timestamp": notary_receipt.notary_timestamp,
                }
            )
            receipt = self._append_system(JournalType.TIME, payload)
            self._pending_tledger.append((receipt.jsn, notary_receipt.seq))
            return receipt.jsn
        if self._tsa is not None:
            token = self._tsa.stamp(root)
            payload = encode(
                {
                    "mode": "tsa",
                    "anchored_root": root,
                    "as_of_jsn": as_of,
                    "timestamp": token.timestamp,
                    "tsa_id": token.tsa_id,
                    "signature": token.signature.to_bytes(),
                }
            )
            receipt = self._append_system(JournalType.TIME, payload)
            self._time_evidence[receipt.jsn] = token
            return receipt.jsn
        raise LedgerError("no TSA or T-Ledger attached; cannot anchor time")

    def collect_time_evidence(self) -> int:
        """Fetch finalized T-Ledger evidence for pending anchors.

        Returns how many anchors were completed this call.
        """
        if self._tledger is None:
            return 0
        completed = 0
        still_pending: list[tuple[int, int]] = []
        for time_jsn, seq in self._pending_tledger:
            try:
                evidence = self._tledger.get_evidence(seq)
            except LookupError:
                still_pending.append((time_jsn, seq))
                continue
            self._time_evidence[time_jsn] = evidence
            completed += 1
        self._pending_tledger = still_pending
        return completed

    def refresh_time_evidence(self) -> int:
        """Re-fetch evidence for time journals that lack it (recovery path).

        TSA-mode tokens are reconstructed from the journal payloads
        themselves; T-Ledger-mode evidence is re-downloaded from the
        attached public T-Ledger (Prerequisite 4: anyone can).  Returns how
        many time journals gained evidence.
        """
        from ..crypto.ecdsa import Signature
        from ..encoding import decode as _decode

        refreshed = 0
        for jsn in self._time_journals:
            if jsn in self._time_evidence or jsn < self._genesis_start:
                continue
            try:
                journal = self.get_journal(jsn)
            except LedgerError:
                continue
            info = _decode(journal.payload)
            if info["mode"] == "tsa":
                self._time_evidence[jsn] = TimeStampToken(
                    digest=bytes(info["anchored_root"]),
                    timestamp=info["timestamp"],
                    tsa_id=info["tsa_id"],
                    signature=Signature.from_bytes(bytes(info["signature"])),
                )
                refreshed += 1
            elif info["mode"] == "tledger" and self._tledger is not None:
                try:
                    evidence = self._tledger.get_evidence(info["seq"])
                except (LookupError, IndexError):
                    continue
                if evidence.entry.digest != bytes(info["anchored_root"]):
                    continue  # not our submission: refuse silently-wrong data
                self._time_evidence[jsn] = evidence
                refreshed += 1
        return refreshed

    @property
    def time_journals(self) -> list[int]:
        return list(self._time_journals)

    def time_evidence_for(self, time_jsn: int) -> TimeEvidence | TimeStampToken | None:
        return self._time_evidence.get(time_jsn)

    # ----------------------------------------------------------------- purge

    def prepare_purge(
        self,
        purge_point: int,
        erase_fam_nodes: bool = False,
        survivors: tuple[int, ...] = (),
        reason: str = "",
    ) -> tuple[PseudoGenesis, PurgeRecord]:
        """Stage a purge: build the pseudo genesis and the record to sign.

        The caller must then gather Prerequisite-1 multi-signatures over
        ``record.approval_digest()`` (see :meth:`purge_required_signers`) and
        call :meth:`execute_purge`.
        """
        if not self._genesis_start < purge_point <= self._fam.size:
            raise MutationError(
                f"purge point {purge_point} must lie in "
                f"({self._genesis_start}, {self._fam.size}]"
            )
        boundary_block = next(
            (b for b in self._blocks if b.end_jsn == purge_point), None
        )
        if boundary_block is None:
            raise MutationError(
                f"purge point {purge_point} must align with a committed block "
                f"boundary (commit_block() first, or pick a sealed end_jsn)"
            )
        for jsn in survivors:
            if not self._genesis_start <= jsn < purge_point:
                raise MutationError(f"survivor jsn {jsn} is not in the purged range")
        # All snapshots are *as of the purge point*, not as of now, so the
        # pseudo genesis is exactly the state the purged prefix produced.
        epoch_roots, live_size, live_peaks = self._fam.snapshot_at(purge_point)
        clue_snapshot = []
        for clue in self._cluesl.clues():
            jsns = self._cluesl.get(clue)
            size_at = bisect.bisect_left(jsns, purge_point)
            if size_at > 0:
                clue_snapshot.append(self._cmtree.clue_snapshot_at(clue, size_at))
        original_genesis = self.retained_hash(0) if self._genesis_start == 0 else (
            self._pseudo_genesis.original_genesis_hash  # type: ignore[union-attr]
        )
        related = sorted(
            member
            for member in self.purge_required_signers(purge_point)
        )
        pseudo = PseudoGenesis(
            purge_point=purge_point,
            fam_root=self._fam.root_at(purge_point),
            state_root=boundary_block.state_root,
            member_ids=tuple(self.registry.all_members()),
            related_member_ids=tuple(related),
            survivor_jsns=tuple(sorted(survivors)),
            original_genesis_hash=original_genesis,
            created_at=self.clock.now(),
            fam_epoch_roots=epoch_roots,
            fam_live_epoch=(live_size, live_peaks),
            clue_snapshot=tuple(clue_snapshot),
        )
        record = PurgeRecord(
            purge_point=purge_point,
            pseudo_genesis_hash=pseudo.hash(),
            erase_fam_nodes=erase_fam_nodes,
            reason=reason,
        )
        return pseudo, record

    def purge_required_signers(self, purge_point: int) -> dict:
        """Prerequisite 1 signer set: DBA members + every journal owner in range."""
        required: dict = {}
        for member_id in self.registry.members_with_role(Role.DBA):
            required[member_id] = self.registry.certificate(member_id)
        for jsn in range(self._genesis_start, purge_point):
            try:
                journal = self.get_journal(jsn)
            except (JournalOccultedError, JournalPurgedError):
                continue
            required[journal.client_id] = self.registry.certificate(journal.client_id)
        return required

    def execute_purge(
        self,
        pseudo: PseudoGenesis,
        record: PurgeRecord,
        approvals: MultiSignature,
    ) -> Receipt:
        """Execute a staged purge (Prerequisite 1 + Protocol 1).

        Copies survivors to the survival stream, records the purge journal
        (doubly linked with the pseudo genesis), erases purged payloads, and
        installs the pseudo genesis as the verification datum.
        """
        if record.pseudo_genesis_hash != pseudo.hash():
            raise MutationError("purge record does not match the pseudo genesis")
        if record.purge_point != pseudo.purge_point:
            raise MutationError(
                "purge record's purge point does not match the pseudo genesis"
            )
        if approvals.digest != record.approval_digest():
            raise MutationError("approval signatures cover a different purge record")
        required = self.purge_required_signers(record.purge_point)
        try:
            approvals.verify(required)
        except MultiSignatureError as exc:
            raise MutationError(f"Prerequisite 1 not met: {exc}") from exc
        # Copy milestone journals into the survival stream first.
        for jsn in pseudo.survivor_jsns:
            journal = self.get_journal(jsn)
            self._survivors[jsn] = self._survival_stream.append(journal.to_bytes())
        receipt = self._append_system(JournalType.PURGE, record.to_bytes())
        self._purge_records.append((receipt.jsn, record, approvals))
        # Physical erasure of the purged prefix (payloads only; digests live on).
        for jsn in range(self._genesis_start, record.purge_point):
            if not self._stream.is_erased(jsn):
                self._stream.erase(jsn)
        if record.erase_fam_nodes:
            self._fam.erase_up_to(record.purge_point)
        self._pseudo_genesis = pseudo
        self._genesis_start = record.purge_point
        return receipt

    # ---------------------------------------------------------------- occult

    def prepare_occult(
        self,
        target_jsn: int,
        mode: OccultMode = OccultMode.SYNC,
        reason: str = "",
    ) -> OccultRecord:
        """Stage an occult: build the record to be multi-signed."""
        if not self._genesis_start <= target_jsn < self._fam.size:
            raise MutationError(f"jsn {target_jsn} is not occultable")
        if self._occult_bitmap.test(target_jsn):
            raise MutationError(f"jsn {target_jsn} is already occulted")
        journal = self.get_journal(target_jsn)
        if journal.journal_type != JournalType.NORMAL:
            raise MutationError("only normal journals may be occulted")
        return OccultRecord(
            target_jsn=target_jsn,
            retained_hash=journal.tx_hash(),
            mode=mode,
            reason=reason,
            retained_clues=journal.clues,
        )

    def occult_required_signers(self) -> dict:
        """Prerequisite 2 signer set: DBA + regulator role holders."""
        required: dict = {}
        for role in (Role.DBA, Role.REGULATOR):
            for member_id in self.registry.members_with_role(role):
                required[member_id] = self.registry.certificate(member_id)
        if not any(c.role == Role.REGULATOR for c in required.values()):
            raise MutationError("no regulator registered; occult unavailable")
        if not any(c.role == Role.DBA for c in required.values()):
            raise MutationError("no DBA registered; occult unavailable")
        return required

    def execute_occult(self, record: OccultRecord, approvals: MultiSignature) -> Receipt:
        """Execute a staged occult (Prerequisite 2 + Protocol 2).

        Sets the occult bit immediately (the journal is unretrievable from
        now on); physical erasure is immediate in SYNC mode or deferred to
        :meth:`reorganize` in ASYNC mode.
        """
        if approvals.digest != record.approval_digest():
            raise MutationError("approval signatures cover a different occult record")
        required = self.occult_required_signers()
        try:
            approvals.verify(required)
        except MultiSignatureError as exc:
            raise MutationError(f"Prerequisite 2 not met: {exc}") from exc
        current = self.get_journal(record.target_jsn)
        if current.tx_hash() != record.retained_hash:
            raise MutationError("retained hash does not match the target journal")
        receipt = self._append_system(JournalType.OCCULT, record.to_bytes())
        self._occult_records.append((receipt.jsn, record, approvals))
        self._occult_bitmap.set(record.target_jsn)
        if record.mode is OccultMode.SYNC:
            self._stream.erase(record.target_jsn)
        else:
            self._erase_queue.append(record.target_jsn)
        return receipt

    def prepare_occult_by_clue(
        self,
        clue: str,
        mode: OccultMode = OccultMode.ASYNC,
        reason: str = "",
    ) -> list[OccultRecord]:
        """Stage occults for *every* retrievable journal carrying ``clue``.

        "Occult by clue is a common case" (§III-A3) — e.g. purging all of one
        subject's records under a privacy order.  Returns one record per
        journal; each must be multi-signed and executed individually (the
        regulator reviews each).  Defaults to ASYNC so the physical erasure
        batches through :meth:`reorganize`.
        """
        records = []
        for jsn in self._cluesl.get(clue):
            if self._occult_bitmap.test(jsn) or jsn < self._genesis_start:
                continue
            records.append(self.prepare_occult(jsn, mode, reason))
        return records

    def reorganize(self) -> int:
        """The idle-batch data-reorganisation utility: flush async erasures."""
        erased = 0
        for jsn in self._erase_queue:
            if not self._stream.is_erased(jsn):
                self._stream.erase(jsn)
                erased += 1
        self._erase_queue = []
        return erased

    @property
    def pending_erasures(self) -> int:
        return len(self._erase_queue)

    # ------------------------------------------------------------ audit view

    def export_view(self) -> LedgerView:
        """Export the auditor-facing view (client-side verification input)."""
        self.commit_block()
        entries: list[JournalEntryView] = []
        for jsn in range(self._genesis_start, self._fam.size):
            occulted = self._occult_bitmap.test(jsn)
            data: bytes | None
            if occulted or self._stream.is_erased(jsn):
                data = None
            else:
                data = self._stream.read(jsn)
            entries.append(
                JournalEntryView(
                    jsn=jsn,
                    data=data,
                    retained_hash=self.retained_hash(jsn),
                    occulted=occulted,
                    purged=not occulted and data is None,
                )
            )
        return LedgerView(
            uri=self.config.uri,
            fractal_height=self.config.fractal_height,
            block_size=self.config.block_size,
            entries=entries,
            genesis_start=self._genesis_start,
            blocks=list(self._blocks),
            certificates=self.registry.export(),
            ca_public_key=self.registry.ca_public_key,
            lsp_member_id=LSP_MEMBER_ID,
            latest_receipt=self._latest_receipt,
            pseudo_genesis=self._pseudo_genesis,
            purge_approvals=list(self._purge_records),
            occult_approvals=list(self._occult_records),
            time_evidence=dict(self._time_evidence),
        )

    # ---------------------------------------------------------- persistence

    @property
    def node_store(self) -> KVStore | None:
        """The Merkle-node backend (None when nodes live in plain dicts)."""
        return self._node_store

    def node_store_stats(self) -> dict:
        """Backend counters for the node store (page cache hit rate etc.)."""
        if self._node_store is None:
            return {"backend": "memory"}
        stats = dict(self._node_store.stats())
        stats["backend"] = self.config.node_store
        return stats

    def compact_node_store(self) -> dict:
        """Drop shadowed/garbage nodes from the paged store (§13 compaction).

        The live set is every node reachable from the current CM-Tree1 root;
        anything else (overwritten clue values, interior nodes of superseded
        tries) is garbage that accumulated because the MPT is copy-on-write.
        Safe at any time: dropped nodes are re-created deterministically if a
        snapshot-less replay ever needs them again.
        """
        if self._node_store is None or not isinstance(self._node_store, PagedNodeStore):
            raise UsageError("compaction requires node_store='paged'")
        live = self._cmtree.reachable_nodes()
        return self._node_store.compact(live)

    def checkpoint(self) -> str:
        """Write a recovery snapshot to ``data_dir/snapshot.ckpt``.

        Seals pending journals into a block (flushing the node store), then
        persists every derived structure plus the node store's page manifest,
        so :meth:`open` can restore and replay only the stream suffix.
        Snapshots of purged ledgers are refused — their survival state lives
        outside the stream and cannot be revalidated against it.
        """
        if not self.config.data_dir:
            raise UsageError("checkpoint requires LedgerConfig(data_dir=...)")
        if self._genesis_start > 0 or self._pseudo_genesis is not None:
            raise SnapshotError("checkpointing a purged ledger is not supported")
        with obs.span("ledger.checkpoint") as sp:
            self.commit_block()
            if self._node_store is not None:
                self._node_store.flush()
            manifest: list = []
            mpt_nodes: list = []
            if isinstance(self._node_store, PagedNodeStore):
                # Pages are themselves durable: the snapshot records only a
                # manifest pinning which committed pages it depends on.
                manifest = [list(entry) for entry in self._node_store.manifest()]
            else:
                # No durable node backend — the snapshot must carry the live
                # MPT nodes itself.
                mpt_nodes = [[key, value] for key, value in self._cmtree.export_nodes()]
            state = {
                "format": SNAPSHOT_FORMAT,
                "uri": self.config.uri,
                "jsn_count": self._fam.size,
                "pending_start": self._pending_start,
                "genesis_start": self._genesis_start,
                "fam": self._fam.dump_state(),
                "cmtree": self._cmtree.dump_state(),
                "cluesl": [[clue, self._cluesl.get(clue)] for clue in self._cluesl.clues()],
                "blocks": [block.header_bytes() for block in self._blocks],
                "time_journals": list(self._time_journals),
                "occult_bits": self._occult_bitmap.occulted_jsns(),
                "occult_records": [
                    [jsn, record.to_bytes(), _dump_multisig(sig)]
                    for jsn, record, sig in self._occult_records
                ],
                "erase_queue": list(self._erase_queue),
                "page_manifest": manifest,
                "mpt_nodes": mpt_nodes,
            }
            path = Path(self.config.data_dir) / SNAPSHOT_FILE
            write_snapshot(path, state)
            sp.add("journals", self._fam.size)
            obs.inc("ledger.checkpoints")
        return str(path)

    def close(self, checkpoint: bool = True) -> None:
        """Flush and release durable resources (checkpointing first by default)."""
        if (
            checkpoint
            and self.config.data_dir
            and self._genesis_start == 0
            and self._pseudo_genesis is None
        ):
            self.checkpoint()
        if self._node_store is not None:
            self._node_store.flush()
            self._node_store.close()
        close_stream = getattr(self._stream, "close", None)
        if callable(close_stream):
            close_stream()

    @classmethod
    def open(
        cls,
        data_dir: str,
        registry: MemberRegistry,
        lsp_keypair: KeyPair,
        clock: Clock | None = None,
        journal_stream: Stream | None = None,
        force_rebuild: bool = False,
    ) -> "Ledger":
        """Reopen a persistent ledger from its ``data_dir``.

        Fast path: restore the latest :meth:`checkpoint` snapshot and replay
        only the journal suffix it doesn't cover — O(delta-since-snapshot),
        not O(ledger size).  Any snapshot or page-store problem (missing,
        corrupt, diverged manifest, wrong ledger) degrades to the always-safe
        full :meth:`recover` replay; ``force_rebuild=True`` forces that path
        and discards the on-disk node pages first.
        """
        data_path = Path(data_dir)
        config = load_config_file(data_path / CONFIG_FILE, data_dir=str(data_path))
        if config.observability:
            obs.enable()
        if journal_stream is None:
            journal_stream = FileStream(data_path / JOURNAL_FILE, durable=True)

        node_store: KVStore | None = None
        store_damaged = force_rebuild
        if config.node_store == "paged":
            if not force_rebuild:
                try:
                    node_store = PagedNodeStore(
                        data_path / NODES_DIR, cache_pages=config.cache_pages
                    )
                except PageCorruptionError:
                    obs.inc("ledger.open.page_corruption")
                    store_damaged = True

        if not store_damaged:
            try:
                with obs.span("ledger.open.snapshot_restore"):
                    return cls._restore_from_snapshot(
                        config, journal_stream, node_store, registry, lsp_keypair, clock
                    )
            except (SnapshotError, PageCorruptionError):
                obs.inc("ledger.open.snapshot_fallback")
                if node_store is not None:
                    node_store.close()
                    node_store = None
                store_damaged = config.node_store == "paged"

        if store_damaged and config.node_store == "paged":
            # Rebuild the page store from scratch: stale content-addressed
            # nodes would be harmless, but a damaged page must not survive.
            nodes_dir = data_path / NODES_DIR
            if nodes_dir.exists():
                for leftover in nodes_dir.glob("page-*.pg"):
                    leftover.unlink()
            node_store = PagedNodeStore(nodes_dir, cache_pages=config.cache_pages)
        with obs.span("ledger.open.full_replay"):
            return cls.recover(
                config, journal_stream, registry, lsp_keypair,
                clock=clock, node_store=node_store,
            )

    @classmethod
    def _restore_from_snapshot(
        cls,
        config: LedgerConfig,
        journal_stream: Stream,
        node_store: KVStore | None,
        registry: MemberRegistry,
        lsp_keypair: KeyPair,
        clock: Clock | None,
    ) -> "Ledger":
        state = load_snapshot(Path(config.data_dir) / SNAPSHOT_FILE)
        if str(state["uri"]) != config.uri:
            raise SnapshotError("snapshot belongs to a different ledger")
        jsn_count = int(state["jsn_count"])
        if not 1 <= jsn_count <= len(journal_stream):
            raise SnapshotError(
                f"snapshot covers {jsn_count} journals but the stream holds "
                f"{len(journal_stream)}"
            )
        if isinstance(node_store, PagedNodeStore):
            manifest = [
                (str(name), int(count), int(crc))
                for name, count, crc in state["page_manifest"]
            ]
            if not node_store.verify_manifest(manifest):
                raise SnapshotError("node pages diverged from the snapshot manifest")

        ledger = cls.__new__(cls)
        ledger.config = config
        ledger.clock = clock or SimClock()
        ledger.registry = registry
        ledger._lsp_keypair = lsp_keypair
        if LSP_MEMBER_ID not in registry.all_members():
            registry.register(LSP_MEMBER_ID, Role.LSP, lsp_keypair.public)
        ledger._stream = journal_stream
        ledger.recovery_report = getattr(journal_stream, "open_report", None)
        ledger._survival_stream = MemoryStream()
        ledger._node_store = node_store
        ledger._fam = FamAccumulator.from_state(state["fam"])
        ledger._cmtree = CMTree.from_state(state["cmtree"], node_store)
        if node_store is None:
            ledger._cmtree.import_nodes(
                (bytes(key), bytes(value)) for key, value in state["mpt_nodes"]
            )
        ledger._cluesl = ClueSkipList()
        for clue, jsns in state["cluesl"]:
            for jsn in jsns:
                ledger._cluesl.insert(str(clue), int(jsn))
        ledger._blocks = [Block.from_bytes(bytes(raw)) for raw in state["blocks"]]
        ledger._pending_start = int(state["pending_start"])
        ledger._occult_bitmap = OccultBitmap()
        for jsn in state["occult_bits"]:
            ledger._occult_bitmap.set(int(jsn))
        ledger._occult_records = [
            (int(jsn), OccultRecord.from_bytes(bytes(raw)), _load_multisig(sig))
            for jsn, raw, sig in state["occult_records"]
        ]
        ledger._erase_queue = [int(jsn) for jsn in state["erase_queue"]]
        ledger._purge_records = []
        ledger._pseudo_genesis = None
        ledger._genesis_start = int(state["genesis_start"])
        ledger._survivors = {}
        ledger._time_journals = [int(jsn) for jsn in state["time_journals"]]
        ledger._time_evidence = {}
        ledger._tledger = None
        ledger._tsa = None
        ledger._pending_tledger = []
        ledger._latest_receipt = None
        ledger._receipts = {}
        ledger._anchor_cache = AnchorStore()
        ledger._anchor_cache_epochs = 0
        ledger.sth_shard_index = SOLO_SHARD
        ledger._sth_store = SthStore(Path(config.data_dir) / STH_FILE)
        ledger._sth_cache = {}
        ledger._sth_epochs = ledger._fam.num_epochs

        if ledger._fam.size != jsn_count:
            raise SnapshotError("snapshot fam state disagrees with its jsn count")
        replayed = ledger._replay_delta(jsn_count)
        obs.observe("ledger.open.delta_journals", replayed)
        # Delta replay appended straight onto the fam, bypassing _commit's
        # STH emission; re-arm the watermark at the reopened position.
        ledger._sth_epochs = ledger._fam.num_epochs

        last = ledger._fam.size - 1
        receipt = Receipt(
            ledger_uri=config.uri,
            jsn=last,
            request_hash=EMPTY_DIGEST,
            tx_hash=ledger._fam.leaf_digest(last),
            block_hash=ledger._blocks[-1].hash() if ledger._blocks else EMPTY_DIGEST,
            block_height=len(ledger._blocks) - 1,
            ledger_root=ledger._fam.current_root(),
            timestamp=ledger.clock.now(),
        ).signed_by(lsp_keypair)
        ledger._latest_receipt = receipt
        ledger._receipts[last] = receipt
        return ledger

    def _replay_delta(self, start: int) -> int:
        """Replay stream slots ``[start, len(stream))`` onto restored state.

        The same two-pass protocol as :meth:`recover`, restricted to the
        suffix.  An occult record always carries a higher jsn than its
        target, so a pass over the suffix finds every record whose erased
        target also lies in the suffix; occults of *pre-snapshot* targets
        only need their bitmap bit re-set (fam/CM-Tree already hold the
        retained digest from the original append).
        """
        stream = self._stream
        total = len(stream)
        occult_by_target: dict[int, OccultRecord] = {}
        for offset in range(start, total):
            if stream.is_erased(offset):
                continue
            journal = Journal.from_bytes(stream.read(offset))
            if journal.journal_type is JournalType.OCCULT:
                record = OccultRecord.from_bytes(journal.payload)
                occult_by_target[record.target_jsn] = record

        for jsn in range(start, total):
            if stream.is_erased(jsn):
                record = occult_by_target.get(jsn)
                if record is None:
                    raise RecoveryError(
                        f"slot {jsn} was purged; reopening from a snapshot is "
                        "only supported for unpurged ledgers"
                    )
                self._fam.append(record.retained_hash)
                self._occult_bitmap.set(jsn)
                for clue in record.retained_clues:
                    self._cmtree.add(clue, record.retained_hash)
                    self._cluesl.insert(clue, jsn)
            else:
                journal = Journal.from_bytes(stream.read(jsn))
                if journal.jsn != jsn:
                    raise RecoveryError(
                        f"stream corrupt: slot {jsn} holds jsn {journal.jsn}"
                    )
                tx_hash = journal.tx_hash()
                self._fam.append(tx_hash)
                for clue in journal.clues:
                    self._cmtree.add(clue, tx_hash)
                    self._cluesl.insert(clue, jsn)
                if journal.journal_type is JournalType.TIME:
                    self._time_journals.append(jsn)
                elif journal.journal_type is JournalType.OCCULT:
                    record = OccultRecord.from_bytes(journal.payload)
                    self._occult_records.append(
                        (jsn, record, MultiSignature(digest=record.approval_digest()))
                    )
                    if record.target_jsn < start and stream.is_erased(record.target_jsn):
                        # Pre-snapshot target occulted after the checkpoint:
                        # the erased-slot branch above never sees it.
                        self._occult_bitmap.set(record.target_jsn)
                elif journal.journal_type is JournalType.PURGE:
                    raise RecoveryError(
                        f"slot {jsn} purges the ledger; reopening from a "
                        "snapshot is only supported for unpurged ledgers"
                    )
            if jsn + 1 - self._pending_start >= self.config.block_size:
                self._seal_recovered_block(jsn + 1)
        self.commit_block()
        return total - start

    # ------------------------------------------------------------- utilities

    def metrics_snapshot(self) -> dict:
        """JSON-serialisable snapshot of the observability registry.

        Covers the whole process (the registry is global, DESIGN.md §10);
        empty shells when observability is disabled.
        """
        return obs.snapshot()

    def storage_stats(self) -> dict:
        """Approximate storage accounting for the overhead comparisons."""
        return {
            "journals": self._fam.size,
            "fam_nodes": self._fam.num_nodes(),
            "cmtree_nodes": self._cmtree.num_nodes(),
            "blocks": len(self._blocks),
            "occulted": len(self._occult_bitmap),
            "purged_prefix": self._genesis_start,
        }

    def __repr__(self) -> str:
        return (
            f"<Ledger {self.config.uri} size={self._fam.size} "
            f"root={hexdigest(self._fam.current_root())[:12]}>"
        )
