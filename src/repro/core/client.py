"""LedgerClient — the client-side SDK of a *distrusting* ledger member.

A :class:`LedgerClient` is what a real participant runs against an untrusted
LSP.  It keeps, entirely on the client side:

* the member's key pair (requests are signed locally — pi_c never needs the
  key to leave the client);
* every receipt the LSP returned (pi_s — the evidence that convicts a
  repudiating LSP, held *externally* as §III-C requires);
* a trusted-anchor store (fam-aoa) advanced via merged-leaf link proofs and
  live-epoch consistency proofs, so existence verification costs O(delta)
  without ever re-trusting the server;
* the out-of-band trust material (CA and TSA public keys).

The client talks to the :class:`~repro.core.ledger.Ledger` through its
public API only; nothing here reads server-private state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import Digest
from ..crypto.keys import KeyPair, PublicKey
from ..merkle.fam import AnchorStore, FamAccumulator
from .errors import LedgerError, VerificationFailure
from .journal import ClientRequest, Journal
from .ledger import LSP_MEMBER_ID, Ledger
from .receipt import Receipt
from .verification import DaseinReport, DaseinVerifier

__all__ = ["LedgerClient", "ClientState"]


@dataclass
class ClientState:
    """What the client persists between sessions."""

    receipts: dict[int, Receipt] = field(default_factory=dict)
    anchored_epochs: int = 0  # epochs with verified anchors
    live_epoch_index: int = 0  # epoch the live state below belongs to
    live_size: int = 0  # last verified live-epoch leaf count
    live_root: Digest | None = None  # last verified live commitment


class LedgerClient:
    """A ledger member's local agent."""

    def __init__(
        self,
        member_id: str,
        keypair: KeyPair,
        ledger: Ledger,
        tsa_keys: dict[str, PublicKey] | None = None,
    ) -> None:
        self.member_id = member_id
        self.keypair = keypair
        self.ledger = ledger
        self.tsa_keys = dict(tsa_keys or {})
        self.anchors = AnchorStore()
        self.state = ClientState()
        self._nonce = 0

    # ---------------------------------------------------------------- append

    def append(self, payload: bytes, clues: tuple[str, ...] = ()) -> Receipt:
        """Sign and submit a transaction; validate and store the receipt.

        The receipt check is the client's immediate defence: the LSP's
        signature must verify and the receipt must echo this exact request.
        """
        self._nonce += 1
        request = ClientRequest.build(
            self.ledger.config.uri,
            self.member_id,
            payload,
            clues=clues,
            nonce=self._nonce.to_bytes(8, "big"),
            client_timestamp=self.ledger.clock.now(),
        ).signed_by(self.keypair)
        receipt = self.ledger.append(request)
        lsp_certificate = self.ledger.registry.certificate(LSP_MEMBER_ID)
        if not receipt.verify(lsp_certificate.public_key):
            raise VerificationFailure("LSP receipt signature invalid")
        if receipt.request_hash != request.request_hash():
            raise VerificationFailure("receipt does not cover the submitted request")
        self.state.receipts[receipt.jsn] = receipt
        return receipt

    def append_batch(
        self,
        items: list[tuple[bytes, tuple[str, ...]]],
        max_workers: int | None = None,
    ) -> list[Receipt]:
        """Sign and submit many ``(payload, clues)`` transactions at once.

        Signs every request locally, submits through the server's amortised
        :meth:`~repro.core.ledger.Ledger.append_batch`, then applies the same
        per-receipt defence as :meth:`append`.  Admission is atomic: on
        rejection no receipts are issued and the local nonce is unwound.
        """
        if not items:
            return []
        first_nonce = self._nonce
        requests = []
        for payload, clues in items:
            self._nonce += 1
            requests.append(
                ClientRequest.build(
                    self.ledger.config.uri,
                    self.member_id,
                    payload,
                    clues=tuple(clues),
                    nonce=self._nonce.to_bytes(8, "big"),
                    client_timestamp=self.ledger.clock.now(),
                ).signed_by(self.keypair)
            )
        try:
            receipts = self.ledger.append_batch(requests, max_workers=max_workers)
        except Exception:
            self._nonce = first_nonce
            raise
        lsp_certificate = self.ledger.registry.certificate(LSP_MEMBER_ID)
        for request, receipt in zip(requests, receipts):
            if not receipt.verify(lsp_certificate.public_key):
                raise VerificationFailure("LSP receipt signature invalid")
            if receipt.request_hash != request.request_hash():
                raise VerificationFailure("receipt does not cover the submitted request")
            self.state.receipts[receipt.jsn] = receipt
        return receipts

    def receipt_for(self, jsn: int) -> Receipt | None:
        return self.state.receipts.get(jsn)

    # --------------------------------------------------------------- anchors

    def sync_anchors(self) -> int:
        """Advance the trusted-anchor store to the server's current state.

        Epoch 0's anchor is bootstrapped by full verification (downloading
        and replaying the epoch's digests); every later epoch advances via
        an O(delta) merged-leaf link proof; the live epoch via a consistency
        proof from the last verified live size.  Returns how many new epoch
        anchors were added.

        Raises :class:`VerificationFailure` the moment any link fails — the
        client never anchors unverified state.
        """
        fam = self.ledger._fam  # public read path in a real deployment
        added = 0
        completed = fam.num_epochs - 1
        while self.state.anchored_epochs < completed:
            epoch_index = self.state.anchored_epochs
            claimed_root = fam.epoch_root(epoch_index)
            if epoch_index == 0:
                if not self._bootstrap_epoch_zero(fam, claimed_root):
                    raise VerificationFailure("epoch 0 bootstrap verification failed")
                self.anchors.add(0, claimed_root)
            else:
                link = fam.prove_epoch_link(epoch_index)
                if not self.anchors.advance(epoch_index, claimed_root, link):
                    raise VerificationFailure(
                        f"merged-leaf link for epoch {epoch_index} failed"
                    )
            self.state.anchored_epochs += 1
            added += 1
        self._sync_live(fam)
        return added

    def _bootstrap_epoch_zero(self, fam: FamAccumulator, claimed_root: Digest) -> bool:
        """Full verification of the first epoch (downloads its digests)."""
        from ..merkle.shrubs import FrontierAccumulator

        frontier = FrontierAccumulator()
        for jsn in range(fam.epoch_capacity):
            frontier.append_leaf(fam.leaf_digest(jsn))
        return frontier.root() == claimed_root

    def _sync_live(self, fam: FamAccumulator) -> None:
        current_epoch = fam.num_epochs - 1
        live_size = fam.snapshot()[1]
        live_root = fam.current_root()
        if self.state.live_root is not None and self.state.live_size > 0:
            if self.state.live_epoch_index == current_epoch:
                # Same epoch: its evolution must be append-only.
                if self.state.live_size == live_size:
                    if live_root != self.state.live_root:
                        raise VerificationFailure(
                            "live commitment changed without appends"
                        )
                elif self.state.live_size < live_size:
                    proof = fam.prove_live_consistency(self.state.live_size)
                    if not proof.verify(self.state.live_root, live_root):
                        raise VerificationFailure(
                            "live epoch evolved non-append-only (history rewritten?)"
                        )
                else:
                    raise VerificationFailure("live epoch shrank")
            else:
                # Our epoch has been sealed since we last looked: its final
                # root must extend the state we verified, and must equal the
                # anchor sync_anchors just validated for it.
                sealed_epoch = self.state.live_epoch_index
                sealed_root = fam.epoch_root(sealed_epoch)
                proof = fam.prove_epoch_consistency(sealed_epoch, self.state.live_size)
                if not proof.verify(self.state.live_root, sealed_root):
                    raise VerificationFailure(
                        f"sealed epoch {sealed_epoch} does not extend the "
                        "state this client verified"
                    )
                anchor = self.anchors.get(sealed_epoch)
                if anchor is not None and anchor != sealed_root:
                    raise VerificationFailure(
                        f"sealed epoch {sealed_epoch} root disagrees with anchor"
                    )
        self.state.live_epoch_index = current_epoch
        self.state.live_size = live_size
        self.state.live_root = live_root

    # ------------------------------------------------------------- verifying

    def verify_journal(self, journal: Journal) -> bool:
        """O(delta) existence verification against the client's own anchors."""
        proof = self.ledger.get_proof(journal.jsn, anchored=True)
        if proof.epoch_index == proof.num_epochs - 1:
            # Live epoch: check against the client's verified live commitment.
            if self.state.live_root is None:
                return False
            try:
                return proof.epoch_proof.computed_root(journal.tx_hash()) == self.state.live_root
            except (ValueError, IndexError):
                return False
        anchor = self.anchors.get(proof.epoch_index)
        if anchor is None:
            return False
        try:
            return proof.epoch_proof.computed_root(journal.tx_hash()) == anchor
        except (ValueError, IndexError):
            return False

    def verify_dasein(self, jsn: int) -> DaseinReport:
        """Full client-side 3w verification from a freshly exported view."""
        view = self.ledger.export_view()
        verifier = DaseinVerifier(view, tsa_keys=self.tsa_keys)
        proof = self.ledger.get_proof(jsn, anchored=False)
        return verifier.verify_dasein(jsn, proof, self.state.receipts.get(jsn))

    def verify_clue(self, clue: str) -> bool:
        """Client-side N-lineage verification of an entire clue."""
        jsns = self.ledger.list_tx(clue)
        if not jsns:
            return False
        journals = []
        for jsn in jsns:
            try:
                journals.append(self.ledger.get_journal(jsn))
            except LedgerError:
                # Not-found / purged / occulted: the lineage has a hole, so
                # the clue cannot fully verify.
                return False
        proof = self.ledger.prove_clue(clue)
        digests = {i: j.tx_hash() for i, j in enumerate(journals)}
        return proof.verify(digests, self.ledger.state_root())
