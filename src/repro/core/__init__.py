"""LedgerDB core: the ledger kernel, Dasein verification, and the audit."""

from . import api
from .audit import AuditReport, AuditStep, dasein_audit
from .blocks import Block
from .client import ClientState, LedgerClient
from .cluesl import ClueSkipList
from .errors import (
    AuthenticationError,
    AuthorizationError,
    JournalNotFoundError,
    JournalOccultedError,
    JournalPurgedError,
    LedgerError,
    MutationError,
    RecoveryError,
    UsageError,
    VerificationFailure,
)
from .journal import ClientRequest, Journal, JournalType
from .ledger import LSP_MEMBER_ID, JournalEntryView, Ledger, LedgerConfig, LedgerView
from .members import MemberRegistry
from .occult import OccultBitmap, OccultMode, OccultRecord
from .purge import PseudoGenesis, PurgeRecord
from .receipt import Receipt
from .verification import DaseinReport, DaseinVerifier, VerifyResult, parse_time_journal

__all__ = [
    "api",
    "ClientState",
    "LedgerClient",
    "AuditReport",
    "AuditStep",
    "dasein_audit",
    "Block",
    "ClueSkipList",
    "AuthenticationError",
    "AuthorizationError",
    "JournalNotFoundError",
    "JournalOccultedError",
    "JournalPurgedError",
    "LedgerError",
    "UsageError",
    "MutationError",
    "RecoveryError",
    "VerificationFailure",
    "ClientRequest",
    "Journal",
    "JournalType",
    "LSP_MEMBER_ID",
    "JournalEntryView",
    "Ledger",
    "LedgerConfig",
    "LedgerView",
    "MemberRegistry",
    "OccultBitmap",
    "OccultMode",
    "OccultRecord",
    "PseudoGenesis",
    "PurgeRecord",
    "Receipt",
    "DaseinReport",
    "DaseinVerifier",
    "VerifyResult",
    "parse_time_journal",
]
