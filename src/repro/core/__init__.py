"""LedgerDB core: the ledger kernel, Dasein verification, and the audit.

Exports resolve lazily (PEP 562) so that kernel-free leaf modules —
``core.journal``, ``core.receipt``, ``core.errors``, ``core.snapshot`` —
can be imported by the standalone offline verifier without dragging in
``core.ledger`` (and through it the node store, service wiring, and the
rest of the kernel).  Keep new exports in the lazy table; an eager import
here would silently break the ``repro/export/verifier.py`` import-isolation
guarantee.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    "ClientState": ".client",
    "LedgerClient": ".client",
    "AuditReport": ".audit",
    "AuditStep": ".audit",
    "dasein_audit": ".audit",
    "Block": ".blocks",
    "ClueSkipList": ".cluesl",
    "AuthenticationError": ".errors",
    "AuthorizationError": ".errors",
    "JournalNotFoundError": ".errors",
    "JournalOccultedError": ".errors",
    "JournalPurgedError": ".errors",
    "LedgerError": ".errors",
    "UsageError": ".errors",
    "MutationError": ".errors",
    "RecoveryError": ".errors",
    "VerificationFailure": ".errors",
    "ClientRequest": ".journal",
    "Journal": ".journal",
    "JournalType": ".journal",
    "LSP_MEMBER_ID": ".ledger",
    "JournalEntryView": ".ledger",
    "Ledger": ".ledger",
    "LedgerConfig": ".ledger",
    "LedgerView": ".ledger",
    "MemberRegistry": ".members",
    "OccultBitmap": ".occult",
    "OccultMode": ".occult",
    "OccultRecord": ".occult",
    "PseudoGenesis": ".purge",
    "PurgeRecord": ".purge",
    "Receipt": ".receipt",
    "DaseinReport": ".verification",
    "DaseinVerifier": ".verification",
    "VerifyResult": ".verification",
    "parse_time_journal": ".verification",
}

_SUBMODULES = frozenset(
    {
        "api",
        "audit",
        "blocks",
        "client",
        "cluesl",
        "errors",
        "journal",
        "ledger",
        "members",
        "occult",
        "purge",
        "receipt",
        "snapshot",
        "verification",
    }
)

__all__ = [  # noqa: F822  (names resolve lazily via __getattr__)
    "api",
    *sorted(_EXPORTS),
]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(importlib.import_module(module_name, __name__), name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS) | set(_SUBMODULES))
