"""Dasein verification (§III): what, when, who — server- and client-side.

The *Dasein* of a journal is verified along three axes:

* **what** — the journal exists verbatim on the ledger: a fam existence
  proof against a trusted commitment (an epoch anchor, the LSP-signed
  ``ledger_root`` in a receipt the client holds externally, or a
  TSA-anchored root);
* **when** — the journal was produced inside a verified time window: the
  time journals bracketing its jsn, each carrying TSA-signed evidence,
  bound its creation time from both sides;
* **who** — the journal's issuer cannot repudiate it: the client signature
  pi_c checks against the CA-certified member key, and the LSP's receipt
  pi_s convicts the LSP of having committed it.

:class:`DaseinVerifier` runs entirely from an exported :class:`LedgerView`
plus out-of-band trust anchors (CA public key, TSA public keys), so it makes
no calls back into the — potentially malicious — LSP.
"""

from __future__ import annotations

from .. import obs
from ..artifacts import DaseinReport, VerifyLevel, VerifyResult, VerifyTarget
from ..crypto.hashing import Digest
from ..crypto.keys import PublicKey
from ..encoding import decode
from ..merkle.fam import FamAccumulator, FamProof
from ..timeauth.pegging import TimeBound
from ..timeauth.tledger import TimeEvidence
from ..timeauth.tsa import TimeStampToken
from .journal import Journal, JournalType
from .ledger import LedgerView
from .receipt import Receipt

__all__ = [
    "DaseinReport",
    "DaseinVerifier",
    "VerifyLevel",
    "VerifyResult",
    "VerifyTarget",
    "check_time_evidence",
    "parse_time_journal",
]


def parse_time_journal(journal: Journal) -> dict:
    """Decode a time journal's payload (mode, anchored root, as-of jsn, ...)."""
    if journal.journal_type is not JournalType.TIME:
        raise ValueError(f"journal {journal.jsn} is not a time journal")
    obj = decode(journal.payload)
    obj["anchored_root"] = bytes(obj["anchored_root"])
    return obj


def check_time_evidence(
    info: dict,
    evidence: TimeEvidence | TimeStampToken | None,
    tsa_keys: dict[str, PublicKey],
) -> tuple[float, bool]:
    """Validate one time journal's authority evidence: (timestamp, valid).

    ``info`` is a :func:`parse_time_journal` payload.  "tsa" mode
    reconstructs the timestamp token from the journal itself; "tledger" mode
    checks the supplied cross-ledger evidence.  Stateless on purpose — the
    audit engine's worker pool calls it from forked processes.
    """
    if info["mode"] == "tsa":
        # The token is reconstructible from the journal payload itself.
        from ..crypto.ecdsa import Signature

        token = TimeStampToken(
            digest=info["anchored_root"],
            timestamp=info["timestamp"],
            tsa_id=info["tsa_id"],
            signature=Signature.from_bytes(bytes(info["signature"])),
        )
        key = tsa_keys.get(token.tsa_id)
        return token.timestamp, key is not None and token.verify(key)
    if info["mode"] == "tledger":
        if not isinstance(evidence, TimeEvidence):
            return 0.0, False
        if evidence.entry.digest != info["anchored_root"]:
            return 0.0, False
        if not evidence.verify(tsa_keys):
            return 0.0, False
        return evidence.finalization.token.timestamp, True
    return 0.0, False


class DaseinVerifier:
    """Client-side 3w verifier over an exported ledger view.

    ``tsa_keys`` maps TSA ids to their public keys (obtained from the
    authorities directly, never from the LSP).  The trusted *what* datum is
    the LSP-signed ``ledger_root`` of the latest receipt by default; pass
    ``trusted_root`` to use a different externally-validated commitment.
    """

    def __init__(
        self,
        view: LedgerView,
        tsa_keys: dict[str, PublicKey] | None = None,
        trusted_root: Digest | None = None,
    ) -> None:
        self.view = view
        self.tsa_keys = dict(tsa_keys or {})
        if trusted_root is None:
            if view.latest_receipt is None:
                raise ValueError("view has no receipt; pass trusted_root explicitly")
            trusted_root = view.latest_receipt.ledger_root
        self.trusted_root = trusted_root
        self._time_cache: list[tuple[int, float, bool]] | None = None

    # ----------------------------------------------------------------- what

    def journal_at(self, jsn: int) -> Journal | None:
        """Decode the journal at ``jsn`` from the view (None if mutated away)."""
        entry = self.view.entry(jsn)
        if entry.data is None:
            return None
        return Journal.from_bytes(entry.data)

    def verify_what(self, journal: Journal, proof: FamProof) -> bool:
        """Existence: fold the journal through fam to the trusted commitment.

        The proof must be a full-chain (non-anchored) proof, since a
        distrusting client verifies against one externally-trusted root.
        """
        with obs.span("dasein.what"):
            return FamAccumulator.verify_full(
                journal.tx_hash(), proof, self.trusted_root
            )

    def verify_what_digest(self, retained_hash: Digest, proof: FamProof) -> bool:
        """Used-to-exist: verify a mutated journal by its retained digest."""
        return FamAccumulator.verify_full(retained_hash, proof, self.trusted_root)

    # ----------------------------------------------------------------- when

    def _time_journals(self) -> list[tuple[int, float, bool]]:
        """(jsn, upper-bound timestamp, evidence_valid) per time journal."""
        if self._time_cache is not None:
            return self._time_cache
        out: list[tuple[int, float, bool]] = []
        for entry in self.view.entries:
            if entry.data is None:
                continue
            journal = Journal.from_bytes(entry.data)
            if journal.journal_type is not JournalType.TIME:
                continue
            info = parse_time_journal(journal)
            evidence = self.view.time_evidence.get(journal.jsn)
            timestamp, valid = self._check_time_evidence(info, evidence)
            out.append((journal.jsn, timestamp, valid))
        self._time_cache = out
        return out

    def _check_time_evidence(
        self, info: dict, evidence: TimeEvidence | TimeStampToken | None
    ) -> tuple[float, bool]:
        return check_time_evidence(info, evidence, self.tsa_keys)

    def verify_when(self, jsn: int) -> tuple[TimeBound | None, bool]:
        """Bracket ``jsn`` between verified time journals.

        Returns ``(bound, valid)``: ``valid`` is False when any bracketing
        evidence fails to verify, or when no upper-bounding time journal
        exists yet (the journal's existence has no credible ceiling).
        """
        with obs.span("dasein.when"):
            lower = float("-inf")
            upper = float("inf")
            valid = True
            for time_jsn, timestamp, evidence_ok in self._time_journals():
                if time_jsn < jsn:
                    if evidence_ok:
                        lower = max(lower, timestamp)
                elif time_jsn > jsn:
                    if not evidence_ok:
                        valid = False
                    upper = min(upper, timestamp)
                    break  # first covering anchor is the tight one
            if upper == float("inf"):
                return None, False
            return TimeBound(lower=lower, upper=upper), valid

    # ------------------------------------------------------------------ who

    def verify_who(self, journal: Journal, receipt: Receipt | None = None) -> bool:
        """Non-repudiation: pi_c against the member's certificate, and — when a
        receipt is presented — pi_s against the LSP's certificate."""
        with obs.span("dasein.who"):
            certificate = self.view.certificates.get(journal.client_id)
            if certificate is None or not certificate.verify(self.view.ca_public_key):
                return False
            if journal.client_signature is None:
                return False
            if not certificate.public_key.verify(
                journal.request_hash, journal.client_signature
            ):
                return False
            if receipt is not None:
                lsp_cert = self.view.certificates.get(self.view.lsp_member_id)
                if lsp_cert is None or not lsp_cert.verify(self.view.ca_public_key):
                    return False
                if not receipt.verify(lsp_cert.public_key):
                    return False
                # The receipt must be *this* journal's receipt: a genuine LSP
                # signature over some other jsn proves nothing about this
                # journal, so a jsn mismatch is a failure, not a skip.
                if receipt.jsn != journal.jsn:
                    return False
                if receipt.tx_hash != journal.tx_hash():
                    return False
            return True

    # --------------------------------------------------------------- dasein

    def verify_dasein(
        self,
        jsn: int,
        proof: FamProof,
        receipt: Receipt | None = None,
    ) -> DaseinReport:
        """Full 3w verification of one journal (Definition 1, per-journal)."""
        with obs.span("dasein.verify"):
            journal = self.journal_at(jsn)
            if journal is None:
                entry = self.view.entry(jsn)
                what = self.verify_what_digest(entry.retained_hash, proof)
                when_bound, when_valid = self.verify_when(jsn)
                return DaseinReport(
                    jsn=jsn, what=what, when_valid=when_valid, when_bound=when_bound,
                    who=False,  # the signature went with the payload
                )
            what = self.verify_what(journal, proof)
            when_bound, when_valid = self.verify_when(jsn)
            who = self.verify_who(journal, receipt)
            return DaseinReport(
                jsn=jsn, what=what, when_valid=when_valid, when_bound=when_bound, who=who
            )
