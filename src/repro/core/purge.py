"""Purge — verifiable removal of obsolete history (§III-A2).

A purge erases consecutive journals from genesis (or the previous purge
point) up to a designated jsn.  The value of purged history lies in proving
the authenticity of the *current* state, so purge replaces it with a
**pseudo genesis**: a snapshot record storing the ledger's commitments
(fam root, CM-Tree state root, membership) at the purge point.  The purge
itself is recorded as a purge journal, doubly linked with the pseudo genesis
for mutual proving, and subsequent verification treats the latest pseudo
genesis as the ledger's genesis (Protocol 1).

Prerequisite 1: multi-signatures from the DBA and all members owning
journals before the purge point.

Milestone journals named in ``survivors`` are copied to the *survival
stream* before erasure so business-critical records remain retrievable and
verifiable after the purge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, sha256
from ..encoding import decode, encode

__all__ = ["PseudoGenesis", "PurgeRecord"]


@dataclass(frozen=True)
class PseudoGenesis:
    """Snapshot that replaces the purged prefix (stored before the first
    unpurged block, replicating the genesis role)."""

    purge_point: int  # first jsn that survives
    fam_root: Digest  # fam commitment over the full prefix [0, purge_point)
    state_root: Digest  # CM-Tree1 root at the purge point
    member_ids: tuple[str, ...]  # membership snapshot
    #: Members owning journals in the purged range — exactly the parties
    #: whose signatures Prerequisite 1 demands (plus the DBA).
    related_member_ids: tuple[str, ...]
    survivor_jsns: tuple[int, ...]  # milestones copied to the survival stream
    original_genesis_hash: Digest
    created_at: float
    # Resume snapshots: enough accumulator state for an auditor to *continue*
    # commitment replay from the purge point without the purged data.
    fam_epoch_roots: tuple[Digest, ...] = ()  # completed fam epochs so far
    fam_live_epoch: tuple[int, tuple[Digest, ...]] = (0, ())  # (size, peaks)
    clue_snapshot: tuple[tuple[str, int, tuple[Digest, ...]], ...] = ()  # (clue, size, peaks)

    def hash(self) -> Digest:
        return sha256(self.to_bytes())

    def to_bytes(self) -> bytes:
        return encode(
            {
                "scheme": "repro.pseudo_genesis.v1",
                "purge_point": self.purge_point,
                "fam_root": self.fam_root,
                "state_root": self.state_root,
                "member_ids": list(self.member_ids),
                "related_member_ids": list(self.related_member_ids),
                "survivor_jsns": list(self.survivor_jsns),
                "original_genesis_hash": self.original_genesis_hash,
                "created_at": self.created_at,
                "fam_epoch_roots": list(self.fam_epoch_roots),
                "fam_live_epoch": [self.fam_live_epoch[0], list(self.fam_live_epoch[1])],
                "clue_snapshot": [
                    [clue, size, list(peaks)] for clue, size, peaks in self.clue_snapshot
                ],
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PseudoGenesis":
        obj = decode(data)
        return cls(
            purge_point=obj["purge_point"],
            fam_root=bytes(obj["fam_root"]),
            state_root=bytes(obj["state_root"]),
            member_ids=tuple(obj["member_ids"]),
            related_member_ids=tuple(obj["related_member_ids"]),
            survivor_jsns=tuple(obj["survivor_jsns"]),
            original_genesis_hash=bytes(obj["original_genesis_hash"]),
            created_at=obj["created_at"],
            fam_epoch_roots=tuple(bytes(r) for r in obj["fam_epoch_roots"]),
            fam_live_epoch=(
                obj["fam_live_epoch"][0],
                tuple(bytes(p) for p in obj["fam_live_epoch"][1]),
            ),
            clue_snapshot=tuple(
                (clue, size, tuple(bytes(p) for p in peaks))
                for clue, size, peaks in obj["clue_snapshot"]
            ),
        )


@dataclass(frozen=True)
class PurgeRecord:
    """The content of a purge journal's payload.

    ``pseudo_genesis_hash`` is the forward half of the double link (the
    pseudo genesis stores ``purge_point`` which resolves back to this journal
    through the ledger's purge registry) — "doubly linked ... for mutual
    proving and fast locating".
    """

    purge_point: int
    pseudo_genesis_hash: Digest
    erase_fam_nodes: bool
    reason: str

    def approval_digest(self) -> Digest:
        """What the DBA and all affected members multi-sign (Prerequisite 1)."""
        return sha256(
            encode(
                {
                    "scheme": "repro.purge.v1",
                    "purge_point": self.purge_point,
                    "pseudo_genesis_hash": self.pseudo_genesis_hash,
                    "erase_fam_nodes": self.erase_fam_nodes,
                    "reason": self.reason,
                }
            )
        )

    def to_bytes(self) -> bytes:
        return encode(
            {
                "purge_point": self.purge_point,
                "pseudo_genesis_hash": self.pseudo_genesis_hash,
                "erase_fam_nodes": self.erase_fam_nodes,
                "reason": self.reason,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PurgeRecord":
        obj = decode(data)
        return cls(
            purge_point=obj["purge_point"],
            pseudo_genesis_hash=bytes(obj["pseudo_genesis_hash"]),
            erase_fam_nodes=obj["erase_fam_nodes"],
            reason=obj["reason"],
        )
