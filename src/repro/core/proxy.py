"""Ledger proxy — the Figure-1 deployment front end.

The proxy splits a transaction into its two paths:

* the **payload** goes to shared storage (content-addressed blob store);
* the **digest** goes onto the ledger: the journal's payload field carries a
  fixed-size *payload reference* ``{digest, size}``.

The client builds and signs the reference-carrying request itself (so pi_c
covers exactly what the ledger commits), and uploads the raw payload
alongside; the proxy checks the upload hashes to the referenced digest
before admitting anything — a tampered-in-flight payload (threat-A) is
rejected at the door.  On retrieval the proxy re-joins the two paths and
re-checks the content address.

Mutations compose naturally: occulting or purging a journal releases its
blob reference, so the regulated payload disappears from shared storage too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, sha256
from ..crypto.keys import KeyPair
from ..encoding import decode, encode
from ..storage.shared import SharedStorage
from .errors import AuthenticationError, LedgerError
from .journal import ClientRequest, Journal, JournalType
from .ledger import Ledger
from .receipt import Receipt

__all__ = ["PayloadRef", "LedgerProxy", "ResolvedJournal"]

_REF_MARKER = "repro.payload_ref.v1"


@dataclass(frozen=True)
class PayloadRef:
    """The fixed-size stand-in committed on the ledger."""

    digest: Digest
    size: int

    def to_bytes(self) -> bytes:
        return encode({"scheme": _REF_MARKER, "digest": self.digest, "size": self.size})

    @classmethod
    def from_bytes(cls, data: bytes) -> "PayloadRef":
        obj = decode(data)
        if obj.get("scheme") != _REF_MARKER:
            raise ValueError("not a payload reference")
        return cls(digest=bytes(obj["digest"]), size=obj["size"])

    @staticmethod
    def is_ref(payload: bytes) -> bool:
        try:
            PayloadRef.from_bytes(payload)
        except Exception:
            return False
        return True


@dataclass(frozen=True)
class ResolvedJournal:
    """A journal re-joined with its shared-storage payload."""

    journal: Journal
    payload: bytes  # the raw business payload (resolved from the ref)
    ref: PayloadRef | None  # None for inline (small) payloads


class LedgerProxy:
    """The deployment front end: payload/digest split + re-join."""

    def __init__(
        self,
        ledger: Ledger,
        storage: SharedStorage | None = None,
        inline_threshold: int = 256,
    ) -> None:
        self.ledger = ledger
        self.storage = storage or SharedStorage()
        #: Payloads at or below this size are committed inline (the split
        #: only pays off for bulky blobs).
        self.inline_threshold = inline_threshold

    # ---------------------------------------------------------------- submit

    def build_request(
        self,
        client_id: str,
        payload: bytes,
        clues: tuple[str, ...] = (),
        nonce: bytes = b"",
    ) -> tuple[ClientRequest, bytes | None]:
        """Build the (unsigned) request the client must sign.

        Returns ``(request, upload)``: for bulky payloads the request
        carries a :class:`PayloadRef` and ``upload`` is the raw payload the
        client must hand the proxy alongside the signed request.
        """
        if len(payload) <= self.inline_threshold:
            request = ClientRequest.build(
                self.ledger.config.uri, client_id, payload, clues=clues, nonce=nonce,
                client_timestamp=self.ledger.clock.now(),
            )
            return request, None
        ref = PayloadRef(digest=sha256(payload), size=len(payload))
        request = ClientRequest.build(
            self.ledger.config.uri, client_id, ref.to_bytes(), clues=clues, nonce=nonce,
            client_timestamp=self.ledger.clock.now(),
        )
        return request, payload

    def submit(self, request: ClientRequest, upload: bytes | None = None) -> Receipt:
        """Admit a signed request, routing the payload to shared storage.

        For reference-carrying requests the raw ``upload`` must hash to the
        referenced digest — the threat-A check at the proxy.
        """
        if PayloadRef.is_ref(request.payload):
            ref = PayloadRef.from_bytes(request.payload)
            if upload is None:
                raise LedgerError("reference request needs the raw payload upload")
            if sha256(upload) != ref.digest:
                raise AuthenticationError(
                    "uploaded payload does not hash to the signed reference "
                    "(tampered in flight?)"
                )
            if len(upload) != ref.size:
                raise AuthenticationError("uploaded payload size mismatch")
            receipt = self.ledger.append(request)  # digest path
            self.storage.put(upload)  # payload path
            return receipt
        if upload is not None:
            raise LedgerError("inline request must not carry a separate upload")
        return self.ledger.append(request)

    def append(
        self,
        client_id: str,
        keypair: KeyPair,
        payload: bytes,
        clues: tuple[str, ...] = (),
        nonce: bytes = b"",
    ) -> Receipt:
        """Convenience: build, sign, and submit in one call."""
        request, upload = self.build_request(client_id, payload, clues, nonce)
        return self.submit(request.signed_by(keypair), upload)

    # --------------------------------------------------------------- resolve

    def get_journal(self, jsn: int) -> ResolvedJournal:
        """Fetch a journal and re-join its payload from shared storage."""
        journal = self.ledger.get_journal(jsn)
        if journal.journal_type is not JournalType.NORMAL or not PayloadRef.is_ref(journal.payload):
            return ResolvedJournal(journal=journal, payload=journal.payload, ref=None)
        ref = PayloadRef.from_bytes(journal.payload)
        blob = self.storage.get(ref.digest)  # integrity-checked read
        return ResolvedJournal(journal=journal, payload=blob, ref=ref)

    def release_payload(self, jsn_payload: bytes) -> bool:
        """Drop the blob behind a mutated journal's reference (purge/occult)."""
        if not PayloadRef.is_ref(jsn_payload):
            return False
        return self.storage.release(PayloadRef.from_bytes(jsn_payload).digest)
