"""Journal model: client requests, committed journals, and their digests.

The journal is LedgerDB's unit of append (§II-C).  A client builds a
:class:`ClientRequest` — payload plus metadata (ledger uri, type, nonce,
clues) — computes its *request-hash*, and signs it (proof pi_c).  The server
turns an admitted request into a :class:`Journal` carrying a unique
incremental *jsn*; the digest of the serialized journal is the *tx-hash*
accumulated by fam.

Special journal types (time, purge, occult) are system journals issued by
the LSP; their payloads carry the respective protocol records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from .. import obs
from ..crypto.ecdsa import Signature
from ..crypto.hashing import Digest, journal_hash, receipt_hash
from ..crypto.keys import KeyPair
from ..encoding import decode, encode

__all__ = ["JournalType", "ClientRequest", "Journal"]


class JournalType(Enum):
    """Kinds of entries on the ledger."""

    GENESIS = "genesis"
    NORMAL = "normal"
    TIME = "time"  # anchored TSA / T-Ledger evidence (pi_t)
    PURGE = "purge"  # records a purge operation (Prerequisite 1)
    OCCULT = "occult"  # records an occult operation (Prerequisite 2)


@dataclass(frozen=True)
class ClientRequest:
    """A signed client transaction submission (Figure 1, left side)."""

    ledger_uri: str
    client_id: str
    journal_type: JournalType
    payload: bytes
    clues: tuple[str, ...]
    nonce: bytes
    client_timestamp: float
    signature: Signature | None = None

    def request_hash(self) -> Digest:
        """The digest the client signs — covers the entire transaction.

        Memoized: the hash is consumed at least twice per append (signature
        admission, then journal construction), and the request is frozen.
        """
        cached = self.__dict__.get("_request_hash")
        if cached is not None:
            obs.inc("journal.request_hash_memo.hit")
            return cached
        obs.inc("journal.request_hash_memo.miss")
        cached = receipt_hash(
            encode(
                {
                    "ledger_uri": self.ledger_uri,
                    "client_id": self.client_id,
                    "journal_type": self.journal_type.value,
                    "payload": self.payload,
                    "clues": list(self.clues),
                    "nonce": self.nonce,
                    "client_timestamp": self.client_timestamp,
                }
            )
        )
        object.__setattr__(self, "_request_hash", cached)
        return cached

    def signed_by(self, keypair: KeyPair) -> "ClientRequest":
        """Return a copy carrying the client's signature pi_c."""
        digest = self.request_hash()
        signed = replace(self, signature=keypair.sign(digest))
        # The hash excludes the signature, so the copy shares it.
        object.__setattr__(signed, "_request_hash", digest)
        return signed

    @classmethod
    def build(
        cls,
        ledger_uri: str,
        client_id: str,
        payload: bytes,
        clues: tuple[str, ...] = (),
        nonce: bytes = b"",
        client_timestamp: float = 0.0,
        journal_type: JournalType = JournalType.NORMAL,
    ) -> "ClientRequest":
        return cls(
            ledger_uri=ledger_uri,
            client_id=client_id,
            journal_type=journal_type,
            payload=payload,
            clues=tuple(clues),
            nonce=nonce,
            client_timestamp=client_timestamp,
        )

    def to_bytes(self) -> bytes:
        """Canonical wire serialization (signature included).

        This is what crosses the network boundary: the signed request travels
        whole, so the server admits exactly the bytes the client signed over
        (the signature itself is outside :meth:`request_hash`).
        """
        return encode(
            {
                "ledger_uri": self.ledger_uri,
                "client_id": self.client_id,
                "journal_type": self.journal_type.value,
                "payload": self.payload,
                "clues": list(self.clues),
                "nonce": self.nonce,
                "client_timestamp": self.client_timestamp,
                "signature": self.signature.to_bytes() if self.signature else b"",
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClientRequest":
        obj = decode(data)
        signature_bytes = bytes(obj["signature"])
        return cls(
            ledger_uri=obj["ledger_uri"],
            client_id=obj["client_id"],
            journal_type=JournalType(obj["journal_type"]),
            payload=bytes(obj["payload"]),
            clues=tuple(obj["clues"]),
            nonce=bytes(obj["nonce"]),
            client_timestamp=obj["client_timestamp"],
            signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )


@dataclass(frozen=True)
class Journal:
    """A committed ledger entry.

    ``tx_hash`` (the fam leaf digest) is the hash of :meth:`to_bytes`, which
    covers every field below — so tampering any of them after commitment is
    detectable by existence verification.
    """

    jsn: int
    journal_type: JournalType
    client_id: str
    payload: bytes
    clues: tuple[str, ...]
    timestamp: float  # server-side commit time (local, non-authoritative)
    nonce: bytes
    request_hash: Digest
    client_signature: Signature | None

    def to_bytes(self) -> bytes:
        """Canonical serialization (the bytes stored on the journal stream).

        Memoized — ``_commit`` serialises once for the stream write and once
        more (via :meth:`tx_hash`) for the fam leaf.
        """
        cached = self.__dict__.get("_bytes")
        if cached is None:
            cached = encode(
                {
                    "jsn": self.jsn,
                    "journal_type": self.journal_type.value,
                    "client_id": self.client_id,
                    "payload": self.payload,
                    "clues": list(self.clues),
                    "timestamp": self.timestamp,
                    "nonce": self.nonce,
                    "request_hash": self.request_hash,
                    "client_signature": (
                        self.client_signature.to_bytes() if self.client_signature else b""
                    ),
                }
            )
            object.__setattr__(self, "_bytes", cached)
        return cached

    @classmethod
    def from_bytes(cls, data: bytes) -> "Journal":
        obj = decode(data)
        signature_bytes = bytes(obj["client_signature"])
        journal = cls(
            jsn=obj["jsn"],
            journal_type=JournalType(obj["journal_type"]),
            client_id=obj["client_id"],
            payload=bytes(obj["payload"]),
            clues=tuple(obj["clues"]),
            timestamp=obj["timestamp"],
            nonce=bytes(obj["nonce"]),
            request_hash=bytes(obj["request_hash"]),
            client_signature=(
                Signature.from_bytes(signature_bytes) if signature_bytes else None
            ),
        )
        # Seed the serialization memo with the wire bytes: ``tx_hash`` must
        # digest the bytes fam actually accumulated, not a re-encoding.
        object.__setattr__(journal, "_bytes", bytes(data))
        return journal

    def tx_hash(self) -> Digest:
        """The server-side journal digest accumulated by fam (§III-C).

        Memoized alongside :meth:`to_bytes`.
        """
        cached = self.__dict__.get("_tx_hash")
        if cached is not None:
            obs.inc("journal.tx_hash_memo.hit")
            return cached
        obs.inc("journal.tx_hash_memo.miss")
        cached = journal_hash(self.to_bytes())
        object.__setattr__(self, "_tx_hash", cached)
        return cached
