"""Block commit layer.

LedgerDB blurs the block concept for writes (journals commit individually
into fam), but blocks still exist as audit and snapshot units: "when
transactions fill up a block, a block-hash is calculated during block
committing" (§III-C), CM-Tree1's root "is calculated and recorded in every
block to capture the verifiable snapshot according to its block version"
(§IV-B2), and the §V audit walks block ranges between time journals.

A block header commits: its journal range, the fam commitment, the CM-Tree1
(state) root, and the previous block hash — the chain link audit step 4
verifies across adjacent blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import Digest, block_hash
from ..encoding import decode, encode

__all__ = ["Block"]


@dataclass(frozen=True)
class Block:
    """An immutable committed block header."""

    height: int
    previous_hash: Digest
    start_jsn: int
    end_jsn: int  # exclusive
    journal_root: Digest  # fam commitment after end_jsn - 1
    state_root: Digest  # CM-Tree1 root snapshot at this block version
    timestamp: float

    def header_bytes(self) -> bytes:
        return encode(
            {
                "height": self.height,
                "previous_hash": self.previous_hash,
                "start_jsn": self.start_jsn,
                "end_jsn": self.end_jsn,
                "journal_root": self.journal_root,
                "state_root": self.state_root,
                "timestamp": self.timestamp,
            }
        )

    def hash(self) -> Digest:
        # Memoized: every receipt issued between two seals re-reads the
        # latest block's hash, and the header is immutable.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = block_hash(self.header_bytes())
            object.__setattr__(self, "_hash", cached)
        return cached

    def contains_jsn(self, jsn: int) -> bool:
        return self.start_jsn <= jsn < self.end_jsn

    @property
    def tx_count(self) -> int:
        return self.end_jsn - self.start_jsn

    @classmethod
    def from_bytes(cls, data: bytes) -> "Block":
        obj = decode(data)
        return cls(
            height=obj["height"],
            previous_hash=bytes(obj["previous_hash"]),
            start_jsn=obj["start_jsn"],
            end_jsn=obj["end_jsn"],
            journal_root=bytes(obj["journal_root"]),
            state_root=bytes(obj["state_root"]),
            timestamp=obj["timestamp"],
        )
