"""The paper-style LedgerDB API facade (§II-C, §IV-C).

LedgerDB exposes "a set of APIs (e.g., Create, Append, Verify)" and a
clue-aware Verify signature::

    Verify(lgid, CLUE, *{key, txdata, rho, root}, level)

This module is a thin procedural facade over the object API, matching the
paper's surface for users porting pseudocode: a process-wide registry of
ledgers by ``lgid`` plus free functions Create / Append / ListTx / GetProof /
Verify with the client/server ``level`` switch.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from ..crypto.keys import KeyPair
from ..merkle.fam import FamAccumulator
from .errors import LedgerError
from .journal import ClientRequest, Journal
from .ledger import Ledger, LedgerConfig
from .receipt import Receipt

__all__ = [
    "VerifyTarget",
    "VerifyLevel",
    "create",
    "get_ledger",
    "drop_ledger",
    "append_tx",
    "append_tx_batch",
    "list_tx",
    "get_proof",
    "verify",
]


class VerifyTarget(Enum):
    """The enumeration parameter of the paper's Verify API."""

    TX = "tx"  # existence of a single journal
    CLUE = "clue"  # clue-oriented N-lineage verification


class VerifyLevel(Enum):
    """Who runs the validation (§IV-C ``level``)."""

    SERVER = "server"  # the LSP validates; caller trusts the result
    CLIENT = "client"  # proof sets are returned and validated caller-side


_LEDGERS: dict[str, Ledger] = {}


def create(lgid: str, **kwargs: Any) -> Ledger:
    """The Create API: register a new ledger under ``lgid``."""
    if lgid in _LEDGERS:
        raise LedgerError(f"ledger {lgid!r} already exists")
    config = kwargs.pop("config", None) or LedgerConfig(uri=lgid)
    ledger = Ledger(config=config, **kwargs)
    _LEDGERS[lgid] = ledger
    return ledger


def get_ledger(lgid: str) -> Ledger:
    try:
        return _LEDGERS[lgid]
    except KeyError:
        raise LedgerError(f"unknown ledger: {lgid!r}") from None


def drop_ledger(lgid: str) -> None:
    """Remove a ledger from the facade registry (testing hygiene)."""
    _LEDGERS.pop(lgid, None)


def append_tx(
    lgid: str,
    client_id: str,
    payload: bytes,
    clue: str | None = None,
    keypair: KeyPair | None = None,
    request: ClientRequest | None = None,
) -> Receipt:
    """The AppendTx API: ``AppendTx(lg_id, payload, 'DCI001')`` (§IV-A).

    Either pass a pre-signed ``request`` or a ``keypair`` to sign locally.
    """
    ledger = get_ledger(lgid)
    if request is None:
        if keypair is None:
            raise LedgerError("need a signed request or a keypair to sign with")
        request = ClientRequest.build(
            lgid,
            client_id,
            payload,
            clues=(clue,) if clue else (),
            nonce=ledger.size.to_bytes(8, "big"),
            client_timestamp=ledger.clock.now(),
        ).signed_by(keypair)
    return ledger.append(request)


def append_tx_batch(
    lgid: str,
    client_id: str,
    items: list[tuple[bytes, str | None]],
    keypair: KeyPair | None = None,
    requests: list[ClientRequest] | None = None,
    max_workers: int | None = None,
) -> list[Receipt]:
    """Batched AppendTx: admit many transactions through one amortised pass.

    Either pass pre-signed ``requests`` or ``items`` as ``(payload, clue)``
    pairs plus a ``keypair`` to sign locally.  Admission is atomic — one bad
    signature rejects the whole batch with the ledger untouched.
    """
    ledger = get_ledger(lgid)
    if requests is None:
        if keypair is None:
            raise LedgerError("need signed requests or a keypair to sign with")
        base_nonce = ledger.size
        requests = [
            ClientRequest.build(
                lgid,
                client_id,
                payload,
                clues=(clue,) if clue else (),
                nonce=(base_nonce + index).to_bytes(8, "big"),
                client_timestamp=ledger.clock.now(),
            ).signed_by(keypair)
            for index, (payload, clue) in enumerate(items)
        ]
    return ledger.append_batch(requests, max_workers=max_workers)


def list_tx(lgid: str, clue: str) -> list[Journal]:
    """The ListTx API: all retrievable journals carrying ``clue``."""
    ledger = get_ledger(lgid)
    journals = []
    for jsn in ledger.list_tx(clue):
        journals.append(ledger.get_journal(jsn))
    return journals


def get_proof(lgid: str, jsn: int, anchored: bool = True):
    """The GetProof API."""
    return get_ledger(lgid).get_proof(jsn, anchored=anchored)


def verify(
    lgid: str,
    target: VerifyTarget,
    *,
    key: str | None = None,
    txdata: list[Journal] | None = None,
    rho: Any = None,
    root: bytes | None = None,
    level: VerifyLevel = VerifyLevel.SERVER,
) -> bool:
    """The Verify API (§IV-C): ``Verify(lgid, CLUE, {key, txdata, rho, root}, level)``.

    * ``target=TX`` — existence of the single journal in ``txdata[0]``;
      ``rho`` optionally carries a pre-fetched fam proof.
    * ``target=CLUE`` — N-lineage verification of clue ``key`` over
      ``txdata`` (all related journals, in order); ``rho`` optionally
      carries a pre-fetched :class:`~repro.merkle.cmtree.ClueProof`; ``root``
      is the caller's trusted CM-Tree1 datum (client level).
    """
    ledger = get_ledger(lgid)
    if target is VerifyTarget.TX:
        if not txdata or len(txdata) != 1:
            raise LedgerError("TX verification takes exactly one journal in txdata")
        journal = txdata[0]
        if level is VerifyLevel.SERVER:
            return ledger.verify_journal(journal, rho)
        proof = rho if rho is not None else ledger.get_proof(journal.jsn, anchored=False)
        trusted = root if root is not None else (
            ledger.latest_receipt.ledger_root if ledger.latest_receipt else None
        )
        if trusted is None:
            raise LedgerError("client-level TX verification needs a trusted root")
        return FamAccumulator.verify_full(journal.tx_hash(), proof, trusted)
    if target is VerifyTarget.CLUE:
        if key is None or txdata is None:
            raise LedgerError("CLUE verification needs key and txdata")
        if level is VerifyLevel.SERVER:
            return ledger.verify_clue(key, txdata)
        proof = rho if rho is not None else ledger.prove_clue(key)
        trusted = root if root is not None else ledger.state_root()
        digests = {i: j.tx_hash() for i, j in enumerate(txdata)}
        return proof.verify(digests, trusted)
    raise LedgerError(f"unsupported verification target: {target}")
