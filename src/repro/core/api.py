"""The paper-style LedgerDB API facade (§II-C, §IV-C) — **deprecated v1**.

LedgerDB exposes "a set of APIs (e.g., Create, Append, Verify)" and a
clue-aware Verify signature::

    Verify(lgid, CLUE, *{key, txdata, rho, root}, level)

This module used to implement that surface directly; it is now a thin shim
over the v2 session API (:mod:`repro.api`), kept so pseudocode ports keep
running.  Every free function re-resolves its ``lgid`` string per call and
emits a :class:`DeprecationWarning` pointing at the session equivalent —
new code should ``connect()`` once and use the returned
:class:`~repro.api.LedgerSession`.

Both facades share one process-wide registry, so v1 and v2 calls can be
mixed freely during a migration.  Behaviour changes from the original v1:

* argument mistakes raise :class:`~repro.core.errors.UsageError` (still a
  :class:`LedgerError`) instead of the bare base class;
* :func:`drop_ledger` on an unknown ``lgid`` now raises ``UsageError``,
  symmetric with :func:`create` on a duplicate (the old silent no-op hid
  teardown typos) — pass ``missing_ok=True`` for idempotent cleanup;
* :func:`verify` returns a :class:`~repro.core.verification.VerifyResult`
  rather than a bool; it is truthy-compatible (``assert verify(...)``
  behaves as before) and additionally carries the proof and trusted root.
"""

from __future__ import annotations

import warnings
from typing import Any

from ..crypto.keys import KeyPair
from ..merkle.fam import FamProof
from .errors import UsageError
from .journal import ClientRequest, Journal
from .ledger import Ledger
from .receipt import Receipt

# The enums now live in core.verification (their non-deprecated home);
# re-imported here so v1-era ``from repro.core.api import VerifyTarget``
# keeps working without a warning (it is the *functions* that deprecate).
from .verification import VerifyLevel, VerifyResult, VerifyTarget

__all__ = [
    "VerifyTarget",
    "VerifyLevel",
    "create",
    "get_ledger",
    "drop_ledger",
    "append_tx",
    "append_tx_batch",
    "list_tx",
    "get_proof",
    "verify",
]


def _v2():
    from .. import api

    return api


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.core.api.{name} is deprecated; use {replacement} "
        f"(repro.api, the v2 session API)",
        DeprecationWarning,
        stacklevel=3,
    )


def create(lgid: str, **kwargs: Any) -> Ledger:
    """The Create API: register a new ledger under ``lgid``.

    Deprecated shim for :func:`repro.api.create`.

    Raises:
        UsageError: ``lgid`` is already registered.
    """
    _deprecated("create", "repro.api.create")
    return _v2().create(lgid, **kwargs)


def get_ledger(lgid: str) -> Ledger:
    """Resolve a registered ledger (shim for :func:`repro.api.get_ledger`).

    Raises:
        UsageError: no ledger is registered under ``lgid``.
    """
    _deprecated("get_ledger", "repro.api.get_ledger")
    return _v2().get_ledger(lgid)


def drop_ledger(lgid: str, *, missing_ok: bool = False) -> None:
    """Remove a ledger from the facade registry (testing hygiene).

    Deprecated shim for :func:`repro.api.drop_ledger`.  Unlike the original
    v1, an unknown ``lgid`` now raises (symmetric with :func:`create`);
    pass ``missing_ok=True`` — or use :func:`repro.api.scoped_ledger` —
    for idempotent teardown.

    Raises:
        UsageError: no ledger is registered under ``lgid`` (and not
            ``missing_ok``).
    """
    _deprecated("drop_ledger", "repro.api.drop_ledger or scoped_ledger")
    _v2().drop_ledger(lgid, missing_ok=missing_ok)


def append_tx(
    lgid: str,
    client_id: str,
    payload: bytes,
    clue: str | None = None,
    keypair: KeyPair | None = None,
    request: ClientRequest | None = None,
) -> Receipt:
    """The AppendTx API: ``AppendTx(lg_id, payload, 'DCI001')`` (§IV-A).

    Deprecated shim for :meth:`repro.api.LedgerSession.append`.  Either pass
    a pre-signed ``request`` or a ``keypair`` to sign locally.

    Raises:
        UsageError: unknown ``lgid``, or neither ``request`` nor ``keypair``.
        AuthenticationError: the ledger rejected the request.
    """
    _deprecated("append_tx", "LedgerSession.append")
    session = _v2().connect(lgid, client_id=client_id, keypair=keypair)
    if request is not None:
        return session.append(request=request)
    if keypair is None:
        raise UsageError("need a signed request or a keypair to sign with")
    return session.append(payload, clue=clue)


def append_tx_batch(
    lgid: str,
    client_id: str,
    items: list[tuple[bytes, str | None]] | None = None,
    keypair: KeyPair | None = None,
    requests: list[ClientRequest] | None = None,
    max_workers: int | None = None,
) -> list[Receipt]:
    """Batched AppendTx: admit many transactions through one amortised pass.

    Deprecated shim for :meth:`repro.api.LedgerSession.append_batch`.
    Either pass pre-signed ``requests`` or ``items`` as ``(payload, clue)``
    pairs plus a ``keypair`` to sign locally.  Admission is atomic — one bad
    signature rejects the whole batch with the ledger untouched.

    Raises:
        UsageError: unknown ``lgid``, or neither ``requests`` nor ``keypair``.
        AuthenticationError: a request was rejected (whole batch fails).
    """
    _deprecated("append_tx_batch", "LedgerSession.append_batch")
    session = _v2().connect(lgid, client_id=client_id, keypair=keypair)
    if requests is not None:
        return session.append_batch(requests=requests, max_workers=max_workers)
    if keypair is None:
        raise UsageError("need signed requests or a keypair to sign with")
    return session.append_batch(items, max_workers=max_workers)


def list_tx(lgid: str, clue: str) -> list[Journal]:
    """The ListTx API: all retrievable journals carrying ``clue``.

    Deprecated shim for :meth:`repro.api.LedgerSession.list_tx`.

    Raises:
        UsageError: unknown ``lgid``.
    """
    _deprecated("list_tx", "LedgerSession.list_tx")
    return _v2().connect(lgid).list_tx(clue)


def get_proof(lgid: str, jsn: int, anchored: bool = True) -> FamProof:
    """The GetProof API (shim for :meth:`repro.api.LedgerSession.get_proof`).

    Raises:
        UsageError: unknown ``lgid``.
        JournalNotFoundError: no journal exists at ``jsn``.
    """
    _deprecated("get_proof", "LedgerSession.get_proof")
    return _v2().connect(lgid).get_proof(jsn, anchored=anchored)


def verify(
    lgid: str,
    target: VerifyTarget,
    *,
    key: str | None = None,
    txdata: list[Journal] | None = None,
    rho: Any = None,
    root: bytes | None = None,
    level: VerifyLevel = VerifyLevel.SERVER,
) -> VerifyResult:
    """The Verify API (§IV-C): ``Verify(lgid, CLUE, {key, txdata, rho, root}, level)``.

    Deprecated shim for :meth:`repro.api.LedgerSession.verify`.  Returns a
    :class:`VerifyResult` — truthy iff the check passed, and additionally
    carrying the proof object and trusted root (a failed check is a falsy
    result, not an exception).

    Raises:
        UsageError: unknown ``lgid``, bad target, wrong ``txdata`` shape,
            missing ``key``, or a client-level TX check without a trusted
            root.
    """
    _deprecated("verify", "LedgerSession.verify")
    return _v2().connect(lgid).verify(
        target, key=key, txdata=txdata, rho=rho, root=root, level=level
    )
