"""The paper-style LedgerDB API facade (§II-C, §IV-C) — **deprecated v1**.

LedgerDB exposes "a set of APIs (e.g., Create, Append, Verify)" and a
clue-aware Verify signature::

    Verify(lgid, CLUE, *{key, txdata, rho, root}, level)

This module used to implement that surface directly, then spent one
release as a warning shim over the v2 session API (:mod:`repro.api`).
That sunset window is over: every free function here is now a *tombstone*
that raises :class:`~repro.core.errors.UsageError` naming its v2
replacement.  The enum re-exports (:class:`VerifyTarget`,
:class:`VerifyLevel`, :class:`VerifyResult`) remain importable and
non-deprecated — their home is :mod:`repro.core.verification`, and v1-era
``from repro.core.api import VerifyTarget`` imports keep working.

Migrating is mechanical: ``connect()`` (or :func:`repro.api.scoped_ledger`)
once per ledger, then call the same-named session method::

    # v1 (now raises)                 # v2
    create(lgid)                      repro.api.create(lgid)
    append_tx(lgid, cid, b"...")      session.append(b"...")
    list_tx(lgid, "CLUE")             session.list_tx("CLUE")
    get_proof(lgid, jsn)              session.get_proof(jsn)
    verify(lgid, target, ...)         session.verify(target, ...)
    drop_ledger(lgid)                 repro.api.drop_ledger(lgid)
"""

from __future__ import annotations

from typing import Any

from ..crypto.keys import KeyPair
from ..merkle.fam import FamProof
from .errors import UsageError
from .journal import ClientRequest, Journal
from .ledger import Ledger
from .receipt import Receipt

# The enums now live in core.verification (their non-deprecated home);
# re-imported here so v1-era ``from repro.core.api import VerifyTarget``
# keeps working unchanged (it is the *functions* that were removed).
from .verification import VerifyLevel, VerifyResult, VerifyTarget

__all__ = [
    "VerifyTarget",
    "VerifyLevel",
    "create",
    "get_ledger",
    "drop_ledger",
    "append_tx",
    "append_tx_batch",
    "list_tx",
    "get_proof",
    "verify",
]


def _deprecated(name: str, replacement: str) -> None:
    """The v1 facade's sunset is complete: calling any shim is an error.

    The message carries the mechanical migration (connect once, call the
    session method) so a failing pseudocode port fixes itself from the
    traceback alone.
    """
    raise UsageError(
        f"repro.core.api.{name} was removed; use {replacement} "
        f"(repro.api, the v2 session API). Migration: "
        f"session = repro.api.connect(lgid), then call the session method "
        f"— see the repro.core.api module docstring for the full mapping."
    )


def create(lgid: str, **kwargs: Any) -> Ledger:
    """The Create API: register a new ledger under ``lgid``.

    Removed — use :func:`repro.api.create`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("create", "repro.api.create")


def get_ledger(lgid: str) -> Ledger:
    """Resolve a registered ledger — removed, use :func:`repro.api.get_ledger`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("get_ledger", "repro.api.get_ledger")


def drop_ledger(lgid: str, *, missing_ok: bool = False) -> None:
    """Remove a ledger from the facade registry (testing hygiene).

    Removed — use :func:`repro.api.drop_ledger` (or
    :func:`repro.api.scoped_ledger` for self-cleaning test blocks).

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("drop_ledger", "repro.api.drop_ledger or scoped_ledger")


def append_tx(
    lgid: str,
    client_id: str,
    payload: bytes,
    clue: str | None = None,
    keypair: KeyPair | None = None,
    request: ClientRequest | None = None,
) -> Receipt:
    """The AppendTx API: ``AppendTx(lg_id, payload, 'DCI001')`` (§IV-A).

    Removed — use :meth:`repro.api.LedgerSession.append`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("append_tx", "LedgerSession.append")


def append_tx_batch(
    lgid: str,
    client_id: str,
    items: list[tuple[bytes, str | None]] | None = None,
    keypair: KeyPair | None = None,
    requests: list[ClientRequest] | None = None,
    max_workers: int | None = None,
) -> list[Receipt]:
    """Batched AppendTx: admit many transactions through one amortised pass.

    Removed — use :meth:`repro.api.LedgerSession.append_batch`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("append_tx_batch", "LedgerSession.append_batch")


def list_tx(lgid: str, clue: str) -> list[Journal]:
    """The ListTx API: all retrievable journals carrying ``clue``.

    Removed — use :meth:`repro.api.LedgerSession.list_tx`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("list_tx", "LedgerSession.list_tx")


def get_proof(lgid: str, jsn: int, anchored: bool = True) -> FamProof:
    """The GetProof API — removed, use :meth:`repro.api.LedgerSession.get_proof`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("get_proof", "LedgerSession.get_proof")


def verify(
    lgid: str,
    target: VerifyTarget,
    *,
    key: str | None = None,
    txdata: list[Journal] | None = None,
    rho: Any = None,
    root: bytes | None = None,
    level: VerifyLevel = VerifyLevel.SERVER,
) -> VerifyResult:
    """The Verify API (§IV-C): ``Verify(lgid, CLUE, {key, txdata, rho, root}, level)``.

    Removed — use :meth:`repro.api.LedgerSession.verify`.

    Raises:
        UsageError: always (the v1 facade is sunset).
    """
    _deprecated("verify", "LedgerSession.verify")
