"""Checkpoint snapshot files — O(delta) ledger reopen (DESIGN.md §13).

A snapshot is *derived* state: everything in it can be rebuilt by replaying
the journal stream from genesis.  Its only job is to make reopening cheap —
``Ledger.open`` restores the snapshot and replays just the stream suffix
``[snapshot.jsn_count, len(stream))``.  Consequently corruption here is never
fatal (:class:`~repro.core.errors.SnapshotError` -> full replay fallback),
and writing one rides the same §9 commit discipline as every other durable
artifact: tmp -> flush -> fsync -> rename -> directory fsync.

File layout::

    magic "LDBSNAP1" | payload_crc u32 (CRC32C) | payload (repro.encoding TLV)

The payload is a plain dict (see :func:`Ledger.checkpoint
<repro.core.ledger.Ledger.checkpoint>` for the producer): fam/CM-Tree/cSL
state, block headers, mutation records, the occult bitmap, and the node
store's page manifest (root digest + page list) so a restore can detect that
the pages backing the saved MPT root were tampered with or lost.

The sibling ``ledger.cfg`` file persists the :class:`LedgerConfig` at create
time so ``Ledger.open`` needs no out-of-band configuration.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from ..encoding import EncodingError, decode, encode
from ..storage.checksum import crc32c
from .errors import SnapshotError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT",
    "write_snapshot",
    "load_snapshot",
    "write_config_file",
    "load_config_file",
]

SNAPSHOT_MAGIC = b"LDBSNAP1"
SNAPSHOT_FORMAT = 1
_CRC = struct.Struct(">I")


def _commit_file(path: Path, data: bytes) -> None:
    """The §9 page-commit discipline for a whole small file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def write_snapshot(path: str | os.PathLike[str], state: dict) -> None:
    """Atomically persist a checkpoint snapshot."""
    payload = encode(state)
    _commit_file(Path(path), SNAPSHOT_MAGIC + _CRC.pack(crc32c(payload)) + payload)


def load_snapshot(path: str | os.PathLike[str]) -> dict:
    """Load and validate a snapshot; :class:`SnapshotError` if unusable."""
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"no snapshot at {path}")
    raw = path.read_bytes()
    if len(raw) < len(SNAPSHOT_MAGIC) + _CRC.size:
        raise SnapshotError(f"{path.name}: truncated snapshot")
    if raw[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path.name}: bad snapshot magic")
    (expected_crc,) = _CRC.unpack_from(raw, len(SNAPSHOT_MAGIC))
    payload = raw[len(SNAPSHOT_MAGIC) + _CRC.size :]
    if crc32c(payload) != expected_crc:
        raise SnapshotError(f"{path.name}: snapshot checksum mismatch")
    try:
        state = decode(payload)
    except EncodingError as exc:
        raise SnapshotError(f"{path.name}: undecodable snapshot: {exc}") from exc
    if not isinstance(state, dict) or state.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path.name}: unsupported snapshot format")
    return state


def write_config_file(path: str | os.PathLike[str], config) -> None:
    """Persist a :class:`LedgerConfig` next to the data it configures."""
    from .ledger import LedgerConfig  # local: avoid import cycle

    if not isinstance(config, LedgerConfig):
        raise TypeError(f"expected LedgerConfig, got {type(config).__name__}")
    fields = {
        "uri": config.uri,
        "fractal_height": config.fractal_height,
        "block_size": config.block_size,
        "require_client_signature": config.require_client_signature,
        "observability": config.observability,
        "node_store": config.node_store,
        "cache_pages": config.cache_pages,
        "shards": config.shards,
    }
    _commit_file(Path(path), encode(fields))


def load_config_file(path: str | os.PathLike[str], data_dir: str | None = None):
    """Reconstruct the :class:`LedgerConfig` persisted by ``Ledger`` create."""
    from .ledger import LedgerConfig  # local: avoid import cycle

    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"no ledger config at {path}")
    try:
        fields = decode(path.read_bytes())
    except EncodingError as exc:
        raise SnapshotError(f"{path.name}: undecodable ledger config: {exc}") from exc
    return LedgerConfig(
        uri=str(fields["uri"]),
        fractal_height=fields["fractal_height"],
        block_size=fields["block_size"],
        require_client_signature=fields["require_client_signature"],
        observability=fields["observability"],
        node_store=str(fields["node_store"]),
        cache_pages=fields["cache_pages"],
        data_dir=data_dir,
        shards=fields.get("shards", 1),  # configs written before sharding
    )
